//! Functional execution: runs a plan on **real tensors**, actually
//! splitting layers across OS threads and merging the parts.
//!
//! The analytic runtime proves EdgeNN's policies are *fast*; this module
//! proves they are *correct*: for any plan, the functional result must be
//! numerically identical (up to fp32 associativity) to the reference
//! single-threaded forward pass. Intra-kernel splits really compute the
//! two output ranges on different threads ("CPU" worker vs "GPU" worker)
//! and merge; inter-kernel branches really run concurrently.
//!
//! ## Execution core
//!
//! The engine is built to add as little overhead as possible on top of
//! the kernels themselves:
//!
//! - **One worker pool per session** ([`pool::Pool`]): workers are
//!   spawned once when an [`Executor`] session starts and park on a
//!   condvar; every split layer and fork-join branch is a queue push,
//!   not a `thread::scope` spawn. [`Executor::batch_execute`] shares the
//!   pool (and the layers' warm scratch arenas) across a whole batch.
//! - **Zero-copy dataflow**: node outputs live in [`OnceLock`] slots
//!   that producers fill by move and consumers read by reference; the
//!   network input is borrowed, never cloned; branch workers read the
//!   shared slots directly instead of cloning a snapshot; split merges
//!   append/add in place instead of concat-then-reshape copies.
//! - **Engine observability**: every run reports [`EngineStats`] and,
//!   when an observer is attached, emits `SinkEvent::EngineCounter`
//!   events so traces show pool and arena behaviour next to the kernels.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use edgenn_nn::graph::{Graph, NodeId, Segment, Structure};
use edgenn_nn::layer::{Layer, LayerClass};
use edgenn_obs::{flight, EventSink, ProfileSummary, SinkEvent};
use edgenn_sim::FaultPlan;
use edgenn_tensor::{scratch_stats, Tensor};

use crate::plan::{Assignment, ExecutionPlan, Precision};
use crate::runtime::pool::{self, JoinError, Pool, ShutdownGuard};
use crate::{CoreError, Result};

/// What a pooled task yields: `Some` for split partials, `None` for
/// branch bodies (their outputs go straight into the slots).
type TaskResult = Result<Option<Tensor>>;

/// Clamp bounds for the measured co-run cutoff: even a pathological
/// measurement must neither co-run layers smaller than any realistic
/// handoff (floor) nor refuse to co-run paper-scale conv layers (ceiling).
const CUTOFF_FLOOR: u64 = 1 << 16;
const CUTOFF_CEIL: u64 = 1 << 24;

/// Flight-recorder capacity reserved per graph node at executor
/// construction. VGG-16 (41 raw nodes) measured ~225 records per node
/// in one request window. Compiled graphs raise the *density*: a fused
/// `conv+relu` node emits the spans of both constituent ops but counts
/// as one node (ResNet-18 drops ~24% of its nodes), so the budget
/// carries the pre-compile density times that shrinkage on top of the
/// 2x headroom for int8 plans (extra quantize pack spans) and
/// fault-injected reruns.
const FLIGHT_RECORDS_PER_NODE: usize = 768;

/// Minimum layer size (flops) for a split to co-run through the pool.
///
/// Waking a parked worker costs a condvar round trip; below the cutoff
/// the whole layer finishes faster than the handoff, so both partials
/// run on the driver thread instead. The split/merge semantics are
/// identical either way.
///
/// The break-even point is `handoff_time x flop_rate`, and both factors
/// vary by an order of magnitude across hosts (a busy single-core CI
/// runner vs an eight-core edge board), so the cutoff is **measured
/// once per process** at first [`Executor`] construction instead of
/// hard-coded. Setting `EDGENN_CORUN_CUTOFF=<flops>` skips the
/// measurement and uses the given value verbatim.
fn corun_cutoff() -> u64 {
    static CUTOFF: OnceLock<u64> = OnceLock::new();
    *CUTOFF.get_or_init(|| {
        cutoff_override(std::env::var("EDGENN_CORUN_CUTOFF").ok().as_deref())
            .unwrap_or_else(measure_corun_cutoff)
    })
}

/// Parses the `EDGENN_CORUN_CUTOFF` override (a plain flop count).
fn cutoff_override(var: Option<&str>) -> Option<u64> {
    var?.trim().parse().ok().filter(|&n| n > 0)
}

/// Measures the pool-handoff round trip and the single-core flop rate,
/// then derives the break-even layer size: a split saves roughly half
/// the layer's time but pays one handoff, so co-running wins once
/// `flops / 2 > handoff_ns x flops_per_ns`.
fn measure_corun_cutoff() -> u64 {
    // Handoff: submit no-op tasks to a one-worker pool and time
    // submission to completion, keeping only samples a worker actually
    // ran (a help-first join can reclaim the task inline, which
    // measures queue-push cost, not the wake-up being priced here).
    let pool: Pool<'_, ()> = Pool::new();
    let mut samples: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| pool.run_worker());
        let _guard = ShutdownGuard(&pool);
        for _ in 0..32 {
            let before = pool.stats().worker_tasks;
            let start = std::time::Instant::now();
            let handle = pool.submit(Box::new(|| ()));
            // Yield so the worker gets scheduled even on a one-core host.
            while pool.stats().worker_tasks == before && start.elapsed() < Duration::from_millis(2)
            {
                std::thread::yield_now();
            }
            let elapsed = start.elapsed();
            let _ = handle.join(&pool);
            if pool.stats().worker_tasks > before {
                samples.push(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            }
            if samples.len() >= 8 {
                break;
            }
        }
    });
    drop(pool);
    // Best observed wake-up is the stable statistic (outliers include
    // scheduler preemption); 10us default when no worker ever won the
    // race against the inline reclaim.
    let handoff_ns = samples.iter().copied().min().unwrap_or(10_000).max(200);

    // Flop rate: a warm SIMD dot, the same primitive the split kernels
    // bottom out in.
    const DOT_LEN: usize = 4096;
    const ITERS: u64 = 64;
    let a = vec![1.0f32; DOT_LEN];
    let b = vec![0.5f32; DOT_LEN];
    let mut sink = 0.0f32;
    let start = std::time::Instant::now();
    for _ in 0..ITERS {
        sink += edgenn_tensor::dot(&a, &b);
    }
    let elapsed_ns = u64::try_from(start.elapsed().as_nanos())
        .unwrap_or(u64::MAX)
        .max(1);
    std::hint::black_box(sink);
    let flops_per_ns = (2 * DOT_LEN as u64 * ITERS) as f64 / elapsed_ns as f64;

    let cutoff = (2.0 * handoff_ns as f64 * flops_per_ns) as u64;
    cutoff.clamp(CUTOFF_FLOOR, CUTOFF_CEIL)
}

/// Engine-overhead counters for one functional run.
///
/// The pool and arena counters underneath are process/session
/// cumulative; per-request windowing happens through
/// [`EngineStats::snapshot_delta`], so stats reported for one request
/// never inherit a previous request's counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Tasks completed by pool workers.
    pub pool_tasks: u64,
    /// Tasks the waiter reclaimed and ran inline (help-first joins).
    pub inline_tasks: u64,
    /// Nanoseconds tasks spent queued before starting.
    pub queue_wait_ns: u64,
    /// Scratch-arena bytes that required fresh heap allocation.
    pub arena_fresh_bytes: u64,
    /// Scratch-arena bytes served without allocating (steady state).
    pub arena_reused_bytes: u64,
    /// Bytes moved into node output slots. The engine holds every slot
    /// to session end, so this is also the run's slot high-water mark —
    /// the measured quantity the tier-D checker's certified bound must
    /// dominate.
    pub slot_bytes: u64,
    /// Flight-recorder profile of this run (per-stage p50/p99), present
    /// when the flight recorder was enabled during the run.
    pub profile: Option<ProfileSummary>,
}

impl EngineStats {
    /// Absolute snapshot of the cumulative engine counters underlying
    /// one pool session (no profile — profiles belong to windows).
    fn capture(
        pool: &pool::PoolStats,
        scratch: &edgenn_tensor::ScratchStats,
        slot_bytes: u64,
    ) -> EngineStats {
        EngineStats {
            pool_tasks: pool.worker_tasks,
            inline_tasks: pool.inline_tasks,
            queue_wait_ns: pool.queue_wait_ns,
            arena_fresh_bytes: scratch.fresh_bytes,
            arena_reused_bytes: scratch.reused_bytes,
            slot_bytes,
            profile: None,
        }
    }

    /// Counter growth from `self` to `later` — the per-request window.
    /// The returned stats carry `later`'s profile (profiles are built
    /// per window and never accumulate).
    #[must_use]
    pub fn snapshot_delta(&self, later: &EngineStats) -> EngineStats {
        EngineStats {
            pool_tasks: later.pool_tasks.saturating_sub(self.pool_tasks),
            inline_tasks: later.inline_tasks.saturating_sub(self.inline_tasks),
            queue_wait_ns: later.queue_wait_ns.saturating_sub(self.queue_wait_ns),
            arena_fresh_bytes: later
                .arena_fresh_bytes
                .saturating_sub(self.arena_fresh_bytes),
            arena_reused_bytes: later
                .arena_reused_bytes
                .saturating_sub(self.arena_reused_bytes),
            slot_bytes: later.slot_bytes.saturating_sub(self.slot_bytes),
            profile: later.profile.clone(),
        }
    }
}

/// Recovery counters of one functional run (all zero when no
/// [`FaultInjector`] is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Kernel launches that failed by injection.
    pub faults_injected: u64,
    /// Launches retried after a transient failure.
    pub retries: u64,
    /// GPU-role computations re-run in the CPU role after the retry
    /// budget was exhausted.
    pub fallbacks: u64,
    /// Pool workers written off (panicked task or watchdog timeout)
    /// whose partials were recomputed inline by the waiter.
    pub worker_losses: u64,
}

impl FaultCounts {
    /// Counter growth from `self` to `later`.
    fn delta(&self, later: &FaultCounts) -> FaultCounts {
        FaultCounts {
            faults_injected: later.faults_injected - self.faults_injected,
            retries: later.retries - self.retries,
            fallbacks: later.fallbacks - self.fallbacks,
            worker_losses: later.worker_losses - self.worker_losses,
        }
    }
}

/// Deterministic fault injection for functional runs.
///
/// Mirrors the analytic [`edgenn_sim::FaultClock`] on the real-tensor
/// path: every GPU-role kernel launch consults the injector; a failing
/// launch is retried up to `max_retries` times and then recomputed in
/// the CPU role. The recomputation runs the identical kernel over the
/// identical operands, so a recovered run is **bitwise identical** to
/// the fault-free run of the same plan — resilience never perturbs the
/// numerics. Environmental windows (bandwidth, thermal, stalls) scale
/// simulated time only and do not apply here.
#[derive(Debug)]
pub struct FaultInjector {
    /// Per-node remaining failure charges; `u32::MAX` is permanent.
    remaining: Vec<AtomicU32>,
    /// Retries granted before a launch is re-placed on the CPU role.
    max_retries: u32,
    /// Watchdog bound for worker-held partial joins.
    join_timeout: Option<Duration>,
    faults_injected: AtomicU64,
    retries: AtomicU64,
    fallbacks: AtomicU64,
    worker_losses: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector from `plan`'s kernel faults for a graph of
    /// `nodes` nodes, with a per-kernel retry budget of `max_retries`.
    #[must_use]
    pub fn from_plan(plan: &FaultPlan, nodes: usize, max_retries: u32) -> Self {
        let remaining: Vec<AtomicU32> = (0..nodes).map(|_| AtomicU32::new(0)).collect();
        for fault in &plan.kernel_faults {
            if let Some(cell) = remaining.get(fault.node) {
                cell.store(fault.fail_count, Ordering::Relaxed);
            }
        }
        Self {
            remaining,
            max_retries,
            join_timeout: None,
            faults_injected: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            worker_losses: AtomicU64::new(0),
        }
    }

    /// Bounds every worker-held partial join by `timeout`: a worker
    /// that holds a partial longer is written off as hung and its share
    /// recomputed inline (see [`pool::LossAccount`]).
    #[must_use]
    pub fn with_join_timeout(mut self, timeout: Duration) -> Self {
        self.join_timeout = Some(timeout);
        self
    }

    /// Whether the next launch of `node`'s kernel fails, consuming one
    /// failure charge (a `u32::MAX` charge never depletes).
    fn should_fail(&self, node: usize) -> bool {
        let Some(cell) = self.remaining.get(node) else {
            return false;
        };
        let fails = cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| match n {
                0 => None,
                u32::MAX => Some(u32::MAX),
                n => Some(n - 1),
            })
            .is_ok();
        if fails {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        fails
    }

    /// Recovery counters accumulated across every run so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            worker_losses: self.worker_losses.load(Ordering::Relaxed),
        }
    }
}

/// Statistics of one functional run.
#[derive(Debug, Clone)]
pub struct FunctionalOutcome {
    /// The network output.
    pub output: Tensor,
    /// Number of layers executed as partition+merge splits. Splits above
    /// the measured co-run cutoff (see [`Executor::with_corun_cutoff`])
    /// co-run on two threads; smaller ones compute both shares on the
    /// driver (the handoff would cost more than the layer).
    pub corun_layers: usize,
    /// Number of layers executed wholly by the CPU-role worker.
    pub cpu_layers: usize,
    /// Number of layers computed by the int8 quantized kernels (zero
    /// under [`Precision::F32`] plans).
    pub int8_layers: usize,
    /// Number of int8-capable layers an int8 plan kept in f32 because
    /// quantize/requantize overhead beats the saved weight traffic on
    /// their shape ([`Layer::int8_worthwhile`]).
    pub int8_gated: usize,
    /// Number of fork-join regions whose branches ran on separate threads.
    pub parallel_regions: usize,
    /// Engine-overhead accounting (pool + scratch arena).
    pub engine: EngineStats,
    /// Fault-recovery accounting (all zero without a [`FaultInjector`]).
    pub recovery: FaultCounts,
}

/// A reusable functional execution session for one graph.
///
/// Construction resolves the graph's fork-join structure once;
/// [`Executor::execute`] then runs any plan/input against it, and
/// [`Executor::batch_execute`] amortizes worker-pool startup and
/// scratch-arena warm-up across a batch of inputs.
pub struct Executor<'g> {
    graph: &'g Graph,
    structure: Structure,
    observer: Option<Arc<dyn EventSink>>,
    faults: Option<FaultInjector>,
    corun_cutoff: u64,
    /// One-shot guard for the int8 calibration pass (see `run_session`).
    calibrated: std::sync::Once,
}

impl std::fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("graph", &self.graph.name())
            .field("observer", &self.observer.is_some())
            .field("faults", &self.faults.is_some())
            .field("corun_cutoff", &self.corun_cutoff)
            .finish()
    }
}

impl<'g> Executor<'g> {
    /// Prepares an executor for `graph` (resolves its segment structure).
    ///
    /// # Errors
    /// Fails when the graph has no valid fork-join decomposition.
    pub fn new(graph: &'g Graph) -> Result<Self> {
        // Size the flight-recorder rings so one request's window fits
        // even on the deepest model: VGG-16 overflowed the old fixed
        // 4096-record rings by ~5k records per request (~225 records
        // per node between node/merge spans, kernel pack/compute pairs,
        // scratch instants and pool queue/task spans). Rings only grow,
        // so an oversized estimate costs memory, never records.
        flight::reserve(graph.len() * FLIGHT_RECORDS_PER_NODE);
        Ok(Self {
            graph,
            structure: graph.structure()?,
            observer: None,
            faults: None,
            corun_cutoff: corun_cutoff(),
            calibrated: std::sync::Once::new(),
        })
    }

    /// Overrides the measured co-run cutoff (flops) for this executor —
    /// mainly for tests and benchmarks that must force or forbid pool
    /// handoffs regardless of the host's measured break-even point.
    #[must_use]
    pub fn with_corun_cutoff(mut self, flops: u64) -> Self {
        self.corun_cutoff = flops;
        self
    }

    /// Mirrors engine counters of every run into `observer`.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn EventSink>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Injects faults from `injector` into every subsequent run.
    #[must_use]
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Executes `plan` functionally on one `input`.
    ///
    /// # Errors
    /// Fails on plan/graph mismatch, shape errors, or if a worker thread
    /// panics (surfaced as [`CoreError::Internal`]).
    pub fn execute(&self, plan: &ExecutionPlan, input: &Tensor) -> Result<FunctionalOutcome> {
        let mut outcomes = self.run_session(plan, &[input])?;
        outcomes.pop().ok_or_else(|| CoreError::Internal {
            reason: "session returned no outcome".to_string(),
        })
    }

    /// Executes `plan` on a batch of inputs sharing one worker pool and
    /// warm scratch arenas. Outcomes are returned in input order; the
    /// batch fails as a whole on the first error.
    ///
    /// # Errors
    /// Same failure modes as [`Executor::execute`]; additionally fails
    /// on an empty batch.
    pub fn batch_execute(
        &self,
        plan: &ExecutionPlan,
        inputs: &[Tensor],
    ) -> Result<Vec<FunctionalOutcome>> {
        if inputs.is_empty() {
            return Err(CoreError::Internal {
                reason: "empty batch".to_string(),
            });
        }
        let refs: Vec<&Tensor> = inputs.iter().collect();
        self.run_session(plan, &refs)
    }

    /// Runs one pool session over `inputs` sequentially.
    fn run_session(
        &self,
        plan: &ExecutionPlan,
        inputs: &[&Tensor],
    ) -> Result<Vec<FunctionalOutcome>> {
        plan.validate(self.graph)?;
        for input in inputs {
            if input.shape() != self.graph.input_shape() {
                return Err(CoreError::PlanMismatch {
                    reason: format!(
                        "input shape {} does not match graph input {}",
                        input.shape(),
                        self.graph.input_shape()
                    ),
                });
            }
        }
        // Int8 plans calibrate activation ranges from the first real input
        // before anything is timed: one f32 reference pass stamps frozen
        // per-layer quantization parameters (write-once, shared by every
        // executor over the same graph), so the quantized kernels skip
        // their per-call min/max scan on every subsequent inference and
        // all partials/replays see identical parameters.
        if plan.config.precision == Precision::Int8 {
            self.calibrated.call_once(|| {
                if let Some(&first) = inputs.first() {
                    let _ = edgenn_nn::graph::calibrate(self.graph, std::slice::from_ref(first));
                }
            });
        }
        let len = self.graph.len();
        let mut all_slots: Vec<Vec<OnceLock<Tensor>>> = inputs
            .iter()
            .map(|_| (0..len).map(|_| OnceLock::new()).collect())
            .collect();
        let corun = AtomicUsize::new(0);
        let cpu = AtomicUsize::new(0);
        let int8 = AtomicUsize::new(0);
        let int8_gated = AtomicUsize::new(0);
        let slot_bytes = AtomicU64::new(0);
        // Watchdog write-offs land in this session-scoped ledger and
        // settle once the scope below has joined every worker — debits
        // are visible to concurrent sessions while they matter (a hung
        // thread occupies a core) and never outlive this session.
        // Declared before the pool: spent task cells in the pool's
        // queue borrow it until the pool drops.
        let losses = pool::LossAccount::new();
        let pool: Pool<'_, TaskResult> = Pool::new();

        let runs: Result<Vec<RunCounters>> = std::thread::scope(|scope| {
            for _ in 0..Pool::<TaskResult>::default_workers() {
                scope.spawn(|| pool.run_worker());
            }
            let _guard = ShutdownGuard(&pool);
            inputs
                .iter()
                .zip(all_slots.iter())
                .map(|(input, slots)| {
                    run_one(
                        Ctx {
                            graph: self.graph,
                            structure: &self.structure,
                            plan,
                            input,
                            slots,
                            corun: &corun,
                            cpu: &cpu,
                            int8: &int8,
                            int8_gated: &int8_gated,
                            slot_bytes: &slot_bytes,
                            faults: self.faults.as_ref(),
                            losses: &losses,
                            corun_cutoff: self.corun_cutoff,
                        },
                        &pool,
                    )
                })
                .collect()
        });
        // The queue may still hold completed task cells borrowing `'env`
        // data; drop it before mutably borrowing the slots for extraction.
        drop(pool);
        // Every worker is joined (the scope above has ended): any core a
        // watchdog wrote off is free again, so credit the debits back.
        losses.settle();
        let runs = runs?;

        let output_idx = self.graph.output_id().index();
        runs.into_iter()
            .zip(all_slots.iter_mut())
            .map(|(counters, slots)| {
                let output = slots[output_idx]
                    .take()
                    .ok_or_else(|| CoreError::Internal {
                        reason: "output never computed".to_string(),
                    })?;
                let outcome = FunctionalOutcome {
                    output,
                    corun_layers: counters.corun,
                    cpu_layers: counters.cpu,
                    int8_layers: counters.int8,
                    int8_gated: counters.int8_gated,
                    parallel_regions: counters.parallel_regions,
                    engine: counters.engine,
                    recovery: counters.recovery,
                };
                self.emit_engine_counters(&outcome);
                Ok(outcome)
            })
            .collect()
    }

    fn emit_engine_counters(&self, outcome: &FunctionalOutcome) {
        let Some(observer) = &self.observer else {
            return;
        };
        let engine = &outcome.engine;
        observer.emit(SinkEvent::EngineCounter {
            name: "int8_layers",
            value: outcome.int8_layers as f64,
        });
        observer.emit(SinkEvent::EngineCounter {
            name: "int8_gated_layers",
            value: outcome.int8_gated as f64,
        });
        for (name, value) in [
            ("pool_tasks", engine.pool_tasks as f64),
            ("pool_inline_tasks", engine.inline_tasks as f64),
            ("pool_queue_wait_ns", engine.queue_wait_ns as f64),
            ("arena_fresh_bytes", engine.arena_fresh_bytes as f64),
            ("arena_reused_bytes", engine.arena_reused_bytes as f64),
            ("slot_bytes", engine.slot_bytes as f64),
        ] {
            observer.emit(SinkEvent::EngineCounter { name, value });
        }
        // Mirror the flight recorder's per-request profile: ring drops
        // as counters (so an incomplete profile is visible in JSON and
        // Prometheus exposition), stage totals as histogram samples.
        if let Some(profile) = &engine.profile {
            observer.emit(SinkEvent::EngineCounter {
                name: "flight_records",
                value: profile.span_count as f64,
            });
            observer.emit(SinkEvent::EngineCounter {
                name: "flight_dropped_records",
                value: profile.dropped as f64,
            });
            for stage in &profile.stages {
                observer.emit(SinkEvent::Stage {
                    stage: stage.stage,
                    duration_us: stage.total_us,
                });
            }
        }
    }
}

/// Executes `plan` functionally on `input`.
///
/// One-shot convenience over [`Executor`]: builds a session, runs the
/// single input, and tears the pool down. Callers running many inputs
/// should hold an [`Executor`] and use [`Executor::batch_execute`].
///
/// # Errors
/// Fails on plan/graph mismatch, shape errors, or if a worker thread
/// panics (surfaced as [`CoreError::Internal`]).
pub fn execute(graph: &Graph, plan: &ExecutionPlan, input: &Tensor) -> Result<FunctionalOutcome> {
    Executor::new(graph)?.execute(plan, input)
}

/// Per-run counter deltas collected by [`run_one`].
struct RunCounters {
    corun: usize,
    cpu: usize,
    int8: usize,
    int8_gated: usize,
    parallel_regions: usize,
    engine: EngineStats,
    recovery: FaultCounts,
}

/// Everything a node execution needs, shared by reference with pooled
/// tasks. `Copy` so closures capture it wholesale. Deliberately does
/// *not* carry the pool: a queued job borrowing the pool it sits in
/// would make the session self-referential, so the pool travels as an
/// explicit driver-side parameter instead.
struct Ctx<'env> {
    graph: &'env Graph,
    structure: &'env Structure,
    plan: &'env ExecutionPlan,
    input: &'env Tensor,
    slots: &'env [OnceLock<Tensor>],
    corun: &'env AtomicUsize,
    cpu: &'env AtomicUsize,
    int8: &'env AtomicUsize,
    int8_gated: &'env AtomicUsize,
    slot_bytes: &'env AtomicU64,
    faults: Option<&'env FaultInjector>,
    /// This session's worker-loss ledger: watchdog write-offs debit
    /// here so they settle (credit back) when the session's scope has
    /// joined every worker, instead of depressing the process-global
    /// budget forever.
    losses: &'env pool::LossAccount,
    corun_cutoff: u64,
}

impl Clone for Ctx<'_> {
    fn clone(&self) -> Self {
        *self
    }
}

impl Copy for Ctx<'_> {}

/// Drives one input through every segment on the calling thread,
/// delegating branch bodies and split partials to the pool.
fn run_one<'env>(ctx: Ctx<'env>, pool: &Pool<'env, TaskResult>) -> Result<RunCounters> {
    let stats_before = EngineStats::capture(
        &pool.stats(),
        &scratch_stats(),
        ctx.slot_bytes.load(Ordering::Relaxed),
    );
    let corun_before = ctx.corun.load(Ordering::Relaxed);
    let cpu_before = ctx.cpu.load(Ordering::Relaxed);
    let int8_before = ctx.int8.load(Ordering::Relaxed);
    let int8_gated_before = ctx.int8_gated.load(Ordering::Relaxed);
    let recovery_before = ctx.faults.map(FaultInjector::counts).unwrap_or_default();

    // Per-request flight window: everything recorded between here and
    // the drain below that is causally reachable from the request root
    // span becomes this request's profile.
    let profiled = flight::enabled();
    let marker = profiled.then(flight::mark);
    let dropped_before = if profiled {
        flight::dropped_records()
    } else {
        0
    };
    let root = flight::begin(flight::SpanKind::Request, flight::NO_NODE);

    let run: Result<usize> = flight::with_parent(root.id(), || {
        let mut parallel_regions = 0usize;
        for segment in ctx.structure.segments() {
            match segment {
                Segment::Chain(nodes) => {
                    for &id in nodes {
                        exec_node(ctx, id, Some(pool))?;
                    }
                }
                Segment::Parallel { branches, .. } => {
                    let non_empty: Vec<&[NodeId]> = branches
                        .iter()
                        .filter(|b| !b.is_empty())
                        .map(Vec::as_slice)
                        .collect();
                    if non_empty.len() < 2 {
                        // Zero or one real branch: nothing to parallelize.
                        for &id in non_empty.into_iter().flatten() {
                            exec_node(ctx, id, Some(pool))?;
                        }
                    } else {
                        parallel_regions += 1;
                        exec_branches(ctx, pool, &non_empty)?;
                    }
                }
            }
        }
        Ok(parallel_regions)
    });
    flight::end(root);
    let parallel_regions = run?;

    let mut stats_after = EngineStats::capture(
        &pool.stats(),
        &scratch_stats(),
        ctx.slot_bytes.load(Ordering::Relaxed),
    );
    if let Some(marker) = &marker {
        let dropped = flight::dropped_records().saturating_sub(dropped_before);
        stats_after.profile = Some(flight::profile_since(marker, root.id(), dropped));
    }
    Ok(RunCounters {
        corun: ctx.corun.load(Ordering::Relaxed) - corun_before,
        cpu: ctx.cpu.load(Ordering::Relaxed) - cpu_before,
        int8: ctx.int8.load(Ordering::Relaxed) - int8_before,
        int8_gated: ctx.int8_gated.load(Ordering::Relaxed) - int8_gated_before,
        parallel_regions,
        recovery: recovery_before.delta(&ctx.faults.map(FaultInjector::counts).unwrap_or_default()),
        engine: stats_before.snapshot_delta(&stats_after),
    })
}

/// Runs the branches of one fork-join region: all but the last go to the
/// pool, the last runs on this thread (it would idle waiting otherwise).
/// Branches write disjoint slot ranges, so they share `ctx.slots`
/// directly — no snapshot copy of previous outputs. Pooled branch
/// bodies get no pool handle (a job may not borrow its own queue), so
/// any splits inside them compute both partials on the worker thread;
/// the inline branch keeps the pool and co-runs its splits.
fn exec_branches<'env>(
    ctx: Ctx<'env>,
    pool: &Pool<'env, TaskResult>,
    branches: &[&'env [NodeId]],
) -> Result<()> {
    let (last, rest) = branches.split_last().expect("caller checked len >= 2");
    let parent = flight::current_parent();
    let handles: Vec<_> = rest
        .iter()
        .map(|&branch| {
            let submitted = submit_ns();
            pool.submit(Box::new(move || {
                traced_task(parent, submitted, flight::NO_NODE, || {
                    run_branch(ctx, branch, None).map(|()| None)
                })
            }))
        })
        .collect();
    let mut first_err = run_branch(ctx, last, Some(pool)).err();
    for handle in handles {
        match handle.join(pool) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(CoreError::Internal {
                    reason: "branch worker panicked".to_string(),
                }));
            }
        }
    }
    first_err.map_or(Ok(()), Err)
}

/// Executes one branch's nodes in order (on whichever thread runs it).
fn run_branch<'env>(
    ctx: Ctx<'env>,
    branch: &[NodeId],
    pool: Option<&Pool<'env, TaskResult>>,
) -> Result<()> {
    for &id in branch {
        exec_node(ctx, id, pool)?;
    }
    Ok(())
}

/// A graph node id as recorded in flight spans.
fn flight_node(id: NodeId) -> u32 {
    u32::try_from(id.index()).unwrap_or(flight::NO_NODE)
}

/// Wraps a pooled task body for the flight recorder: restores the
/// submitting span's causal parent on the executing thread and records
/// a queue-wait span (submission to pickup) plus a task-run span around
/// the body. `submit_ns` of 0 means "recorder was off at submission" —
/// the body still runs under `parent`, just without pool spans.
fn traced_task<R>(parent: u64, submit_ns: u64, node: u32, body: impl FnOnce() -> R) -> R {
    flight::with_parent(parent, || {
        if submit_ns == 0 || !flight::enabled() {
            return body();
        }
        let picked_up_ns = flight::now_ns();
        flight::record_manual(
            flight::SpanKind::QueueWait,
            node,
            parent,
            submit_ns,
            picked_up_ns,
            0,
        );
        let task = flight::begin(flight::SpanKind::TaskRun, node);
        let result = flight::with_parent(task.id(), body);
        flight::end(task);
        result
    })
}

/// Submission timestamp for [`traced_task`] (0 when the recorder is off).
fn submit_ns() -> u64 {
    if flight::enabled() {
        flight::now_ns()
    } else {
        0
    }
}

/// Resolves a node output: computed slots first, then the borrowed
/// network input for the seed node.
fn lookup<'env>(ctx: Ctx<'env>, id: NodeId) -> Result<&'env Tensor> {
    if let Some(tensor) = ctx.slots[id.index()].get() {
        return Ok(tensor);
    }
    if id.index() == 0 {
        return Ok(ctx.input);
    }
    Err(CoreError::Internal {
        reason: format!("input {id} not computed"),
    })
}

/// Executes one node and moves its output into the slot.
fn exec_node<'env>(
    ctx: Ctx<'env>,
    id: NodeId,
    pool: Option<&Pool<'env, TaskResult>>,
) -> Result<()> {
    let node = ctx.graph.node(id)?;
    if node.layer().class() == LayerClass::Input {
        return Ok(()); // resolved by `lookup` as the borrowed input
    }
    let inputs: Vec<&Tensor> = node
        .inputs()
        .iter()
        .map(|i| lookup(ctx, *i))
        .collect::<Result<_>>()?;
    let span = flight::begin(flight::SpanKind::Node, flight_node(id));
    let result = flight::with_parent(span.id(), || forward_assigned(ctx, id, inputs, pool));
    flight::end(span);
    let (tensor, corun, cpu) = result?;
    ctx.corun.fetch_add(usize::from(corun), Ordering::Relaxed);
    ctx.cpu.fetch_add(cpu, Ordering::Relaxed);
    ctx.slot_bytes
        .fetch_add((tensor.as_slice().len() * 4) as u64, Ordering::Relaxed);
    ctx.slots[id.index()]
        .set(tensor)
        .map_err(|_| CoreError::Internal {
            reason: format!("node {id} computed twice"),
        })
}

/// Runs one output-range partial in the requested precision: int8
/// quantized kernels when the plan asks for them and the layer has
/// them, f32 reference kernels otherwise.
fn forward_partial_prec(
    layer: &dyn Layer,
    inputs: &[&Tensor],
    range: std::ops::Range<usize>,
    int8: bool,
) -> Result<Tensor> {
    if int8 {
        Ok(layer.forward_partial_int8(inputs, range, false)?)
    } else {
        Ok(layer.forward_partial(inputs, range)?)
    }
}

/// Runs a whole (unsplit) layer in the requested precision. The int8
/// path is the full-range partial — identical kernel, identical
/// requantize epilogue — so a `Gpu`/`Cpu` node and a merged split
/// produce bitwise-identical bytes under the same plan.
fn forward_full(layer: &dyn Layer, inputs: &[&Tensor], int8: bool) -> Result<Tensor> {
    if int8 {
        let shapes: Vec<_> = inputs.iter().map(|t| t.shape()).collect();
        let units = layer.partition_units(&shapes)?;
        if units > 0 {
            return Ok(layer.forward_partial_int8(inputs, 0..units, false)?);
        }
    }
    Ok(layer.forward(inputs)?)
}

/// Computes one node per its assignment; splits co-run as a pool task
/// (the CPU share) plus inline work (the GPU share) when a pool is
/// available, and fall back to computing both shares sequentially when
/// already running inside a pooled branch body. Returns
/// `(output, was_corun, was_cpu as 0/1)`.
fn forward_assigned<'env>(
    ctx: Ctx<'env>,
    id: NodeId,
    inputs: Vec<&'env Tensor>,
    pool: Option<&Pool<'env, TaskResult>>,
) -> Result<(Tensor, bool, usize)> {
    let node = ctx.graph.node(id)?;
    let layer = node.layer();
    let assignment = ctx.plan.nodes[id.index()].assignment;
    // Input-channel splits stay f32 regardless of the plan's precision:
    // their partial *sums* need f32 accumulation, and requantizing each
    // partial would double the rounding error.
    let int8_plan = ctx.plan.config.precision == Precision::Int8
        && layer.int8_ready()
        && !matches!(assignment, Assignment::SplitInput { .. });
    // An int8-capable layer whose shape loses to f32 (quantize/requant
    // overhead beats the saved weight traffic) stays in f32 — counted
    // separately so benches can see the gate at work.
    let int8 = int8_plan && layer.int8_worthwhile();
    if int8 {
        ctx.int8.fetch_add(1, Ordering::Relaxed);
    } else if int8_plan {
        ctx.int8_gated.fetch_add(1, Ordering::Relaxed);
    }
    match assignment {
        Assignment::Gpu => Ok((
            recovering_forward(ctx, id, || forward_full(layer, &inputs, int8))?,
            false,
            0,
        )),
        Assignment::Cpu => Ok((forward_full(layer, &inputs, int8)?, false, 1)),
        Assignment::SplitInput { cpu_fraction } => {
            let shapes: Vec<_> = inputs.iter().map(|t| t.shape()).collect();
            let channels = layer.input_channels(&shapes)?;
            if !layer.input_split_supported() || channels < 2 {
                return Ok((layer.forward(&inputs)?, false, 0));
            }
            let cpu_channels =
                ((cpu_fraction * channels as f64).round() as usize).clamp(1, channels - 1);
            let gpu_channels = channels - cpu_channels;
            let pool = pool.filter(|_| {
                layer
                    .workload(&shapes)
                    .is_ok_and(|w| w.flops >= ctx.corun_cutoff)
            });
            // The GPU takes the first channels (the paper's "first k input
            // channels"), the CPU the remainder; partial sums are added.
            let (gpu_part, cpu_part) = if let Some(pool) = pool {
                let task_inputs = inputs.clone();
                let parent = flight::current_parent();
                let submitted = submit_ns();
                let node_tag = flight_node(id);
                let cpu_task = pool.submit(Box::new(move || {
                    traced_task(parent, submitted, node_tag, || {
                        Ok(Some(layer.forward_partial_inputs(
                            &task_inputs,
                            gpu_channels..channels,
                        )?))
                    })
                }));
                let gpu_part = recovering_forward(ctx, id, || {
                    Ok(layer.forward_partial_inputs(&inputs, 0..gpu_channels)?)
                });
                (
                    gpu_part,
                    join_partial(ctx, cpu_task, pool, || {
                        Ok(layer.forward_partial_inputs(&inputs, gpu_channels..channels)?)
                    })?,
                )
            } else {
                let cpu_part = layer.forward_partial_inputs(&inputs, gpu_channels..channels)?;
                (
                    recovering_forward(ctx, id, || {
                        Ok(layer.forward_partial_inputs(&inputs, 0..gpu_channels)?)
                    }),
                    cpu_part,
                )
            };
            let mut merged = gpu_part?;
            if merged.shape() != cpu_part.shape() {
                return Err(CoreError::Internal {
                    reason: format!(
                        "input-split partials disagree: {} vs {}",
                        merged.shape(),
                        cpu_part.shape()
                    ),
                });
            }
            // In-place partial-sum merge: no third allocation.
            let merge_span = flight::begin(flight::SpanKind::Merge, flight_node(id));
            for (m, c) in merged.as_mut_slice().iter_mut().zip(cpu_part.as_slice()) {
                *m += c;
            }
            // A fused `+relu` node hands out *raw* partial sums on the
            // input split (relu(a) + relu(b) != relu(a + b)); its folded
            // activation applies exactly once, here, after the merge.
            if layer.deferred_epilogue_relu() {
                edgenn_tensor::ops::relu_in_place(merged.as_mut_slice());
            }
            flight::end(merge_span);
            Ok((merged, true, 0))
        }
        Assignment::Split { cpu_fraction } => {
            let shapes: Vec<_> = inputs.iter().map(|t| t.shape()).collect();
            let units = layer.partition_units(&shapes)?;
            if units < 2 {
                return Ok((forward_full(layer, &inputs, int8)?, false, 0));
            }
            let cpu_units = ((cpu_fraction * units as f64).round() as usize).clamp(1, units - 1);
            // The paper's convention: the GPU computes the first units,
            // the CPU the remainder (Section IV-D).
            let gpu_units = units - cpu_units;
            let pool = pool.filter(|_| {
                layer
                    .workload(&shapes)
                    .is_ok_and(|w| w.flops >= ctx.corun_cutoff)
            });
            let (gpu_part, cpu_part) = if let Some(pool) = pool {
                let task_inputs = inputs.clone();
                let parent = flight::current_parent();
                let submitted = submit_ns();
                let node_tag = flight_node(id);
                let cpu_task = pool.submit(Box::new(move || {
                    traced_task(parent, submitted, node_tag, || {
                        forward_partial_prec(layer, &task_inputs, gpu_units..units, int8).map(Some)
                    })
                }));
                let gpu_part = recovering_forward(ctx, id, || {
                    forward_partial_prec(layer, &inputs, 0..gpu_units, int8)
                });
                (
                    gpu_part,
                    join_partial(ctx, cpu_task, pool, || {
                        forward_partial_prec(layer, &inputs, gpu_units..units, int8)
                    })?,
                )
            } else {
                let cpu_part = forward_partial_prec(layer, &inputs, gpu_units..units, int8)?;
                (
                    recovering_forward(ctx, id, || {
                        forward_partial_prec(layer, &inputs, 0..gpu_units, int8)
                    }),
                    cpu_part,
                )
            };
            // Move-merge: extend the GPU buffer with the CPU share and
            // restamp the layer's authoritative output shape — no
            // concat-then-reshape round trip.
            let merge_span = flight::begin(flight::SpanKind::Merge, flight_node(id));
            let mut data = gpu_part?.into_vec();
            data.extend_from_slice(cpu_part.as_slice());
            let out = Tensor::from_vec(data, node.output_shape().dims())?;
            flight::end(merge_span);
            Ok((out, true, 0))
        }
    }
}

/// Runs one GPU-role computation under the injector's recovery state
/// machine: a failing launch is retried up to the budget, then
/// recomputed in the CPU role. Every path runs the identical kernel
/// over the identical operands, so recovery never perturbs the output.
fn recovering_forward(
    ctx: Ctx<'_>,
    id: NodeId,
    compute: impl Fn() -> Result<Tensor>,
) -> Result<Tensor> {
    let Some(injector) = ctx.faults else {
        return compute();
    };
    if !injector.should_fail(id.index()) {
        return compute();
    }
    let mut failed_attempts = 1u32;
    let recovered = loop {
        if failed_attempts > injector.max_retries {
            // Retry budget exhausted: re-place the work in the CPU role.
            injector.fallbacks.fetch_add(1, Ordering::Relaxed);
            flight::instant(flight::SpanKind::Fallback, flight_node(id), 0);
            break compute();
        }
        injector.retries.fetch_add(1, Ordering::Relaxed);
        flight::instant(
            flight::SpanKind::Retry,
            flight_node(id),
            u64::from(failed_attempts),
        );
        if !injector.should_fail(id.index()) {
            break compute();
        }
        failed_attempts += 1;
    };
    // A fault happened on this launch: snapshot the flight rings so the
    // records leading up to it (including the retry/fallback markers
    // just written) survive as a black box.
    flight::blackbox_dump(&format!("kernel-fault: node {}", id.index()));
    recovered
}

/// Joins a split-partial task, mapping pool-level failures to engine
/// errors. With a fault injector attached, a lost worker (panicked
/// task, or one hung past the injector's join timeout) is converted
/// into an inline recomputation of the identical share instead of a
/// failed inference; a timed-out worker still occupies its core, so it
/// is also debited from the worker budget via the session's
/// [`pool::LossAccount`] — visible to concurrent sessions immediately,
/// credited back when this session's scope has joined every worker.
fn join_partial<'env>(
    ctx: Ctx<'env>,
    task: crate::runtime::pool::TaskHandle<'env, TaskResult>,
    pool: &Pool<'env, TaskResult>,
    recompute: impl FnOnce() -> Result<Tensor>,
) -> Result<Tensor> {
    let joined = match ctx.faults.and_then(|f| f.join_timeout) {
        Some(timeout) => task.join_deadline(pool, timeout),
        None => task.join(pool),
    };
    match joined {
        Ok(result) => result?.ok_or_else(|| CoreError::Internal {
            reason: "split task returned no tensor".to_string(),
        }),
        Err(err) => {
            let Some(injector) = ctx.faults else {
                return Err(CoreError::Internal {
                    reason: "cpu worker panicked".to_string(),
                });
            };
            if err == JoinError::TimedOut {
                ctx.losses.debit(); // also records the WorkerLoss instant
            } else {
                flight::instant(flight::SpanKind::WorkerLoss, flight::NO_NODE, 0);
            }
            injector.worker_losses.fetch_add(1, Ordering::Relaxed);
            flight::blackbox_dump(match err {
                JoinError::TimedOut => "deadline-miss: worker held a partial past the watchdog",
                JoinError::Panicked => "worker-panic: split partial lost",
            });
            recompute()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionConfig;
    use crate::runtime::Runtime;
    use crate::tuner::Tuner;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_obs::Recorder;
    use edgenn_sim::platforms::jetson_agx_xavier;

    fn edgenn_plan(graph: &Graph) -> ExecutionPlan {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(graph, &runtime).unwrap();
        tuner
            .plan(graph, &runtime, ExecutionConfig::edgenn())
            .unwrap()
    }

    #[test]
    fn functional_execution_matches_reference_for_all_models() {
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let plan = edgenn_plan(&graph);
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
            let reference = graph.forward(&input).unwrap();
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: max diff {}",
                outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
            );
        }
    }

    #[test]
    fn batch_execute_matches_reference_for_all_models() {
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let plan = edgenn_plan(&graph);
            let inputs: Vec<Tensor> = (0..3)
                .map(|i| Tensor::random(graph.input_shape().dims(), 1.0, 40 + i))
                .collect();
            let executor = Executor::new(&graph).unwrap();
            let outcomes = executor.batch_execute(&plan, &inputs).unwrap();
            assert_eq!(outcomes.len(), inputs.len());
            for (input, outcome) in inputs.iter().zip(&outcomes) {
                let reference = graph.forward(input).unwrap();
                assert!(
                    outcome.output.approx_eq(&reference, 1e-4),
                    "{kind}: batch diverged from reference"
                );
            }
        }
    }

    #[test]
    fn batch_execute_rejects_empty_batch() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let executor = Executor::new(&graph).unwrap();
        assert!(matches!(
            executor.batch_execute(&plan, &[]),
            Err(CoreError::Internal { .. })
        ));
    }

    #[test]
    fn executor_sessions_are_reusable() {
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let executor = Executor::new(&graph).unwrap();
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 9);
        let a = executor.execute(&plan, &input).unwrap();
        let b = executor.execute(&plan, &input).unwrap();
        assert!(a.output.approx_eq(&b.output, 0.0), "runs are deterministic");
        // The second run should hit a warm arena: most scratch bytes
        // served without allocating.
        assert!(
            b.engine.arena_reused_bytes > 0,
            "second run must reuse scratch: {:?}",
            b.engine
        );
    }

    #[test]
    fn engine_counters_reach_the_observer() {
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let recorder = Recorder::new();
        let executor = Executor::new(&graph)
            .unwrap()
            .with_observer(Arc::new(recorder.clone()));
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 5);
        let outcome = executor.execute(&plan, &input).unwrap();
        assert!(outcome.parallel_regions > 0, "fire modules should fork");
        let metrics = recorder.metrics();
        let tasks = metrics
            .counter_value("edgenn_engine_pool_tasks_total")
            .unwrap_or(0.0)
            + metrics
                .counter_value("edgenn_engine_pool_inline_tasks_total")
                .unwrap_or(0.0);
        assert!(
            tasks > 0.0,
            "forked branches must run as pool tasks (worker or inline)"
        );
        assert!(metrics
            .counter_value("edgenn_engine_arena_fresh_bytes_total")
            .is_some());
    }

    #[test]
    fn splits_actually_happen_on_fc_heavy_models() {
        // Paper-scale FCNN: its wide fc layers are memory-bound on the
        // GPU, so the tuned plan must co-run them; the functional engine
        // then really computes the two parts as separate pool tasks.
        let graph = build(ModelKind::Fcnn, ModelScale::Paper);
        let plan = edgenn_plan(&graph);
        assert!(plan.corun_count() > 0, "paper-scale fc layers should split");
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 3);
        let reference = graph.forward(&input).unwrap();
        let outcome = execute(&graph, &plan, &input).unwrap();
        assert!(outcome.corun_layers > 0);
        assert!(
            outcome.engine.pool_tasks + outcome.engine.inline_tasks > 0,
            "splits must go through the pool: {:?}",
            outcome.engine
        );
        assert!(outcome.output.approx_eq(&reference, 1e-4));
    }

    #[test]
    fn branch_regions_run_in_parallel_for_squeezenet() {
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 5);
        let outcome = execute(&graph, &plan, &input).unwrap();
        assert!(outcome.parallel_regions > 0, "fire modules should fork");
        let reference = graph.forward(&input).unwrap();
        assert!(outcome.output.approx_eq(&reference, 1e-4));
    }

    #[test]
    fn forced_splits_on_every_partitionable_layer_stay_correct() {
        use crate::plan::{Assignment, NodePlan};
        use edgenn_sim::AllocStrategy;
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
            for id in graph.topo_order() {
                let node = graph.node(id).unwrap();
                let shapes: Vec<_> = node
                    .inputs()
                    .iter()
                    .map(|i| graph.node(*i).unwrap().output_shape())
                    .collect();
                if node.layer().partitionable()
                    && node.layer().partition_units(&shapes).unwrap_or(1) >= 2
                {
                    nodes[id.index()] = NodePlan {
                        assignment: Assignment::Split { cpu_fraction: 0.5 },
                        output_alloc: AllocStrategy::Explicit,
                        prefetch_inputs: false,
                    };
                }
            }
            let plan = ExecutionPlan {
                config: ExecutionConfig::edgenn(),
                nodes,
            };
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 11);
            let reference = graph.forward(&input).unwrap();
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(outcome.corun_layers > 0, "{kind}");
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: forced-split mismatch"
            );
        }
    }

    #[test]
    fn forced_input_splits_stay_correct() {
        use crate::plan::{Assignment, NodePlan};
        use edgenn_sim::AllocStrategy;
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
            let mut forced = 0;
            for id in graph.topo_order() {
                let node = graph.node(id).unwrap();
                let shapes: Vec<_> = node
                    .inputs()
                    .iter()
                    .map(|i| graph.node(*i).unwrap().output_shape())
                    .collect();
                if node.layer().input_split_supported()
                    && node.layer().input_channels(&shapes).unwrap_or(1) >= 2
                {
                    nodes[id.index()] = NodePlan {
                        assignment: Assignment::SplitInput { cpu_fraction: 0.4 },
                        output_alloc: AllocStrategy::Explicit,
                        prefetch_inputs: false,
                    };
                    forced += 1;
                }
            }
            if forced == 0 {
                continue;
            }
            let plan = ExecutionPlan {
                config: ExecutionConfig::edgenn(),
                nodes,
            };
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 17);
            let reference = graph.forward(&input).unwrap();
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(outcome.corun_layers > 0, "{kind}");
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: input-split plan diverged by {}",
                outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
            );
        }
    }

    #[test]
    fn fused_nodes_allow_input_splits_with_deferred_relu() {
        // Satellite regression: PR 9 retires the "input-channel splitting
        // disabled on fused layers" restriction. A fused `conv+relu` node
        // under a forced SplitInput must hand out raw partial sums and
        // have the executor clamp once after the merge — matching the
        // full-range fused run within f32 partial-sum tolerance.
        use crate::plan::{Assignment, NodePlan};
        use edgenn_nn::graph::{compile, CompileOptions};
        use edgenn_sim::AllocStrategy;
        let mut fused_split_models = 0;
        for kind in ModelKind::ALL {
            let raw = build(kind, ModelScale::Tiny);
            let (graph, _) = compile(&raw, &CompileOptions::default()).unwrap();
            let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
            let mut forced_fused = 0;
            for id in graph.topo_order() {
                let node = graph.node(id).unwrap();
                let shapes: Vec<_> = node
                    .inputs()
                    .iter()
                    .map(|i| graph.node(*i).unwrap().output_shape())
                    .collect();
                if node.layer().input_split_supported()
                    && node.layer().input_channels(&shapes).unwrap_or(1) >= 2
                {
                    nodes[id.index()] = NodePlan {
                        assignment: Assignment::SplitInput { cpu_fraction: 0.4 },
                        output_alloc: AllocStrategy::Explicit,
                        prefetch_inputs: false,
                    };
                    if node.layer().deferred_epilogue_relu() {
                        forced_fused += 1;
                    }
                }
            }
            if forced_fused == 0 {
                continue;
            }
            fused_split_models += 1;
            let plan = ExecutionPlan {
                config: ExecutionConfig::edgenn(),
                nodes,
            };
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 23);
            let reference = graph.forward(&input).unwrap();
            let raw_reference = raw.forward(&input).unwrap();
            assert_eq!(
                reference.as_slice(),
                raw_reference.as_slice(),
                "{kind}: compiled forward must match the uncompiled graph"
            );
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: fused input-split diverged by {}",
                outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
            );
        }
        assert!(
            fused_split_models >= 3,
            "expected fused input-splittable nodes on most conv models, got {fused_split_models}"
        );
    }

    /// First GPU-role node of `plan` (skipping the input node) — the
    /// anchor for targeted kernel-fault tests.
    fn first_gpu_role_node(graph: &Graph, plan: &ExecutionPlan) -> usize {
        graph
            .topo_order()
            .into_iter()
            .find(|id| {
                graph.node(*id).unwrap().layer().class() != LayerClass::Input
                    && !matches!(plan.nodes[id.index()].assignment, Assignment::Cpu)
            })
            .expect("plan has a GPU-role node")
            .index()
    }

    #[test]
    fn recovered_runs_are_bitwise_identical_to_fault_free() {
        // Property over seeded fault plans: for any injected fault mix,
        // hybrid_forward with recovery must reproduce the fault-free
        // output bit for bit.
        for kind in [ModelKind::LeNet, ModelKind::SqueezeNet] {
            let graph = build(kind, ModelScale::Tiny);
            let plan = edgenn_plan(&graph);
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 21);
            let clean = execute(&graph, &plan, &input).unwrap();
            let mut any_injected = false;
            for seed in 0..24u64 {
                let faults = FaultPlan::from_seed(seed, graph.len());
                let injector = FaultInjector::from_plan(&faults, graph.len(), 3);
                let executor = Executor::new(&graph).unwrap().with_faults(injector);
                let outcome = executor.execute(&plan, &input).unwrap();
                any_injected |= outcome.recovery.faults_injected > 0;
                assert!(
                    outcome.output.approx_eq(&clean.output, 0.0),
                    "{kind} seed {seed}: recovery perturbed the output by {}",
                    outcome
                        .output
                        .max_abs_diff(&clean.output)
                        .unwrap_or(f32::NAN)
                );
            }
            assert!(any_injected, "{kind}: no seed exercised the injector");
        }
    }

    #[test]
    fn permanent_gpu_failure_exhausts_retries_then_falls_back_to_cpu() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 33);
        let clean = execute(&graph, &plan, &input).unwrap();
        let node = first_gpu_role_node(&graph, &plan);
        let mut faults = FaultPlan::none();
        faults.kernel_faults.push(edgenn_sim::KernelFault {
            node,
            fail_count: u32::MAX,
        });
        let injector = FaultInjector::from_plan(&faults, graph.len(), 3);
        let executor = Executor::new(&graph).unwrap().with_faults(injector);
        let outcome = executor.execute(&plan, &input).unwrap();
        assert_eq!(outcome.recovery.retries, 3, "all retries spent");
        assert_eq!(outcome.recovery.fallbacks, 1, "then exactly one fallback");
        assert_eq!(outcome.recovery.faults_injected, 4, "initial + 3 retries");
        assert!(outcome.output.approx_eq(&clean.output, 0.0));
    }

    #[test]
    fn one_shot_transient_fault_recovers_in_exactly_one_retry() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 33);
        let clean = execute(&graph, &plan, &input).unwrap();
        let node = first_gpu_role_node(&graph, &plan);
        let mut faults = FaultPlan::none();
        faults.kernel_faults.push(edgenn_sim::KernelFault {
            node,
            fail_count: 1,
        });
        let injector = FaultInjector::from_plan(&faults, graph.len(), 3);
        let executor = Executor::new(&graph).unwrap().with_faults(injector);
        let outcome = executor.execute(&plan, &input).unwrap();
        assert_eq!(outcome.recovery.retries, 1, "exactly one retry");
        assert_eq!(outcome.recovery.fallbacks, 0, "no fallback needed");
        assert_eq!(outcome.recovery.faults_injected, 1);
        assert!(outcome.output.approx_eq(&clean.output, 0.0));
    }

    #[test]
    fn hung_worker_partial_is_recomputed_inline_within_the_deadline() {
        // A permanently-failing split node with a watchdog timeout: the
        // run must still produce the exact fault-free output even when
        // joins are deadline-bounded.
        let graph = build(ModelKind::Fcnn, ModelScale::Paper);
        let plan = edgenn_plan(&graph);
        assert!(plan.corun_count() > 0);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 3);
        let clean = execute(&graph, &plan, &input).unwrap();
        let faults = FaultPlan::from_seed(7, graph.len());
        let injector = FaultInjector::from_plan(&faults, graph.len(), 2)
            .with_join_timeout(Duration::from_secs(30));
        let executor = Executor::new(&graph).unwrap().with_faults(injector);
        let outcome = executor.execute(&plan, &input).unwrap();
        assert!(outcome.output.approx_eq(&clean.output, 0.0));
    }

    #[test]
    fn slot_bytes_accounts_every_non_input_output_exactly() {
        // Fault-free, the engine moves exactly one tensor per non-input
        // node into its slot and frees nothing mid-run, so the measured
        // slot bytes equal the sum of non-input output sizes — the same
        // quantity the tier-D checker certifies.
        for kind in [ModelKind::LeNet, ModelKind::SqueezeNet] {
            let graph = build(kind, ModelScale::Tiny);
            let plan = edgenn_plan(&graph);
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 13);
            let outcome = execute(&graph, &plan, &input).unwrap();
            let expected: u64 = graph
                .nodes()
                .iter()
                .filter(|n| n.layer().class() != LayerClass::Input)
                .map(|n| (n.output_shape().num_elements() * 4) as u64)
                .sum();
            assert_eq!(outcome.engine.slot_bytes, expected, "{kind}");
        }
    }

    #[test]
    fn snapshot_delta_windows_counters_and_keeps_later_profile() {
        let a = EngineStats {
            pool_tasks: 10,
            inline_tasks: 2,
            queue_wait_ns: 1_000,
            arena_fresh_bytes: 4_096,
            arena_reused_bytes: 0,
            slot_bytes: 256,
            profile: None,
        };
        let b = EngineStats {
            pool_tasks: 13,
            inline_tasks: 2,
            queue_wait_ns: 1_500,
            arena_fresh_bytes: 4_096,
            arena_reused_bytes: 8_192,
            slot_bytes: 1_280,
            profile: Some(ProfileSummary::default()),
        };
        let delta = a.snapshot_delta(&b);
        assert_eq!(delta.pool_tasks, 3);
        assert_eq!(delta.inline_tasks, 0);
        assert_eq!(delta.queue_wait_ns, 500);
        assert_eq!(delta.arena_fresh_bytes, 0);
        assert_eq!(delta.arena_reused_bytes, 8_192);
        assert_eq!(delta.slot_bytes, 1_024);
        assert!(delta.profile.is_some(), "delta carries the later profile");
        // Reversed order must saturate, not wrap.
        assert_eq!(b.snapshot_delta(&a).pool_tasks, 0);
    }

    #[test]
    fn flight_profile_rides_in_engine_stats_per_request() {
        flight::enable();
        let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let executor = Executor::new(&graph).unwrap();
        let inputs: Vec<Tensor> = (0..2)
            .map(|i| Tensor::random(graph.input_shape().dims(), 1.0, 60 + i))
            .collect();
        let outcomes = executor.batch_execute(&plan, &inputs).unwrap();
        for outcome in &outcomes {
            let profile = outcome
                .engine
                .profile
                .as_ref()
                .expect("flight enabled => profile present");
            let request = profile.stage("request").expect("request stage");
            assert_eq!(
                request.count, 1,
                "each request window holds exactly its own root span"
            );
            let node = profile.stage("node").expect("node stage");
            // SqueezeNet tiny has a few dozen layers; every non-input
            // node must have produced a node span in its own window.
            assert_eq!(node.count as usize, graph.len() - 1);
            assert!(node.total_us > 0.0);
            assert!(node.p50_us <= node.p99_us);
            assert!(
                profile.stage("compute").is_some(),
                "kernel compute phases must be attributed: {:?}",
                profile.stages.iter().map(|s| s.stage).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn deep_graphs_reserve_flight_capacity_and_drop_nothing() {
        flight::enable();
        // The regression: VGG's 41-node chain overflowed the old fixed
        // 4096-record rings by ~5k records per paper-scale request, so
        // its profiles reported flight_dropped > 0 and lost the early
        // conv spans. Executor construction now reserves capacity from
        // the node count before the first record lands.
        let graph = build(ModelKind::Vgg16, ModelScale::Tiny);
        let executor = Executor::new(&graph).unwrap();
        assert!(
            flight::retained_records_per_ring() >= graph.len() * FLIGHT_RECORDS_PER_NODE,
            "executor construction must size the rings from the node count"
        );
        let plan = edgenn_plan(&graph);
        let inputs: Vec<Tensor> = (0..2)
            .map(|i| Tensor::random(graph.input_shape().dims(), 1.0, 90 + i))
            .collect();
        let outcomes = executor.batch_execute(&plan, &inputs).unwrap();
        for outcome in &outcomes {
            let profile = outcome
                .engine
                .profile
                .as_ref()
                .expect("flight enabled => profile present");
            assert!(profile.span_count > 0);
            assert_eq!(
                profile.dropped, 0,
                "sized rings must hold a full request window"
            );
        }
    }

    #[test]
    fn fault_injected_run_leaves_a_blackbox_with_the_failing_span() {
        flight::enable();
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 33);
        let node = first_gpu_role_node(&graph, &plan);
        let mut faults = FaultPlan::none();
        faults.kernel_faults.push(edgenn_sim::KernelFault {
            node,
            fail_count: u32::MAX,
        });
        let injector = FaultInjector::from_plan(&faults, graph.len(), 1);
        let executor = Executor::new(&graph).unwrap().with_faults(injector);
        let outcome = executor.execute(&plan, &input).unwrap();
        assert!(outcome.recovery.fallbacks > 0);
        let dump = flight::last_blackbox().expect("fault must leave a black box");
        assert!(
            dump.reason.contains(&format!("node {node}")) || dump.reason.contains("worker"),
            "reason names the failure: {}",
            dump.reason
        );
        let node_tag = u32::try_from(node).unwrap();
        assert!(
            dump.records
                .iter()
                .any(|r| r.kind == flight::SpanKind::Retry && r.node == node_tag),
            "black box contains the failing node's retry span"
        );
        assert!(
            dump.records
                .iter()
                .any(|r| r.kind == flight::SpanKind::Fallback && r.node == node_tag),
            "black box contains the failing node's fallback span"
        );
    }

    #[test]
    fn cutoff_override_parses_and_validates() {
        assert_eq!(cutoff_override(Some("12345")), Some(12_345));
        assert_eq!(cutoff_override(Some(" 65536 ")), Some(65_536));
        assert_eq!(cutoff_override(Some("0")), None, "zero would gate nothing");
        assert_eq!(cutoff_override(Some("not-a-number")), None);
        assert_eq!(cutoff_override(None), None);
    }

    #[test]
    fn measured_cutoff_stays_within_the_clamp() {
        let cutoff = measure_corun_cutoff();
        assert!(
            (CUTOFF_FLOOR..=CUTOFF_CEIL).contains(&cutoff),
            "measured cutoff {cutoff} escaped the clamp"
        );
    }

    #[test]
    fn int8_execution_tracks_f32_within_quantization_error() {
        // Satellite 3's accuracy-loss bound: on every model, the int8
        // hybrid output must stay within a small absolute band of the
        // f32 reference (outputs are post-softmax, so values are
        // probabilities in [0, 1]).
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let tuner = Tuner::new(&graph, &runtime).unwrap();
            let plan = tuner
                .plan(&graph, &runtime, ExecutionConfig::edgenn_int8())
                .unwrap();
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
            let reference = graph.forward(&input).unwrap();
            let outcome = execute(&graph, &plan, &input).unwrap();
            assert!(
                outcome.int8_layers + outcome.int8_gated > 0,
                "{kind}: int8 plan must reach the quantized kernels or the gate"
            );
            assert!(
                outcome.output.approx_eq(&reference, 0.05),
                "{kind}: int8 output drifted {} from f32",
                outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
            );
        }
    }

    #[test]
    fn int8_split_plans_merge_bitwise_with_unsplit_int8() {
        // Integer accumulation is order-insensitive and the requantize
        // epilogue is per-row independent, so an int8 split+merge must
        // reproduce the unsplit int8 run bit for bit — a stronger
        // invariant than the f32 path's associativity tolerance.
        use crate::plan::NodePlan;
        use edgenn_sim::AllocStrategy;
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Tiny);
            let unsplit = ExecutionPlan {
                config: ExecutionConfig::edgenn_int8(),
                nodes: vec![NodePlan::gpu_explicit(); graph.len()],
            };
            let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
            for id in graph.topo_order() {
                let node = graph.node(id).unwrap();
                let shapes: Vec<_> = node
                    .inputs()
                    .iter()
                    .map(|i| graph.node(*i).unwrap().output_shape())
                    .collect();
                if node.layer().partitionable()
                    && node.layer().partition_units(&shapes).unwrap_or(1) >= 2
                {
                    nodes[id.index()] = NodePlan {
                        assignment: Assignment::Split { cpu_fraction: 0.5 },
                        output_alloc: AllocStrategy::Explicit,
                        prefetch_inputs: false,
                    };
                }
            }
            let split = ExecutionPlan {
                config: ExecutionConfig::edgenn_int8(),
                nodes,
            };
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 29);
            let a = execute(&graph, &unsplit, &input).unwrap();
            let b = execute(&graph, &split, &input).unwrap();
            assert!(b.corun_layers > 0, "{kind}");
            assert!(
                a.output.approx_eq(&b.output, 0.0),
                "{kind}: int8 split diverged bitwise from unsplit"
            );
        }
    }

    #[test]
    fn int8_layer_count_reaches_the_observer() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let plan = {
            let platform = jetson_agx_xavier();
            let runtime = Runtime::new(&platform);
            let tuner = Tuner::new(&graph, &runtime).unwrap();
            tuner
                .plan(&graph, &runtime, ExecutionConfig::edgenn_int8())
                .unwrap()
        };
        let recorder = Recorder::new();
        let executor = Executor::new(&graph)
            .unwrap()
            .with_observer(Arc::new(recorder.clone()));
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 5);
        let outcome = executor.execute(&plan, &input).unwrap();
        assert!(outcome.int8_layers > 0);
        let metrics = recorder.metrics();
        assert_eq!(
            metrics.counter_value("edgenn_engine_int8_layers_total"),
            Some(outcome.int8_layers as f64)
        );
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let plan = edgenn_plan(&graph);
        let bad = Tensor::zeros(&[3, 3, 3]);
        assert!(matches!(
            execute(&graph, &plan, &bad),
            Err(CoreError::PlanMismatch { .. })
        ));
    }
}
