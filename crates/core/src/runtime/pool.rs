//! Session-scoped worker pool for the functional engine.
//!
//! The previous engine spawned fresh OS threads for every split layer and
//! every fork-join region — thread creation cost dwarfed the kernels it
//! was parallelizing. This pool is created **once per execute session**:
//! workers are spawned inside a `std::thread::scope`, park on a condvar,
//! and every split/branch becomes a queue push instead of a `clone(2)`.
//!
//! Design constraints and how they are met:
//!
//! - **No `unsafe`** (workspace-wide deny): jobs are `Box<dyn FnOnce() ->
//!   T + Send + 'env>` where `'env` is the scope environment lifetime, so
//!   tasks can borrow the graph, plan, and output slots directly — no
//!   `'static` laundering, no lifetime transmutes. The pool itself must be
//!   declared *before* the `thread::scope` that spawns its workers, and
//!   jobs must not borrow the pool they are queued on (the queue's drop
//!   glue would make the type self-referential) — resubmission happens
//!   from the driver side only.
//! - **Deadlock freedom on any worker count** (including zero): `join`
//!   uses help-first reclaim — if the task is still queued, the waiter
//!   takes it back and runs it inline instead of blocking. On a one-core
//!   edge target this is also the fastest schedule: no context switch.
//! - **Panic containment**: worker and inline execution both run the job
//!   under `catch_unwind`; a panicking kernel surfaces as
//!   [`JoinError::Panicked`], never a hung scope join.
//!
//! Shut the pool down (or let [`ShutdownGuard`] do it) before the scope
//! closes, otherwise the scope's implicit joins wait forever.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use edgenn_obs::flight;

/// A unit of work: owns its captures (which may borrow `'env` data).
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Why [`TaskHandle::join`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// The job panicked (on a worker or during inline reclaim).
    Panicked,
    /// The watchdog deadline of [`TaskHandle::join_deadline`] expired
    /// while a worker still held the job (hung or starved worker).
    TimedOut,
}

/// Cross-session count of workers a watchdog has written off as hung.
/// Each lost worker still occupies a core, so future sessions must
/// spawn fewer workers to avoid over-subscribing what remains.
static LOST_WORKERS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Cached `available_parallelism` probe; `usize::MAX` means "re-probe".
static CACHED_PARALLELISM: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(usize::MAX);

/// Records that a watchdog gave up on a hung worker: the cached core
/// probe is invalidated (re-read on the next session, in case the
/// container's quota also moved) and one core is debited from
/// [`Pool::default_workers`] so the next session does not over-subscribe
/// the cores the hung thread still occupies.
pub fn note_worker_lost() {
    LOST_WORKERS.fetch_add(1, Ordering::Relaxed);
    CACHED_PARALLELISM.store(usize::MAX, Ordering::Relaxed);
    flight::instant(flight::SpanKind::WorkerLoss, flight::NO_NODE, 0);
}

/// Credits back a worker previously written off via [`note_worker_lost`]
/// (its job eventually completed and the thread exited cleanly).
pub fn note_worker_recovered() {
    let _ = LOST_WORKERS.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    CACHED_PARALLELISM.store(usize::MAX, Ordering::Relaxed);
}

/// Workers currently written off as hung.
pub fn lost_workers() -> usize {
    LOST_WORKERS.load(Ordering::Relaxed)
}

/// Session-scoped ledger of workers this session's watchdogs wrote off.
///
/// A debit is process-visible immediately — concurrent sessions probe
/// [`Pool::default_workers`] and spawn fewer workers while the hung
/// thread still occupies a core — but it is *credited back* when the
/// account settles: the session's `thread::scope` joins every worker
/// (hung or not) before `run_session` returns, so by settle time the
/// cores are free again. Without the settle, a single transient hang
/// would depress `default_workers` for the rest of the process, and two
/// sessions racing watchdog expiries would permanently cross-debit each
/// other's worker budget.
///
/// Settling is idempotent and also runs on drop, so early `?` returns
/// and panics in the driver cannot leak a debit.
#[derive(Debug, Default)]
pub struct LossAccount {
    debits: std::sync::atomic::AtomicUsize,
}

impl LossAccount {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one worker off: debits the process-wide budget
    /// ([`note_worker_lost`]) and remembers the debit for settlement.
    pub fn debit(&self) {
        self.debits.fetch_add(1, Ordering::Relaxed);
        note_worker_lost();
    }

    /// Debits not yet settled.
    pub fn outstanding(&self) -> usize {
        self.debits.load(Ordering::Relaxed)
    }

    /// Credits every outstanding debit back
    /// ([`note_worker_recovered`]); idempotent.
    pub fn settle(&self) {
        let n = self.debits.swap(0, Ordering::Relaxed);
        for _ in 0..n {
            note_worker_recovered();
        }
    }
}

impl Drop for LossAccount {
    fn drop(&mut self) {
        self.settle();
    }
}

/// Lifecycle of one submitted task.
enum TaskState<'env, T> {
    /// Queued; the job is still here and can be reclaimed by the waiter.
    Pending(Job<'env, T>),
    /// A worker took the job and is running it.
    Running,
    /// Finished; `None` means the job panicked.
    Done(Option<T>),
    /// The result was consumed by `join`.
    Taken,
}

impl<T> std::fmt::Debug for TaskState<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TaskState::Pending(_) => "Pending",
            TaskState::Running => "Running",
            TaskState::Done(_) => "Done",
            TaskState::Taken => "Taken",
        })
    }
}

/// One task cell, shared between the queue and the waiter's handle.
struct Task<'env, T> {
    state: Mutex<TaskState<'env, T>>,
    done: Condvar,
    queued_at: Instant,
}

/// Waiter-side handle returned by [`Pool::submit`].
pub struct TaskHandle<'env, T>(Arc<Task<'env, T>>);

struct QueueState<'env, T> {
    queue: VecDeque<Arc<Task<'env, T>>>,
    shutdown: bool,
}

/// Monotonic counters describing one pool session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Tasks completed by pool workers.
    pub worker_tasks: u64,
    /// Tasks reclaimed and run inline by the waiter (help-first join).
    pub inline_tasks: u64,
    /// Total nanoseconds tasks spent queued before starting.
    pub queue_wait_ns: u64,
}

impl PoolStats {
    /// Counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &PoolStats) -> PoolStats {
        PoolStats {
            worker_tasks: later.worker_tasks.saturating_sub(self.worker_tasks),
            inline_tasks: later.inline_tasks.saturating_sub(self.inline_tasks),
            queue_wait_ns: later.queue_wait_ns.saturating_sub(self.queue_wait_ns),
        }
    }
}

/// The injector queue plus parked-worker signalling.
///
/// Declare it before `std::thread::scope`, spawn workers that call
/// [`Pool::run_worker`], and push work with [`Pool::submit`].
pub struct Pool<'env, T> {
    state: Mutex<QueueState<'env, T>>,
    work_available: Condvar,
    worker_tasks: AtomicU64,
    inline_tasks: AtomicU64,
    queue_wait_ns: AtomicU64,
}

impl<T> std::fmt::Debug for Pool<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> Default for Pool<'_, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env, T> Pool<'env, T> {
    /// An empty pool. Workers are attached afterwards via
    /// [`Pool::run_worker`] from scoped threads.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            worker_tasks: AtomicU64::new(0),
            inline_tasks: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
        }
    }

    /// How many workers an execute session should spawn: one per
    /// available core beyond the driver thread. On a single-core machine
    /// this is **zero** — help-first inline reclaim in [`TaskHandle::join`]
    /// keeps every task completing on the driver, and skipping the spawn
    /// avoids paying thread-creation plus futile context switches on a
    /// core the driver already saturates.
    ///
    /// The core count is probed once and cached:
    /// `available_parallelism` re-reads cgroup quota files on every call
    /// on Linux, which costs more than an entire small-model inference.
    /// The cache is invalidated whenever a watchdog writes a worker off
    /// ([`note_worker_lost`]), and each lost worker is debited from the
    /// answer — its hung thread still occupies a core, so spawning a
    /// replacement on top would over-subscribe what remains.
    pub fn default_workers() -> usize {
        let mut cores = CACHED_PARALLELISM.load(Ordering::Relaxed);
        if cores == usize::MAX {
            cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            CACHED_PARALLELISM.store(cores, Ordering::Relaxed);
        }
        cores
            .saturating_sub(1)
            .saturating_sub(LOST_WORKERS.load(Ordering::Relaxed))
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<'env, T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues a job and wakes one parked worker.
    ///
    /// After shutdown, jobs are accepted but only ever run via inline
    /// reclaim in [`TaskHandle::join`] (the session is winding down).
    pub fn submit(&self, job: Job<'env, T>) -> TaskHandle<'env, T> {
        let task = Arc::new(Task {
            state: Mutex::new(TaskState::Pending(job)),
            done: Condvar::new(),
            queued_at: Instant::now(),
        });
        self.lock().queue.push_back(Arc::clone(&task));
        self.work_available.notify_one();
        TaskHandle(task)
    }

    /// Worker loop: pop tasks until shutdown, parking while the queue is
    /// empty. Call from a scoped thread.
    pub fn run_worker(&self) {
        loop {
            let task = {
                let mut state = self.lock();
                loop {
                    if let Some(task) = state.queue.pop_front() {
                        break Some(task);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = self
                        .work_available
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(task) = task else { return };
            self.run_task(&task, &self.worker_tasks);
        }
    }

    /// Runs `task` if it is still pending (a joiner may have reclaimed
    /// it), recording queue wait and crediting `counter`.
    fn run_task(&self, task: &Task<'env, T>, counter: &AtomicU64) {
        let job = {
            let mut state = task
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match std::mem::replace(&mut *state, TaskState::Running) {
                TaskState::Pending(job) => job,
                // Reclaimed (or already finished): restore and bail.
                other => {
                    *state = other;
                    return;
                }
            }
        };
        let wait_ns = u64::try_from(task.queued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        counter.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(job)).ok();
        let mut state = task
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *state = TaskState::Done(outcome);
        task.done.notify_all();
    }

    /// Signals workers to exit once the queue drains. Idempotent. Must
    /// run before the enclosing `thread::scope` ends (see
    /// [`ShutdownGuard`]).
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work_available.notify_all();
    }

    /// Snapshot of the session counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            worker_tasks: self.worker_tasks.load(Ordering::Relaxed),
            inline_tasks: self.inline_tasks.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
        }
    }
}

impl<'env, T> TaskHandle<'env, T> {
    /// Waits for the result. If the task has not started yet, the waiter
    /// reclaims it and runs it inline (help-first scheduling) — so
    /// `join` never deadlocks, whatever the worker count.
    ///
    /// # Errors
    /// [`JoinError::Panicked`] when the job panicked.
    pub fn join(self, pool: &Pool<'env, T>) -> Result<T, JoinError> {
        self.join_until(pool, None)
    }

    /// Like [`TaskHandle::join`] but watchdog-bounded: waits at most
    /// `timeout` for a worker-held task before giving up with
    /// [`JoinError::TimedOut`], converting a hung worker into a
    /// recoverable error instead of a stalled inference. A still-queued
    /// task is reclaimed inline exactly as in `join` and never times
    /// out — only a task another thread actually holds can hang.
    ///
    /// # Errors
    /// [`JoinError::Panicked`] when the job panicked;
    /// [`JoinError::TimedOut`] when the deadline expired first.
    pub fn join_deadline(
        self,
        pool: &Pool<'env, T>,
        timeout: std::time::Duration,
    ) -> Result<T, JoinError> {
        self.join_until(pool, Some(timeout))
    }

    fn join_until(
        self,
        pool: &Pool<'env, T>,
        timeout: Option<std::time::Duration>,
    ) -> Result<T, JoinError> {
        // Try to reclaim a still-pending task: drop it from the shared
        // queue view lazily (workers skip non-pending tasks) and run it
        // on this thread.
        let mut state = self
            .0
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if matches!(*state, TaskState::Pending(_)) {
            let TaskState::Pending(job) = std::mem::replace(&mut *state, TaskState::Running) else {
                unreachable!("checked pending above");
            };
            drop(state);
            let wait_ns = u64::try_from(self.0.queued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            pool.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
            pool.inline_tasks.fetch_add(1, Ordering::Relaxed);
            let outcome = catch_unwind(AssertUnwindSafe(job)).ok();
            // Mark done so the queue's Arc clone is skipped by workers.
            *self
                .0
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = TaskState::Taken;
            return outcome.ok_or(JoinError::Panicked);
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            match std::mem::replace(&mut *state, TaskState::Taken) {
                TaskState::Done(outcome) => return outcome.ok_or(JoinError::Panicked),
                other @ (TaskState::Running | TaskState::Taken) => {
                    *state = other;
                    state = match deadline {
                        None => self
                            .0
                            .done
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                        Some(deadline) => {
                            let now = Instant::now();
                            if now >= deadline {
                                return Err(JoinError::TimedOut);
                            }
                            self.0
                                .done
                                .wait_timeout(state, deadline - now)
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .0
                        }
                    };
                }
                TaskState::Pending(_) => unreachable!("pending handled before the wait loop"),
            }
        }
    }
}

/// Shuts the pool down on drop, so an early `?` return or a panic in the
/// driver never leaves workers parked forever inside a `thread::scope`.
#[derive(Debug)]
pub struct ShutdownGuard<'a, 'env, T>(pub &'a Pool<'env, T>);

impl<T> Drop for ShutdownGuard<'_, '_, T> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` with `workers` pool workers attached.
    fn with_pool<T: Send, R>(workers: usize, f: impl FnOnce(&Pool<'_, T>) -> R) -> R {
        let pool = Pool::new();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| pool.run_worker());
            }
            let _guard = ShutdownGuard(&pool);
            f(&pool)
        })
    }

    #[test]
    fn submit_and_join_round_trips() {
        with_pool(2, |pool| {
            let handles: Vec<_> = (0..16)
                .map(|i| pool.submit(Box::new(move || i * 2)))
                .collect();
            let total: i32 = handles.into_iter().map(|h| h.join(pool).unwrap()).sum();
            assert_eq!(total, (0..16).map(|i| i * 2).sum::<i32>());
        });
    }

    #[test]
    fn zero_workers_still_completes_via_inline_reclaim() {
        with_pool(0, |pool| {
            let h = pool.submit(Box::new(|| 41 + 1));
            assert_eq!(h.join(pool), Ok(42));
            let stats = pool.stats();
            assert_eq!(stats.inline_tasks, 1);
            assert_eq!(stats.worker_tasks, 0);
        });
    }

    #[test]
    fn tasks_can_borrow_the_environment() {
        let data = vec![1.0f32, 2.0, 3.0];
        let pool: Pool<'_, f32> = Pool::new();
        let sum = std::thread::scope(|scope| {
            scope.spawn(|| pool.run_worker());
            let _guard = ShutdownGuard(&pool);
            let h = pool.submit(Box::new(|| data.iter().sum()));
            h.join(&pool).unwrap()
        });
        assert_eq!(sum, 6.0);
        // Spent task cells in the queue keep their borrows until the pool
        // itself is dropped — the same discipline `run_session` follows.
        drop(pool);
        drop(data);
    }

    #[test]
    fn panics_surface_as_join_errors_not_hangs() {
        with_pool(1, |pool| {
            let h = pool.submit(Box::new(|| -> u32 { panic!("kernel bug") }));
            assert_eq!(h.join(pool), Err(JoinError::Panicked));
            // The pool survives a panicking task.
            let h = pool.submit(Box::new(|| 7));
            assert_eq!(h.join(pool), Ok(7));
        });
    }

    #[test]
    fn stats_count_queue_wait() {
        with_pool(1, |pool| {
            let h = pool.submit(Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }));
            h.join(pool).unwrap();
            let stats = pool.stats();
            assert_eq!(stats.worker_tasks + stats.inline_tasks, 1);
        });
    }

    /// Serializes tests that touch the process-global worker-loss
    /// accounting (tests in one binary run concurrently).
    fn workers_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn default_workers_leaves_the_driver_a_core() {
        let _serial = workers_lock();
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(
            Pool::<()>::default_workers(),
            (cores - 1).saturating_sub(lost_workers())
        );
    }

    #[test]
    fn watchdog_losses_debit_default_workers_and_invalidate_the_cache() {
        let _serial = workers_lock();
        let before = Pool::<()>::default_workers();
        note_worker_lost();
        assert_eq!(
            Pool::<()>::default_workers(),
            before.saturating_sub(1),
            "a lost worker's core must not be re-spawned onto"
        );
        note_worker_recovered();
        assert_eq!(Pool::<()>::default_workers(), before);
        // Recovering below zero is a no-op, not an underflow.
        note_worker_recovered();
        assert_eq!(Pool::<()>::default_workers(), before);
    }

    #[test]
    fn concurrent_session_watchdogs_settle_without_cross_debit() {
        let _serial = workers_lock();
        let before = Pool::<()>::default_workers();
        // Two sessions race watchdog expiries: each debits its own
        // ledger. While both hangs are live the shared budget reflects
        // both (a hung thread occupies a core no matter whose it is);
        // once each session's scope joins its workers and settles, the
        // budget returns to baseline — no session's transient loss may
        // permanently debit another session's worker count.
        let phase = std::sync::Barrier::new(3);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let account = LossAccount::new();
                account.debit();
                assert_eq!(account.outstanding(), 1);
                phase.wait(); // both debits live
                phase.wait(); // main thread observed the dip
                account.settle();
                assert_eq!(account.outstanding(), 0);
            });
            scope.spawn(|| {
                let account = LossAccount::new();
                account.debit();
                phase.wait();
                phase.wait();
                drop(account); // settle-on-drop covers panicky exits
            });
            phase.wait();
            assert_eq!(
                Pool::<()>::default_workers(),
                before.saturating_sub(2),
                "both live hangs must depress the shared budget"
            );
            phase.wait();
        });
        assert_eq!(
            Pool::<()>::default_workers(),
            before,
            "settled sessions must restore the budget exactly"
        );
    }

    #[test]
    fn join_deadline_times_out_on_a_hung_worker() {
        use std::sync::atomic::AtomicBool;
        with_pool(1, |pool| {
            static STARTED: AtomicBool = AtomicBool::new(false);
            let started = &STARTED;
            let h = pool.submit(Box::new(move || {
                started.store(true, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(200));
                1u32
            }));
            // Wait until the worker actually holds the job, so the
            // help-first inline reclaim cannot short-circuit the test.
            while !started.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            assert_eq!(
                h.join_deadline(pool, std::time::Duration::from_millis(10)),
                Err(JoinError::TimedOut)
            );
        });
    }

    #[test]
    fn join_deadline_completes_in_time_via_inline_reclaim() {
        with_pool(0, |pool| {
            let h = pool.submit(Box::new(|| 5u32));
            assert_eq!(
                h.join_deadline(pool, std::time::Duration::from_secs(5)),
                Ok(5)
            );
        });
    }

    #[test]
    fn shutdown_is_idempotent_and_drains() {
        let pool: Pool<'_, u32> = Pool::new();
        std::thread::scope(|scope| {
            scope.spawn(|| pool.run_worker());
            scope.spawn(|| pool.run_worker());
            let h = pool.submit(Box::new(|| 1));
            pool.shutdown();
            pool.shutdown();
            // Submitted-but-unclaimed work after shutdown still completes
            // through inline reclaim.
            let late = pool.submit(Box::new(|| 2));
            assert_eq!(h.join(&pool).unwrap() + late.join(&pool).unwrap(), 3);
        });
    }
}
