//! Session-scoped worker pool for the functional engine.
//!
//! The previous engine spawned fresh OS threads for every split layer and
//! every fork-join region — thread creation cost dwarfed the kernels it
//! was parallelizing. This pool is created **once per execute session**:
//! workers are spawned inside a `std::thread::scope`, park on a condvar,
//! and every split/branch becomes a queue push instead of a `clone(2)`.
//!
//! Design constraints and how they are met:
//!
//! - **No `unsafe`** (workspace-wide deny): jobs are `Box<dyn FnOnce() ->
//!   T + Send + 'env>` where `'env` is the scope environment lifetime, so
//!   tasks can borrow the graph, plan, and output slots directly — no
//!   `'static` laundering, no lifetime transmutes. The pool itself must be
//!   declared *before* the `thread::scope` that spawns its workers, and
//!   jobs must not borrow the pool they are queued on (the queue's drop
//!   glue would make the type self-referential) — resubmission happens
//!   from the driver side only.
//! - **Deadlock freedom on any worker count** (including zero): `join`
//!   uses help-first reclaim — if the task is still queued, the waiter
//!   takes it back and runs it inline instead of blocking. On a one-core
//!   edge target this is also the fastest schedule: no context switch.
//! - **Panic containment**: worker and inline execution both run the job
//!   under `catch_unwind`; a panicking kernel surfaces as
//!   [`JoinError::Panicked`], never a hung scope join.
//!
//! Shut the pool down (or let [`ShutdownGuard`] do it) before the scope
//! closes, otherwise the scope's implicit joins wait forever.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// A unit of work: owns its captures (which may borrow `'env` data).
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Why [`TaskHandle::join`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// The job panicked (on a worker or during inline reclaim).
    Panicked,
}

/// Lifecycle of one submitted task.
enum TaskState<'env, T> {
    /// Queued; the job is still here and can be reclaimed by the waiter.
    Pending(Job<'env, T>),
    /// A worker took the job and is running it.
    Running,
    /// Finished; `None` means the job panicked.
    Done(Option<T>),
    /// The result was consumed by `join`.
    Taken,
}

impl<T> std::fmt::Debug for TaskState<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TaskState::Pending(_) => "Pending",
            TaskState::Running => "Running",
            TaskState::Done(_) => "Done",
            TaskState::Taken => "Taken",
        })
    }
}

/// One task cell, shared between the queue and the waiter's handle.
struct Task<'env, T> {
    state: Mutex<TaskState<'env, T>>,
    done: Condvar,
    queued_at: Instant,
}

/// Waiter-side handle returned by [`Pool::submit`].
pub struct TaskHandle<'env, T>(Arc<Task<'env, T>>);

struct QueueState<'env, T> {
    queue: VecDeque<Arc<Task<'env, T>>>,
    shutdown: bool,
}

/// Monotonic counters describing one pool session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Tasks completed by pool workers.
    pub worker_tasks: u64,
    /// Tasks reclaimed and run inline by the waiter (help-first join).
    pub inline_tasks: u64,
    /// Total nanoseconds tasks spent queued before starting.
    pub queue_wait_ns: u64,
}

impl PoolStats {
    /// Counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &PoolStats) -> PoolStats {
        PoolStats {
            worker_tasks: later.worker_tasks.saturating_sub(self.worker_tasks),
            inline_tasks: later.inline_tasks.saturating_sub(self.inline_tasks),
            queue_wait_ns: later.queue_wait_ns.saturating_sub(self.queue_wait_ns),
        }
    }
}

/// The injector queue plus parked-worker signalling.
///
/// Declare it before `std::thread::scope`, spawn workers that call
/// [`Pool::run_worker`], and push work with [`Pool::submit`].
pub struct Pool<'env, T> {
    state: Mutex<QueueState<'env, T>>,
    work_available: Condvar,
    worker_tasks: AtomicU64,
    inline_tasks: AtomicU64,
    queue_wait_ns: AtomicU64,
}

impl<T> std::fmt::Debug for Pool<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> Default for Pool<'_, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env, T> Pool<'env, T> {
    /// An empty pool. Workers are attached afterwards via
    /// [`Pool::run_worker`] from scoped threads.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            worker_tasks: AtomicU64::new(0),
            inline_tasks: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
        }
    }

    /// How many workers an execute session should spawn: one per
    /// available core beyond the driver thread. On a single-core machine
    /// this is **zero** — help-first inline reclaim in [`TaskHandle::join`]
    /// keeps every task completing on the driver, and skipping the spawn
    /// avoids paying thread-creation plus futile context switches on a
    /// core the driver already saturates.
    ///
    /// The core count is probed once and cached:
    /// `available_parallelism` re-reads cgroup quota files on every call
    /// on Linux, which costs more than an entire small-model inference.
    pub fn default_workers() -> usize {
        static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *WORKERS.get_or_init(|| {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .saturating_sub(1)
        })
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<'env, T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues a job and wakes one parked worker.
    ///
    /// After shutdown, jobs are accepted but only ever run via inline
    /// reclaim in [`TaskHandle::join`] (the session is winding down).
    pub fn submit(&self, job: Job<'env, T>) -> TaskHandle<'env, T> {
        let task = Arc::new(Task {
            state: Mutex::new(TaskState::Pending(job)),
            done: Condvar::new(),
            queued_at: Instant::now(),
        });
        self.lock().queue.push_back(Arc::clone(&task));
        self.work_available.notify_one();
        TaskHandle(task)
    }

    /// Worker loop: pop tasks until shutdown, parking while the queue is
    /// empty. Call from a scoped thread.
    pub fn run_worker(&self) {
        loop {
            let task = {
                let mut state = self.lock();
                loop {
                    if let Some(task) = state.queue.pop_front() {
                        break Some(task);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = self
                        .work_available
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(task) = task else { return };
            self.run_task(&task, &self.worker_tasks);
        }
    }

    /// Runs `task` if it is still pending (a joiner may have reclaimed
    /// it), recording queue wait and crediting `counter`.
    fn run_task(&self, task: &Task<'env, T>, counter: &AtomicU64) {
        let job = {
            let mut state = task
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match std::mem::replace(&mut *state, TaskState::Running) {
                TaskState::Pending(job) => job,
                // Reclaimed (or already finished): restore and bail.
                other => {
                    *state = other;
                    return;
                }
            }
        };
        let wait_ns = u64::try_from(task.queued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        counter.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(job)).ok();
        let mut state = task
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *state = TaskState::Done(outcome);
        task.done.notify_all();
    }

    /// Signals workers to exit once the queue drains. Idempotent. Must
    /// run before the enclosing `thread::scope` ends (see
    /// [`ShutdownGuard`]).
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work_available.notify_all();
    }

    /// Snapshot of the session counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            worker_tasks: self.worker_tasks.load(Ordering::Relaxed),
            inline_tasks: self.inline_tasks.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
        }
    }
}

impl<'env, T> TaskHandle<'env, T> {
    /// Waits for the result. If the task has not started yet, the waiter
    /// reclaims it and runs it inline (help-first scheduling) — so
    /// `join` never deadlocks, whatever the worker count.
    ///
    /// # Errors
    /// [`JoinError::Panicked`] when the job panicked.
    pub fn join(self, pool: &Pool<'env, T>) -> Result<T, JoinError> {
        // Try to reclaim a still-pending task: drop it from the shared
        // queue view lazily (workers skip non-pending tasks) and run it
        // on this thread.
        let mut state = self
            .0
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if matches!(*state, TaskState::Pending(_)) {
            let TaskState::Pending(job) = std::mem::replace(&mut *state, TaskState::Running) else {
                unreachable!("checked pending above");
            };
            drop(state);
            let wait_ns = u64::try_from(self.0.queued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            pool.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
            pool.inline_tasks.fetch_add(1, Ordering::Relaxed);
            let outcome = catch_unwind(AssertUnwindSafe(job)).ok();
            // Mark done so the queue's Arc clone is skipped by workers.
            *self
                .0
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = TaskState::Taken;
            return outcome.ok_or(JoinError::Panicked);
        }
        loop {
            match std::mem::replace(&mut *state, TaskState::Taken) {
                TaskState::Done(outcome) => return outcome.ok_or(JoinError::Panicked),
                other @ (TaskState::Running | TaskState::Taken) => {
                    *state = other;
                    state = self
                        .0
                        .done
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                TaskState::Pending(_) => unreachable!("pending handled before the wait loop"),
            }
        }
    }
}

/// Shuts the pool down on drop, so an early `?` return or a panic in the
/// driver never leaves workers parked forever inside a `thread::scope`.
#[derive(Debug)]
pub struct ShutdownGuard<'a, 'env, T>(pub &'a Pool<'env, T>);

impl<T> Drop for ShutdownGuard<'_, '_, T> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` with `workers` pool workers attached.
    fn with_pool<T: Send, R>(workers: usize, f: impl FnOnce(&Pool<'_, T>) -> R) -> R {
        let pool = Pool::new();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| pool.run_worker());
            }
            let _guard = ShutdownGuard(&pool);
            f(&pool)
        })
    }

    #[test]
    fn submit_and_join_round_trips() {
        with_pool(2, |pool| {
            let handles: Vec<_> = (0..16)
                .map(|i| pool.submit(Box::new(move || i * 2)))
                .collect();
            let total: i32 = handles.into_iter().map(|h| h.join(pool).unwrap()).sum();
            assert_eq!(total, (0..16).map(|i| i * 2).sum::<i32>());
        });
    }

    #[test]
    fn zero_workers_still_completes_via_inline_reclaim() {
        with_pool(0, |pool| {
            let h = pool.submit(Box::new(|| 41 + 1));
            assert_eq!(h.join(pool), Ok(42));
            let stats = pool.stats();
            assert_eq!(stats.inline_tasks, 1);
            assert_eq!(stats.worker_tasks, 0);
        });
    }

    #[test]
    fn tasks_can_borrow_the_environment() {
        let data = vec![1.0f32, 2.0, 3.0];
        let pool: Pool<'_, f32> = Pool::new();
        let sum = std::thread::scope(|scope| {
            scope.spawn(|| pool.run_worker());
            let _guard = ShutdownGuard(&pool);
            let h = pool.submit(Box::new(|| data.iter().sum()));
            h.join(&pool).unwrap()
        });
        assert_eq!(sum, 6.0);
        // Spent task cells in the queue keep their borrows until the pool
        // itself is dropped — the same discipline `run_session` follows.
        drop(pool);
        drop(data);
    }

    #[test]
    fn panics_surface_as_join_errors_not_hangs() {
        with_pool(1, |pool| {
            let h = pool.submit(Box::new(|| -> u32 { panic!("kernel bug") }));
            assert_eq!(h.join(pool), Err(JoinError::Panicked));
            // The pool survives a panicking task.
            let h = pool.submit(Box::new(|| 7));
            assert_eq!(h.join(pool), Ok(7));
        });
    }

    #[test]
    fn stats_count_queue_wait() {
        with_pool(1, |pool| {
            let h = pool.submit(Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }));
            h.join(pool).unwrap();
            let stats = pool.stats();
            assert_eq!(stats.worker_tasks + stats.inline_tasks, 1);
        });
    }

    #[test]
    fn default_workers_leaves_the_driver_a_core() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(Pool::<()>::default_workers(), cores - 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_drains() {
        let pool: Pool<'_, u32> = Pool::new();
        std::thread::scope(|scope| {
            scope.spawn(|| pool.run_worker());
            scope.spawn(|| pool.run_worker());
            let h = pool.submit(Box::new(|| 1));
            pool.shutdown();
            pool.shutdown();
            // Submitted-but-unclaimed work after shutdown still completes
            // through inline reclaim.
            let late = pool.submit(Box::new(|| 2));
            assert_eq!(h.join(&pool).unwrap() + late.join(&pool).unwrap(), 3);
        });
    }
}
