//! Loom-lite exhaustive interleaving explorer for the session pool.
//!
//! The worker pool ([`super::pool`]) is lock-based and `unsafe`-free, but
//! its correctness argument — help-first join never deadlocks, lazy
//! reclaim never runs a task twice, no submitted task is ever lost —
//! rests on how its three atomic sections (queue pop, task-cell claim,
//! completion publish) interleave across the driver and any number of
//! workers. Runtime tests only sample a few schedules the OS happens to
//! produce; this module checks **all of them**, up to a preemption
//! bound.
//!
//! The model is a faithful, pure re-implementation of the pool's state
//! machine at the granularity of its critical sections: each actor
//! (driver or worker) is a small program whose steps are exactly the
//! pool's lock-protected transitions, and [`explore`] runs a depth-first
//! search over every scheduling choice, in the style of CHESS-bounded
//! model checking — a context switch away from a runnable actor costs
//! one unit of the preemption budget, switches at blocking points are
//! free. Empirically (and per the CHESS result) almost all concurrency
//! bugs of this shape surface within two preemptions.
//!
//! On every terminal state the explorer asserts the pool's contract:
//!
//! 1. every submitted task executed **exactly once** — on a worker or
//!    inline at the joiner, never both;
//! 2. every join completed (no lost task, no deadlock);
//! 3. the worker/inline counters conserve the task count.
//!
//! The model deliberately shares the pool's lazy-reclaim quirk: a task
//! popped by a worker may have been reclaimed by the joiner in the
//! window between the queue pop and the task-cell claim, in which case
//! the worker must skip it. Mutating the model (e.g. removing the
//! claim check) makes the explorer report double executions — see the
//! tests.

use serde::Serialize;

/// Hard cap on explored transitions, against pathological configs.
const STATE_CAP: u64 = 4_000_000;

/// At most this many violation strings are retained per run.
const VIOLATION_CAP: usize = 16;

/// One exploration scenario: a driver submitting `tasks` jobs, joining
/// them in `join_order`, with `workers` pool workers racing it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExploreConfig {
    /// Number of tasks the driver submits (keep ≤ 6: the schedule space
    /// is exponential).
    pub tasks: usize,
    /// Number of pool workers (0 exercises the pure inline-reclaim path).
    pub workers: usize,
    /// Order in which the driver joins the task handles, as a
    /// permutation of `0..tasks`.
    pub join_order: Vec<usize>,
    /// Maximum involuntary context switches per schedule (CHESS bound).
    pub preemption_bound: usize,
}

impl ExploreConfig {
    /// A scenario joining in submission order.
    #[must_use]
    pub fn new(tasks: usize, workers: usize, preemption_bound: usize) -> Self {
        Self {
            tasks,
            workers,
            join_order: (0..tasks).collect(),
            preemption_bound,
        }
    }

    /// A scenario joining in reverse submission order — the adversarial
    /// order for help-first reclaim (the last-submitted task is the
    /// most likely to still be queued).
    #[must_use]
    pub fn reversed(tasks: usize, workers: usize, preemption_bound: usize) -> Self {
        Self {
            join_order: (0..tasks).rev().collect(),
            ..Self::new(tasks, workers, preemption_bound)
        }
    }
}

/// Outcome of exploring one [`ExploreConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExploreResult {
    /// Complete schedules reached (terminal states, counted per path).
    pub interleavings: u64,
    /// Atomic transitions executed across all schedules.
    pub states: u64,
    /// Invariant violations found (empty means the contract holds on
    /// every explored schedule).
    pub violations: Vec<String>,
    /// True when [`STATE_CAP`] truncated the search.
    pub truncated: bool,
}

impl ExploreResult {
    /// True when every explored schedule upheld the pool contract.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

/// Lifecycle of one modelled task cell (mirrors `pool::TaskState` with
/// the executing actor made explicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskPhase {
    /// Submitted and still claimable from the queue or by the joiner.
    Pending,
    /// Claimed by worker `i`; its job is running outside any lock.
    RunningWorker(usize),
    /// Reclaimed by the driver; running inline.
    RunningInline,
    /// Completed by a worker; result awaiting the joiner.
    Done,
    /// Result consumed by `join`.
    Taken,
}

/// A worker's position in `run_worker`/`run_task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPhase {
    /// In the pop loop (parked while the queue is empty pre-shutdown).
    Idle,
    /// Popped a task id; has not yet locked its cell to claim it.
    Holding(usize),
    /// Claimed the cell (`Pending → Running`); job in flight.
    Executing(usize),
    /// Observed shutdown with an empty queue and returned.
    Exited,
}

/// The driver's position in submit-all / join-all / shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriverPhase {
    /// Next task id to submit.
    Submitting(usize),
    /// Index into `join_order` currently being joined.
    Joining(usize),
    /// Reclaimed `join_order[idx]` and is running it inline.
    InlineRun(usize, usize),
    /// About to flip the shutdown flag.
    Shutdown,
    /// Session complete.
    Finished,
}

/// One explored state of the whole system. Cloned at every branch point
/// (it is a few dozen bytes for the config sizes that make sense).
#[derive(Debug, Clone)]
struct ModelState {
    tasks: Vec<TaskPhase>,
    /// Executions per task; the invariant demands exactly one.
    runs: Vec<u8>,
    queue: std::collections::VecDeque<usize>,
    shutdown: bool,
    workers: Vec<WorkerPhase>,
    driver: DriverPhase,
    worker_tasks: u64,
    inline_tasks: u64,
}

impl ModelState {
    fn initial(cfg: &ExploreConfig) -> Self {
        Self {
            tasks: Vec::new(),
            runs: vec![0; cfg.tasks],
            queue: std::collections::VecDeque::new(),
            shutdown: false,
            workers: vec![WorkerPhase::Idle; cfg.workers],
            driver: if cfg.tasks == 0 {
                DriverPhase::Shutdown
            } else {
                DriverPhase::Submitting(0)
            },
            worker_tasks: 0,
            inline_tasks: 0,
        }
    }

    fn terminal(&self) -> bool {
        self.driver == DriverPhase::Finished
            && self.workers.iter().all(|w| *w == WorkerPhase::Exited)
    }

    /// Actor 0 is the driver; actor `1 + i` is worker `i`.
    fn enabled(&self, actor: usize, cfg: &ExploreConfig) -> bool {
        if actor == 0 {
            return match self.driver {
                DriverPhase::Submitting(_) | DriverPhase::InlineRun(..) | DriverPhase::Shutdown => {
                    true
                }
                DriverPhase::Joining(idx) => {
                    let tid = cfg.join_order[idx];
                    // Blocked on the `done` condvar while another actor
                    // holds the job; every other cell state progresses.
                    !matches!(
                        self.tasks.get(tid),
                        Some(TaskPhase::RunningWorker(_) | TaskPhase::RunningInline)
                    )
                }
                DriverPhase::Finished => false,
            };
        }
        match self.workers[actor - 1] {
            WorkerPhase::Holding(_) | WorkerPhase::Executing(_) => true,
            // Parked on `work_available` until a push or shutdown.
            WorkerPhase::Idle => !self.queue.is_empty() || self.shutdown,
            WorkerPhase::Exited => false,
        }
    }

    /// Executes one atomic section of `actor`, recording violations.
    fn step(&mut self, actor: usize, cfg: &ExploreConfig, violations: &mut Vec<String>) {
        let mut violate = |msg: String| {
            if violations.len() < VIOLATION_CAP {
                violations.push(msg);
            }
        };
        if actor == 0 {
            match self.driver {
                DriverPhase::Submitting(next) => {
                    // `submit`: cell created Pending + queue push (one
                    // pool-lock section) + notify.
                    self.tasks.push(TaskPhase::Pending);
                    self.queue.push_back(next);
                    self.driver = if next + 1 < cfg.tasks {
                        DriverPhase::Submitting(next + 1)
                    } else {
                        DriverPhase::Joining(0)
                    };
                }
                DriverPhase::Joining(idx) => {
                    let tid = cfg.join_order[idx];
                    match self.tasks.get(tid).copied() {
                        // Help-first reclaim: take the job back under
                        // the cell lock and run it on this thread.
                        Some(TaskPhase::Pending) => {
                            self.tasks[tid] = TaskPhase::RunningInline;
                            self.driver = DriverPhase::InlineRun(tid, idx);
                        }
                        Some(TaskPhase::Done) => {
                            self.tasks[tid] = TaskPhase::Taken;
                            self.driver = self.after_join(idx, cfg);
                        }
                        Some(TaskPhase::Taken) => {
                            violate(format!("join saw task {tid} already taken"));
                            self.driver = self.after_join(idx, cfg);
                        }
                        other => {
                            violate(format!("join stepped on blocked task {tid}: {other:?}"));
                            self.driver = self.after_join(idx, cfg);
                        }
                    }
                }
                DriverPhase::InlineRun(tid, idx) => {
                    self.runs[tid] += 1;
                    if self.runs[tid] > 1 {
                        violate(format!("task {tid} executed {} times", self.runs[tid]));
                    }
                    self.tasks[tid] = TaskPhase::Taken;
                    self.inline_tasks += 1;
                    self.driver = self.after_join(idx, cfg);
                }
                DriverPhase::Shutdown => {
                    self.shutdown = true; // + notify_all: parked workers wake
                    self.driver = DriverPhase::Finished;
                }
                DriverPhase::Finished => unreachable!("finished driver is never enabled"),
            }
            return;
        }
        let w = actor - 1;
        match self.workers[w] {
            WorkerPhase::Idle => {
                // Pop loop body, one pool-lock section.
                if let Some(tid) = self.queue.pop_front() {
                    self.workers[w] = WorkerPhase::Holding(tid);
                } else if self.shutdown {
                    self.workers[w] = WorkerPhase::Exited;
                } else {
                    unreachable!("parked worker is never enabled");
                }
            }
            WorkerPhase::Holding(tid) => {
                // `run_task`'s claim: only a still-pending cell yields
                // its job — the joiner may have reclaimed it since the
                // pop (lazy reclaim leaves the queue entry behind).
                if self.tasks.get(tid).copied() == Some(TaskPhase::Pending) {
                    self.tasks[tid] = TaskPhase::RunningWorker(w);
                    self.workers[w] = WorkerPhase::Executing(tid);
                } else {
                    self.workers[w] = WorkerPhase::Idle;
                }
            }
            WorkerPhase::Executing(tid) => {
                self.runs[tid] += 1;
                if self.runs[tid] > 1 {
                    violate(format!("task {tid} executed {} times", self.runs[tid]));
                }
                self.tasks[tid] = TaskPhase::Done; // + notify_all on `done`
                self.worker_tasks += 1;
                self.workers[w] = WorkerPhase::Idle;
            }
            WorkerPhase::Exited => unreachable!("exited worker is never enabled"),
        }
    }

    fn after_join(&self, idx: usize, cfg: &ExploreConfig) -> DriverPhase {
        if idx + 1 < cfg.join_order.len() {
            DriverPhase::Joining(idx + 1)
        } else {
            DriverPhase::Shutdown
        }
    }

    fn check_terminal(&self, violations: &mut Vec<String>) {
        let mut violate = |msg: String| {
            if violations.len() < VIOLATION_CAP {
                violations.push(msg);
            }
        };
        for (tid, phase) in self.tasks.iter().enumerate() {
            if *phase != TaskPhase::Taken {
                violate(format!("task {tid} ended in {phase:?}, not Taken"));
            }
        }
        for (tid, runs) in self.runs.iter().enumerate() {
            if *runs != 1 {
                violate(format!("task {tid} executed {runs} times, not once"));
            }
        }
        let total = self.worker_tasks + self.inline_tasks;
        if total != self.runs.len() as u64 {
            violate(format!(
                "counter conservation broken: {} worker + {} inline != {} tasks",
                self.worker_tasks,
                self.inline_tasks,
                self.runs.len()
            ));
        }
    }
}

/// Exhaustively explores every schedule of `cfg` within its preemption
/// bound, checking the pool contract on each.
///
/// # Panics
/// When `join_order` is not a permutation of `0..tasks` — a scenario
/// bug, not a pool bug.
#[must_use]
pub fn explore(cfg: &ExploreConfig) -> ExploreResult {
    let mut sorted = cfg.join_order.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..cfg.tasks).collect::<Vec<_>>(),
        "join_order must be a permutation of 0..tasks"
    );
    let mut result = ExploreResult {
        interleavings: 0,
        states: 0,
        violations: Vec::new(),
        truncated: false,
    };
    dfs(
        ModelState::initial(cfg),
        0,
        cfg.preemption_bound,
        cfg,
        &mut result,
    );
    result
}

/// One DFS node: run `current` while it can proceed; branch to other
/// enabled actors by spending preemption budget; switch for free when
/// `current` blocks or finishes.
fn dfs(
    state: ModelState,
    current: usize,
    budget: usize,
    cfg: &ExploreConfig,
    result: &mut ExploreResult,
) {
    if result.truncated {
        return;
    }
    if state.terminal() {
        result.interleavings += 1;
        state.check_terminal(&mut result.violations);
        return;
    }
    let actors = 1 + cfg.workers;
    let enabled: Vec<usize> = (0..actors).filter(|&a| state.enabled(a, cfg)).collect();
    if enabled.is_empty() {
        if result.violations.len() < VIOLATION_CAP {
            result
                .violations
                .push(format!("deadlock: no runnable actor in {state:?}"));
        }
        return;
    }
    let advance = |actor: usize, budget: usize, result: &mut ExploreResult| {
        let mut next = state.clone();
        next.step(actor, cfg, &mut result.violations);
        result.states += 1;
        if result.states > STATE_CAP {
            result.truncated = true;
            return;
        }
        dfs(next, actor, budget, cfg, result);
    };
    if enabled.contains(&current) {
        advance(current, budget, result);
        if budget > 0 {
            for &other in enabled.iter().filter(|&&a| a != current) {
                advance(other, budget - 1, result);
            }
        }
    } else {
        // Blocking point: switching away is involuntary-free.
        for &other in &enabled {
            advance(other, budget, result);
        }
    }
}

/// The scenario matrix the CI gate and `edgenn analyze` run: task counts
/// up to six, zero to two workers, forward and adversarial join orders,
/// two preemptions. Covers the inline-only path, the single-worker race
/// (pop vs. reclaim), and multi-worker contention.
#[must_use]
pub fn default_matrix() -> Vec<ExploreConfig> {
    let mut configs = Vec::new();
    for &(tasks, workers, bound) in &[
        (0usize, 1usize, 2usize),
        (1, 0, 3),
        (1, 1, 3),
        (2, 1, 3),
        (2, 2, 2),
        (3, 1, 2),
        (3, 2, 2),
        (4, 2, 2),
        (6, 2, 1),
    ] {
        configs.push(ExploreConfig::new(tasks, workers, bound));
        if tasks > 1 {
            configs.push(ExploreConfig::reversed(tasks, workers, bound));
        }
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_matrix_scenario_upholds_the_pool_contract() {
        for cfg in default_matrix() {
            let result = explore(&cfg);
            assert!(
                result.is_clean(),
                "{cfg:?} violated the contract: {:?} (truncated: {})",
                result.violations,
                result.truncated
            );
            assert!(result.interleavings > 0, "{cfg:?} explored nothing");
        }
    }

    #[test]
    fn zero_workers_is_the_single_inline_schedule() {
        let result = explore(&ExploreConfig::new(3, 0, 4));
        assert!(result.is_clean(), "{:?}", result.violations);
        // Only the driver can act: exactly one schedule, all inline.
        assert_eq!(result.interleavings, 1);
    }

    #[test]
    fn preemptions_grow_the_schedule_space_monotonically() {
        let base = explore(&ExploreConfig::new(2, 1, 0)).interleavings;
        let one = explore(&ExploreConfig::new(2, 1, 1)).interleavings;
        let two = explore(&ExploreConfig::new(2, 1, 2)).interleavings;
        assert!(base >= 1);
        assert!(one > base, "one preemption must add schedules");
        assert!(two > one, "two preemptions must add more");
    }

    #[test]
    fn removing_the_claim_check_is_caught_as_a_double_execution() {
        // A model without the lazy-reclaim claim check: the worker runs
        // whatever it popped. The explorer must find the schedule where
        // the joiner reclaimed the task first → executed twice.
        let cfg = ExploreConfig::new(1, 1, 2);
        let mut result = ExploreResult {
            interleavings: 0,
            states: 0,
            violations: Vec::new(),
            truncated: false,
        };
        dfs_buggy(ModelState::initial(&cfg), 0, 2, &cfg, &mut result);
        assert!(
            result
                .violations
                .iter()
                .any(|v| v.contains("executed 2 times")),
            "the buggy model must double-execute somewhere: {:?}",
            result.violations
        );
    }

    /// DFS over a deliberately broken model (claim check skipped).
    fn dfs_buggy(
        state: ModelState,
        current: usize,
        budget: usize,
        cfg: &ExploreConfig,
        result: &mut ExploreResult,
    ) {
        if state.terminal() {
            result.interleavings += 1;
            state.check_terminal(&mut result.violations);
            return;
        }
        let actors = 1 + cfg.workers;
        let enabled: Vec<usize> = (0..actors).filter(|&a| state.enabled(a, cfg)).collect();
        if enabled.is_empty() {
            return; // the buggy model can deadlock-free-run; uninteresting
        }
        let advance = |actor: usize, budget: usize, result: &mut ExploreResult| {
            let mut next = state.clone();
            // The bug: a Holding worker claims unconditionally.
            if actor > 0 {
                if let WorkerPhase::Holding(tid) = next.workers[actor - 1] {
                    next.tasks[tid] = TaskPhase::Pending; // clobber any reclaim
                }
            }
            next.step(actor, cfg, &mut result.violations);
            dfs_buggy(next, actor, budget, cfg, result);
        };
        if enabled.contains(&current) {
            advance(current, budget, result);
            if budget > 0 {
                for &other in enabled.iter().filter(|&&a| a != current) {
                    advance(other, budget - 1, result);
                }
            }
        } else {
            for &other in &enabled {
                advance(other, budget, result);
            }
        }
    }

    #[test]
    fn join_order_must_be_a_permutation() {
        let cfg = ExploreConfig {
            tasks: 2,
            workers: 1,
            join_order: vec![0, 0],
            preemption_bound: 1,
        };
        assert!(std::panic::catch_unwind(|| explore(&cfg)).is_err());
    }
}
