//! Resilient execution: recovery policy, accounting, and degraded
//! re-planning for runs under an injected [`FaultPlan`].
//!
//! The analytic entry point is
//! [`Runtime::simulate_with_faults`](crate::runtime::Runtime::simulate_with_faults);
//! this module holds the pieces it composes:
//!
//! - [`ResilienceConfig`] — the retry/backoff/deadline policy knobs;
//! - [`RecoveryLog`] / [`RecoveryEvent`] — the per-run accounting of
//!   what was injected and what the runtime did about it (the input to
//!   the `EC04x` checker tier);
//! - [`ResilientOutcome`] — the report plus its recovery log;
//! - the crate-private `FaultCtx` the simulation loop threads through.
//!
//! The recovery state machine (see `docs/resilience.md`): a failed GPU
//! kernel launch is retried with exponential backoff up to
//! `max_retries` times; exhaustion re-places the work on the CPU, and a
//! permanent failure additionally re-tunes the remaining plan suffix to
//! a CPU-only plan. A burning deadline budget switches the remaining
//! suffix to a single-processor plan. OOM pressure is handled before
//! execution by shrinking the footprint (explicit → managed arrays).

use serde::Serialize;

use crate::error::{RecoveryAction, RecoveryCause};
use crate::metrics::InferenceReport;
use crate::plan::ExecutionPlan;
use edgenn_sim::FaultClock;

/// Policy knobs for the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ResilienceConfig {
    /// Maximum retries of one failed kernel before falling back to the
    /// CPU (the initial attempt is not a retry).
    pub max_retries: u32,
    /// Backoff before the first retry (us, simulated clock).
    pub backoff_base_us: f64,
    /// Multiplier applied to the backoff after every failed retry.
    pub backoff_multiplier: f64,
    /// Per-inference deadline budget (us); `None` disables deadline
    /// monitoring.
    pub deadline_us: Option<f64>,
    /// Fraction of the deadline that may burn before the runtime
    /// degrades the remaining suffix to a single-processor plan.
    pub deadline_degrade_fraction: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_us: 50.0,
            backoff_multiplier: 2.0,
            deadline_us: None,
            deadline_degrade_fraction: 0.8,
        }
    }
}

impl ResilienceConfig {
    /// The simulated-time gap before retry number `retry` (1-based):
    /// `base * multiplier^(retry-1)`.
    #[must_use]
    pub fn backoff_us(&self, retry: u32) -> f64 {
        self.backoff_base_us * self.backoff_multiplier.powi(retry.saturating_sub(1) as i32)
    }
}

/// One recovery decision, in simulated-time order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecoveryEvent {
    /// When the decision was taken (us, simulated clock).
    pub t_us: f64,
    /// Graph node the decision anchors to.
    pub node: usize,
    /// What triggered it.
    pub cause: RecoveryCause,
    /// What the runtime did.
    pub action: RecoveryAction,
    /// Failed attempts of this node's kernel so far (0 for non-kernel
    /// causes).
    pub attempt: u32,
}

/// Accounting of one resilient run: what was injected, what the runtime
/// did, and the decision stream the `EC04x` checker validates.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryLog {
    /// Faults that actually bit (kernel failures plus one per
    /// environmental category that affected the run).
    pub faults_injected: u64,
    /// Kernel retry launches issued.
    pub retries: u64,
    /// GPU→CPU fallback re-placements.
    pub fallbacks: u64,
    /// Deadline-triggered degradations to a single-processor plan.
    pub deadline_degradations: u64,
    /// The retry budget the run executed under (`max_retries`).
    pub max_attempts: u32,
    /// Whether a permanent kernel failure re-tuned the remaining suffix
    /// to the CPU-only plan.
    pub gpu_lost: bool,
    /// Every recovery decision, in simulated-time order.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// True when the run saw no faults and took no recovery action.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.faults_injected == 0 && self.events.is_empty()
    }
}

/// A completed resilient inference: the report plus the recovery log
/// explaining how it survived.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The inference report (same shape as a fault-free run).
    pub report: InferenceReport,
    /// What was injected and what the runtime did about it.
    pub recovery: RecoveryLog,
}

/// Per-run fault state the simulation loop threads through: the ticking
/// clock, the policy, the accounting, and the degraded plans prepared
/// up front so a mid-run switch is a pointer swap, not a re-tune under
/// fire.
pub(crate) struct FaultCtx {
    /// The seeded fault source.
    pub clock: FaultClock,
    /// Retry/backoff/deadline policy.
    pub cfg: ResilienceConfig,
    /// Accounting.
    pub log: RecoveryLog,
    /// CPU-only plan: the re-tuned suffix applied after a permanent GPU
    /// loss.
    pub cpu_plan: ExecutionPlan,
    /// Single-processor plan applied when the deadline budget burns.
    pub degraded_plan: ExecutionPlan,
    /// Set once a permanent kernel failure removes the GPU.
    pub gpu_lost: bool,
    /// Set once the deadline monitor degrades the run.
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_from_base() {
        let cfg = ResilienceConfig::default();
        assert!((cfg.backoff_us(1) - 50.0).abs() < 1e-9);
        assert!((cfg.backoff_us(2) - 100.0).abs() < 1e-9);
        assert!((cfg.backoff_us(3) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn clean_log_reports_clean() {
        let mut log = RecoveryLog::default();
        assert!(log.is_clean());
        log.faults_injected = 1;
        assert!(!log.is_clean());
    }
}
