//! The EdgeNN runtime: executes an [`ExecutionPlan`] against a simulated
//! platform (analytic mode) or against real tensors (functional mode, in
//! [`functional`]).

pub mod functional;
pub mod pool;
pub mod resilience;
pub mod sched_explore;

use std::sync::Arc;

use edgenn_nn::graph::{Graph, NodeId, Segment};
use edgenn_nn::layer::LayerClass;
use edgenn_obs::{EventSink, SinkEvent};
use edgenn_sim::processor::ExecutionContext;
use edgenn_sim::{
    AllocStrategy, KernelDesc, OpClass, Platform, ProcessorKind, ProcessorSpec, Timeline, TraceKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{RecoveryAction, RecoveryCause};
use crate::metrics::{InferenceReport, LayerTiming};
use crate::plan::{Assignment, ExecutionPlan, HybridMode, MemoryPolicy};
use crate::runtime::resilience::{FaultCtx, RecoveryEvent, ResilienceConfig, ResilientOutcome};
use crate::{CoreError, Result};
use edgenn_sim::{FaultClock, FaultKind, FaultPlan};

/// Maps a layer class to the simulator's operation class.
pub fn op_class(class: LayerClass) -> OpClass {
    match class {
        LayerClass::Conv => OpClass::Conv,
        LayerClass::Fc => OpClass::Fc,
        LayerClass::Pool => OpClass::Pool,
        LayerClass::Activation => OpClass::Activation,
        LayerClass::Norm => OpClass::Norm,
        LayerClass::Combine | LayerClass::Input => OpClass::Combine,
    }
}

/// Builds the kernel descriptor of one graph node.
///
/// # Errors
/// Propagates shape/workload failures from the layer.
pub fn kernel_desc(graph: &Graph, id: NodeId) -> Result<KernelDesc> {
    let node = graph.node(id)?;
    let shapes: Vec<_> = node
        .inputs()
        .iter()
        .map(|i| graph.node(*i).map(edgenn_nn::graph::Node::output_shape))
        .collect::<std::result::Result<_, _>>()?;
    let w = node.layer().workload(&shapes)?;
    let ws = node.layer().working_set_bytes(&shapes)?;
    Ok(KernelDesc {
        class: op_class(node.layer().class()),
        flops: w.flops,
        bytes_in: w.input_bytes,
        bytes_out: w.output_bytes,
        weight_bytes: w.weight_bytes,
        parallelism: node.output_shape().num_elements() as u64,
        working_set_bytes: ws,
    })
}

/// Scales a kernel descriptor to `part / total` of its partition units.
///
/// FLOPs, output bytes, weight bytes, and parallelism scale; input bytes
/// and working set do not (both partitions read the whole input — the
/// paper's Section IV-D example: "the GPU calculates the convolution
/// results of the first k input channels, and the CPU calculates the
/// results of the remaining").
pub fn scale_desc(desc: &KernelDesc, fraction: f64) -> KernelDesc {
    let f = fraction.clamp(0.0, 1.0);
    KernelDesc {
        class: desc.class,
        flops: (desc.flops as f64 * f) as u64,
        bytes_in: desc.bytes_in,
        bytes_out: (desc.bytes_out as f64 * f) as u64,
        weight_bytes: (desc.weight_bytes as f64 * f) as u64,
        parallelism: (desc.parallelism as f64 * f).ceil() as u64,
        working_set_bytes: desc.working_set_bytes,
    }
}

/// Scales a kernel descriptor to an *input-channel* fraction: FLOPs,
/// input bytes, weight bytes, and the working set scale with the channel
/// share, while the output is produced at full size by both partitions
/// (each side emits a complete partial-sum map).
pub fn scale_desc_input(desc: &KernelDesc, fraction: f64) -> KernelDesc {
    let f = fraction.clamp(0.0, 1.0);
    KernelDesc {
        class: desc.class,
        flops: (desc.flops as f64 * f) as u64,
        bytes_in: (desc.bytes_in as f64 * f) as u64,
        bytes_out: desc.bytes_out,
        weight_bytes: (desc.weight_bytes as f64 * f) as u64,
        parallelism: desc.parallelism,
        working_set_bytes: (desc.working_set_bytes as f64 * f) as u64,
    }
}

/// Blends a managed-memory bandwidth factor over a kernel's traffic mix:
/// the zero-copy penalty hits *activation* arrays (allocated per
/// inference), while weights are resident and read at full rate after
/// their first touch.
pub fn weighted_bw_factor(desc: &KernelDesc, activation_factor: f64) -> f64 {
    let act = (desc.bytes_in + desc.bytes_out) as f64;
    let w = desc.weight_bytes as f64;
    let total = act + w;
    if total <= 0.0 {
        1.0
    } else {
        (act * activation_factor + w) / total
    }
}

/// Where a node's output data currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In host (CPU-side) memory only.
    Host,
    /// In device (GPU-side) memory only.
    Device,
    /// Valid in both (after a round trip or a managed array at rest).
    Both,
}

impl Loc {
    fn of(proc: ProcessorKind) -> Self {
        match proc {
            ProcessorKind::Cpu => Loc::Host,
            ProcessorKind::Gpu => Loc::Device,
        }
    }

    fn available_to(&self, proc: ProcessorKind) -> bool {
        matches!(
            (self, proc),
            (Loc::Both, _) | (Loc::Host, ProcessorKind::Cpu) | (Loc::Device, ProcessorKind::Gpu)
        )
    }
}

/// The analytic runtime: walks a graph under a plan, issuing kernels,
/// copies, migrations, and syncs to the simulated [`Timeline`].
pub struct Runtime<'a> {
    platform: &'a Platform,
    observer: Option<Arc<dyn EventSink>>,
}

impl<'a> Runtime<'a> {
    /// Creates a runtime for `platform`.
    pub fn new(platform: &'a Platform) -> Self {
        Self {
            platform,
            observer: None,
        }
    }

    /// Creates a runtime that mirrors every simulated activity (kernel
    /// launches, copies, migrations, stalls), tuner decision, and
    /// per-request latency into `observer`.
    pub fn with_observer(platform: &'a Platform, observer: Arc<dyn EventSink>) -> Self {
        Self {
            platform,
            observer: Some(observer),
        }
    }

    /// The attached observer sink, if any (the tuner and pipeline use
    /// this to report their decisions alongside the runtime's events).
    pub fn observer(&self) -> Option<&Arc<dyn EventSink>> {
        self.observer.as_ref()
    }

    fn emit(&self, event: SinkEvent) {
        if let Some(obs) = &self.observer {
            obs.emit(event);
        }
    }

    /// A fresh timeline wired to the observer when one is attached.
    fn new_timeline(&self) -> Timeline {
        match &self.observer {
            Some(obs) => Timeline::with_sink(Arc::clone(obs)),
            None => Timeline::new(),
        }
    }

    /// The platform this runtime simulates.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    fn spec(&self, proc: ProcessorKind) -> Result<&ProcessorSpec> {
        match proc {
            ProcessorKind::Cpu => Ok(&self.platform.cpu),
            ProcessorKind::Gpu => self.platform.gpu.as_ref().ok_or_else(|| CoreError::NoGpu {
                platform: self.platform.name.clone(),
            }),
        }
    }

    /// Solo full-layer times `(t_cpu_us, t_gpu_us)` for one node, used by
    /// the tuner as its profiling measurements. GPU time is infinite on
    /// CPU-only platforms.
    ///
    /// # Errors
    /// Propagates workload failures.
    pub fn node_times(&self, graph: &Graph, id: NodeId) -> Result<(f64, f64)> {
        let desc = kernel_desc(graph, id)?;
        let ctx = ExecutionContext::default();
        let t_cpu = self.platform.cpu.kernel_time_us(&desc, &ctx);
        let t_gpu = match &self.platform.gpu {
            Some(gpu) => gpu.kernel_time_us(&desc, &ctx),
            None => f64::INFINITY,
        };
        Ok((t_cpu, t_gpu))
    }

    /// Simulates one inference under `plan`, producing the full report.
    ///
    /// # Errors
    /// Fails on plan/graph mismatches, missing GPU, or workload errors.
    pub fn simulate(&self, graph: &Graph, plan: &ExecutionPlan) -> Result<InferenceReport> {
        plan.validate(graph)?;
        let mut timeline = self.new_timeline();
        let layers = self.run_request(graph, plan, &mut timeline, 0)?;
        let total_us = timeline.makespan_us();
        self.emit(SinkEvent::Request {
            latency_us: total_us,
        });
        let energy = self.platform.power.energy(&timeline);
        let report = InferenceReport {
            model: graph.name().to_string(),
            platform: self.platform.name.clone(),
            total_us,
            summary: timeline.summary(),
            energy,
            layers,
            events: timeline.events().to_vec(),
            decisions: Vec::new(),
        };
        if let Some(sink) = &self.observer {
            report.audit(sink.as_ref());
        }
        // Debug builds gate every single-request simulation on a clean
        // happens-before check of the trace just produced: a scheduling
        // regression (overlapping kernels, racing DMA) fails loudly here
        // instead of skewing results downstream. Release builds skip the
        // O(n^2) pass; `edgenn check` runs the same detector on demand.
        #[cfg(debug_assertions)]
        {
            let caps = edgenn_sim::trace::LinkCaps::from_platform(self.platform);
            let violations: Vec<_> = edgenn_sim::trace::check_trace(&report.events, Some(&caps))
                .into_iter()
                .filter(|v| v.kind != edgenn_sim::trace::TraceViolationKind::AggregateBandwidth)
                .collect();
            debug_assert!(
                violations.is_empty(),
                "runtime produced a racy trace for '{}' on '{}': {violations:?}",
                report.model,
                report.platform
            );
        }
        Ok(report)
    }

    /// Simulates one inference under `plan` while the environment
    /// misbehaves per `faults`, recovering per `cfg`: failed kernels are
    /// retried with exponential backoff and re-placed on the CPU on
    /// exhaustion (a permanent loss re-tunes the remaining suffix to the
    /// CPU-only plan), a burning deadline budget degrades the suffix to
    /// a single-processor plan, and OOM pressure shrinks the footprint
    /// (explicit → managed arrays) before execution. With an empty fault
    /// plan and no deadline this is step-for-step identical to
    /// [`Runtime::simulate`].
    ///
    /// # Errors
    /// Fails on plan/graph mismatches, workload errors, or a fault that
    /// defeats every recovery path ([`CoreError::Unrecoverable`]).
    pub fn simulate_with_faults(
        &self,
        graph: &Graph,
        plan: &ExecutionPlan,
        faults: &FaultPlan,
        cfg: &ResilienceConfig,
    ) -> Result<ResilientOutcome> {
        plan.validate(graph)?;
        let mut clock = FaultClock::new(faults.clone());
        let mut log = crate::runtime::resilience::RecoveryLog {
            max_attempts: cfg.max_retries,
            ..Default::default()
        };

        // OOM pressure is a planning-time fault: if a co-tenant's
        // reservation squeezes the plan's footprint out of DRAM, shrink
        // it by converting explicit two-copy arrays to managed
        // single-copy arrays (skipping input-split co-run outputs, whose
        // semantics prescribe an explicit merge — EC012).
        let mut effective = plan.clone();
        let reserved = clock.reserved_bytes(self.platform.dram_bytes);
        if reserved > 0 && self.platform.dram_bytes > 0 {
            self.emit(SinkEvent::Fault {
                category: "faults_injected",
                kind: FaultKind::OomPressure.to_string(),
                label: format!("{reserved} bytes reserved"),
                t_us: 0.0,
            });
            let budget = self.platform.dram_bytes - reserved;
            let fp = crate::footprint::footprint(graph, &effective)?;
            if fp.peak_bytes > budget {
                // Under the pure AllExplicit policy the per-node alloc is
                // ignored, so the shrink must also move the plan to the
                // semantic-aware policy for the node conversions to bind.
                if effective.config.memory_policy != MemoryPolicy::AllManaged {
                    for node_plan in &mut effective.nodes {
                        node_plan.output_alloc =
                            if matches!(node_plan.assignment, Assignment::SplitInput { .. }) {
                                AllocStrategy::Explicit
                            } else {
                                AllocStrategy::Managed
                            };
                    }
                    effective.config.memory_policy = MemoryPolicy::SemanticAware;
                }
                log.events.push(RecoveryEvent {
                    t_us: 0.0,
                    node: 0,
                    cause: RecoveryCause::OomPressure,
                    action: RecoveryAction::ShrinkFootprint,
                    attempt: 0,
                });
                let shrunk = crate::footprint::footprint(graph, &effective)?;
                if shrunk.peak_bytes > budget {
                    return Err(CoreError::Unrecoverable {
                        node: 0,
                        kind: FaultKind::OomPressure,
                    });
                }
            }
        }

        // Degraded plans are tuned up front so a mid-run switch is a
        // lookup, not a re-tune under fire. The CPU-only plan is the
        // re-tuned suffix after a permanent GPU loss; the deadline
        // degradation switches a hybrid plan to the fastest
        // single-processor plan (GPU-only where a GPU exists).
        let cpu_plan = self.degraded_plan(graph, &effective, HybridMode::CpuOnly)?;
        let degraded_plan = if self.platform.gpu.is_some() {
            self.degraded_plan(graph, &effective, HybridMode::GpuOnly)?
        } else {
            cpu_plan.clone()
        };

        let ctx = FaultCtx {
            clock,
            cfg: *cfg,
            log,
            cpu_plan,
            degraded_plan,
            gpu_lost: false,
            degraded: false,
        };

        let structure = graph.structure()?;
        let mut timeline = self.new_timeline();
        let mut sim = Sim {
            runtime: self,
            graph,
            plan: &effective,
            timeline: &mut timeline,
            ready: vec![0.0; graph.len()],
            loc: vec![Loc::Host; graph.len()],
            layers: Vec::with_capacity(graph.len()),
            jitter: StdRng::seed_from_u64(effective.config.jitter_seed),
            faults: Some(ctx),
        };
        for segment in structure.segments() {
            match segment {
                Segment::Chain(nodes) => {
                    for &id in nodes {
                        sim.exec_node(id, false)?;
                    }
                }
                Segment::Parallel { branches, join } => {
                    sim.exec_parallel(branches, *join)?;
                }
            }
        }
        sim.read_back_output(graph.output_id())?;
        let layers = sim.layers;
        let mut ctx = sim.faults.take().expect("fault context survives the run");
        ctx.log.faults_injected = ctx.clock.injected();
        ctx.log.gpu_lost = ctx.gpu_lost;

        let total_us = timeline.makespan_us();
        self.emit(SinkEvent::Request {
            latency_us: total_us,
        });
        let energy = self.platform.power.energy(&timeline);
        let report = InferenceReport {
            model: graph.name().to_string(),
            platform: self.platform.name.clone(),
            total_us,
            summary: timeline.summary(),
            energy,
            layers,
            events: timeline.events().to_vec(),
            decisions: Vec::new(),
        };
        if let Some(sink) = &self.observer {
            report.audit(sink.as_ref());
        }
        #[cfg(debug_assertions)]
        {
            let caps = edgenn_sim::trace::LinkCaps::from_platform(self.platform);
            let violations: Vec<_> = edgenn_sim::trace::check_trace(&report.events, Some(&caps))
                .into_iter()
                .filter(|v| v.kind != edgenn_sim::trace::TraceViolationKind::AggregateBandwidth)
                .collect();
            debug_assert!(
                violations.is_empty(),
                "resilient runtime produced a racy trace for '{}' on '{}': {violations:?}",
                report.model,
                report.platform
            );
        }
        Ok(ResilientOutcome {
            report,
            recovery: ctx.log,
        })
    }

    /// Tunes a single-processor plan for degraded execution, preserving
    /// the original config's memory policy and seeds.
    fn degraded_plan(
        &self,
        graph: &Graph,
        base: &ExecutionPlan,
        hybrid: HybridMode,
    ) -> Result<ExecutionPlan> {
        let mut config = base.config;
        config.hybrid = hybrid;
        let tuner = crate::tuner::Tuner::new(graph, self)?;
        tuner.plan(graph, self, config)
    }

    /// Simulates a back-to-back stream of `requests` inferences sharing
    /// one plan (a deployed service's steady state). Requests are queued
    /// at t = 0; the per-processor clocks carry across requests, so a plan
    /// that leaves one processor idle lets the next request start on it —
    /// request-level pipelining in the spirit of DART (the paper's reference \[88\]), which the
    /// paper cites as the multi-DNN scheduling line of work.
    ///
    /// # Errors
    /// Fails on plan/graph mismatches, missing GPU, or workload errors.
    pub fn simulate_stream(
        &self,
        graph: &Graph,
        plan: &ExecutionPlan,
        requests: usize,
    ) -> Result<StreamReport> {
        plan.validate(graph)?;
        if requests == 0 {
            return Err(CoreError::Internal {
                reason: "stream of zero requests".to_string(),
            });
        }
        let mut timeline = self.new_timeline();
        let mut finish_times = Vec::with_capacity(requests);
        for request in 0..requests {
            let layers = self.run_request(graph, plan, &mut timeline, request as u64)?;
            let finished = layers
                .iter()
                .map(|l| l.end_us)
                .fold(0.0f64, f64::max)
                .max(timeline.makespan_us());
            let started = layers.iter().map(|l| l.start_us).fold(finished, f64::min);
            self.emit(SinkEvent::Request {
                latency_us: finished - started,
            });
            finish_times.push(finished);
        }
        let total_us = timeline.makespan_us();
        let energy = self.platform.power.energy(&timeline);
        Ok(StreamReport {
            requests,
            total_us,
            finish_times_us: finish_times,
            throughput_per_s: requests as f64 * 1e6 / total_us,
            energy,
        })
    }

    /// Simulates a mixed multi-DNN workload: each job is one inference of
    /// its own network under its own plan, submitted at t = 0 and executed
    /// in the given order on the shared device — the multi-model serving
    /// scenario of the DART line of work the paper cites. Returns the
    /// per-job completion times and the stream report.
    ///
    /// # Errors
    /// Fails on plan/graph mismatches or an empty job list.
    pub fn simulate_workload(&self, jobs: &[(&Graph, &ExecutionPlan)]) -> Result<StreamReport> {
        if jobs.is_empty() {
            return Err(CoreError::Internal {
                reason: "empty workload".to_string(),
            });
        }
        for (graph, plan) in jobs {
            plan.validate(graph)?;
        }
        let mut timeline = self.new_timeline();
        let mut finish_times = Vec::with_capacity(jobs.len());
        for (request, (graph, plan)) in jobs.iter().enumerate() {
            let layers = self.run_request(graph, plan, &mut timeline, request as u64)?;
            let finished = layers
                .iter()
                .map(|l| l.end_us)
                .fold(0.0f64, f64::max)
                .max(timeline.makespan_us());
            let started = layers.iter().map(|l| l.start_us).fold(finished, f64::min);
            self.emit(SinkEvent::Request {
                latency_us: finished - started,
            });
            finish_times.push(finished);
        }
        let total_us = timeline.makespan_us();
        let energy = self.platform.power.energy(&timeline);
        Ok(StreamReport {
            requests: jobs.len(),
            total_us,
            finish_times_us: finish_times,
            throughput_per_s: jobs.len() as f64 * 1e6 / total_us,
            energy,
        })
    }

    /// Simulates an open-loop request stream with Poisson arrivals at
    /// `rate_per_s`, the standard serving model: requests queue when the
    /// device is busy, and per-request latency is completion minus
    /// arrival. Deterministic per `seed`.
    ///
    /// # Errors
    /// Fails on plan/graph mismatches, a zero rate, or zero requests.
    pub fn simulate_poisson_stream(
        &self,
        graph: &Graph,
        plan: &ExecutionPlan,
        rate_per_s: f64,
        requests: usize,
        seed: u64,
    ) -> Result<OpenLoopReport> {
        plan.validate(graph)?;
        if requests == 0 || rate_per_s <= 0.0 {
            return Err(CoreError::Internal {
                reason: format!("invalid open-loop stream: rate {rate_per_s}, {requests} requests"),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mean_gap_us = 1e6 / rate_per_s;
        let mut timeline = self.new_timeline();
        let mut arrival = 0.0f64;
        let mut latencies = Vec::with_capacity(requests);
        for request in 0..requests {
            // Exponential inter-arrival via inverse transform sampling.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            arrival += -mean_gap_us * u.ln();
            let layers =
                self.run_request_at(graph, plan, &mut timeline, request as u64, arrival)?;
            let finished = layers.iter().map(|l| l.end_us).fold(arrival, f64::max);
            self.emit(SinkEvent::Request {
                latency_us: finished - arrival,
            });
            latencies.push(finished - arrival);
        }
        let total_us = timeline.makespan_us();
        let energy = self.platform.power.energy(&timeline);
        let mut sorted = latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |q: f64| sorted[(((sorted.len() - 1) as f64) * q).round() as usize];
        Ok(OpenLoopReport {
            requests,
            offered_rate_per_s: rate_per_s,
            total_us,
            latencies_us: latencies,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            energy,
        })
    }

    /// Runs one request's DAG against a (possibly shared) timeline.
    fn run_request(
        &self,
        graph: &Graph,
        plan: &ExecutionPlan,
        timeline: &mut Timeline,
        request: u64,
    ) -> Result<Vec<LayerTiming>> {
        self.run_request_at(graph, plan, timeline, request, 0.0)
    }

    /// Like [`Runtime::run_request`] but with an explicit arrival time:
    /// no node of this request may start before `arrival_us`.
    fn run_request_at(
        &self,
        graph: &Graph,
        plan: &ExecutionPlan,
        timeline: &mut Timeline,
        request: u64,
        arrival_us: f64,
    ) -> Result<Vec<LayerTiming>> {
        let structure = graph.structure()?;
        let mut sim = Sim {
            runtime: self,
            graph,
            plan,
            timeline,
            ready: vec![arrival_us; graph.len()],
            loc: vec![Loc::Host; graph.len()],
            layers: Vec::with_capacity(graph.len()),
            jitter: StdRng::seed_from_u64(plan.config.jitter_seed.wrapping_add(request)),
            faults: None,
        };
        for segment in structure.segments() {
            match segment {
                Segment::Chain(nodes) => {
                    for &id in nodes {
                        sim.exec_node(id, false)?;
                    }
                }
                Segment::Parallel { branches, join } => {
                    sim.exec_parallel(branches, *join)?;
                }
            }
        }
        sim.read_back_output(graph.output_id())?;
        Ok(sim.layers)
    }
}

/// Result of an open-loop (Poisson-arrival) stream simulation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OpenLoopReport {
    /// Number of requests simulated.
    pub requests: usize,
    /// Offered load (requests per second).
    pub offered_rate_per_s: f64,
    /// Makespan of the run (us).
    pub total_us: f64,
    /// Per-request latency (completion minus arrival, us), arrival order.
    pub latencies_us: Vec<f64>,
    /// Median latency (us).
    pub p50_us: f64,
    /// 95th-percentile latency (us).
    pub p95_us: f64,
    /// 99th-percentile latency (us).
    pub p99_us: f64,
    /// Energy over the run.
    pub energy: edgenn_sim::EnergyReport,
}

/// Result of a multi-request stream simulation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamReport {
    /// Number of inferences simulated.
    pub requests: usize,
    /// Makespan of the whole stream (us).
    pub total_us: f64,
    /// Completion time of each request (us from stream start).
    pub finish_times_us: Vec<f64>,
    /// Sustained throughput (inferences per second).
    pub throughput_per_s: f64,
    /// Energy accounting over the whole stream.
    pub energy: edgenn_sim::EnergyReport,
}

impl StreamReport {
    /// Mean completion time across the stream's requests (us) — the
    /// scheduling metric shortest-job-first optimizes.
    pub fn mean_completion_us(&self) -> f64 {
        if self.finish_times_us.is_empty() {
            return 0.0;
        }
        self.finish_times_us.iter().sum::<f64>() / self.finish_times_us.len() as f64
    }

    /// Average steady-state latency between consecutive completions (us).
    pub fn inter_completion_us(&self) -> f64 {
        if self.finish_times_us.len() < 2 {
            return self.total_us;
        }
        let first = self.finish_times_us[0];
        let last = *self.finish_times_us.last().expect("non-empty");
        (last - first) / (self.finish_times_us.len() - 1) as f64
    }
}

/// Mutable state of one simulation run.
struct Sim<'a, 'p> {
    runtime: &'a Runtime<'p>,
    graph: &'a Graph,
    plan: &'a ExecutionPlan,
    timeline: &'a mut Timeline,
    /// Time each node's output becomes available.
    ready: Vec<f64>,
    /// Residency of each node's output.
    loc: Vec<Loc>,
    layers: Vec<LayerTiming>,
    jitter: StdRng,
    /// Fault-injection state; `None` keeps the run on the exact
    /// fault-free path (no extra RNG draws, no timing perturbation).
    faults: Option<FaultCtx>,
}

impl Sim<'_, '_> {
    fn config(&self) -> &crate::plan::ExecutionConfig {
        &self.plan.config
    }

    fn jittered(&mut self, duration: f64) -> f64 {
        let amp = self.config().jitter;
        if amp <= 0.0 {
            duration
        } else {
            duration * (1.0 + amp * self.jitter.gen_range(-1.0..=1.0))
        }
    }

    /// The effective assignment of a node, honouring a mid-run suffix
    /// switch to a degraded plan (GPU loss or deadline degradation).
    fn assignment_of(&self, id: NodeId) -> Assignment {
        if let Some(f) = &self.faults {
            if f.gpu_lost {
                return f.cpu_plan.nodes[id.index()].assignment;
            }
            if f.degraded {
                return f.degraded_plan.nodes[id.index()].assignment;
            }
        }
        self.plan.nodes[id.index()].assignment
    }

    /// Multiplier on attainable memory bandwidth from active
    /// degradation windows (1 on the fault-free path).
    fn fault_bw_factor(&mut self, t: f64) -> f64 {
        let Some(f) = &mut self.faults else {
            return 1.0;
        };
        let before = f.clock.injected();
        let factor = f.clock.bandwidth_factor_at(t);
        if f.clock.injected() > before {
            self.runtime.emit(SinkEvent::Fault {
                category: "faults_injected",
                kind: FaultKind::BandwidthDegradation.to_string(),
                label: String::new(),
                t_us: t,
            });
        }
        factor
    }

    /// Multiplier on the compute roofline from active thermal windows.
    fn fault_compute_factor(&mut self, t: f64) -> f64 {
        let Some(f) = &mut self.faults else {
            return 1.0;
        };
        let before = f.clock.injected();
        let factor = f.clock.compute_factor_at(t);
        if f.clock.injected() > before {
            self.runtime.emit(SinkEvent::Fault {
                category: "faults_injected",
                kind: FaultKind::ThermalThrottle.to_string(),
                label: String::new(),
                t_us: t,
            });
        }
        factor
    }

    /// Multiplier (≥ 1) on managed-page migration time from active
    /// stall windows.
    fn fault_stall_factor(&mut self, t: f64) -> f64 {
        let Some(f) = &mut self.faults else {
            return 1.0;
        };
        let before = f.clock.injected();
        let factor = f.clock.stall_factor_at(t);
        if f.clock.injected() > before {
            self.runtime.emit(SinkEvent::Fault {
                category: "faults_injected",
                kind: FaultKind::MigrationStall.to_string(),
                label: String::new(),
                t_us: t,
            });
        }
        factor
    }

    /// Consumes one planned failure of `id`'s kernel, if any remains.
    fn fault_should_fail(&mut self, id: NodeId, name: &str, t: f64) -> bool {
        let Some(f) = &mut self.faults else {
            return false;
        };
        if f.clock.should_fail_kernel(id.index()) {
            self.runtime.emit(SinkEvent::Fault {
                category: "faults_injected",
                kind: FaultKind::TransientKernel.to_string(),
                label: name.to_string(),
                t_us: t,
            });
            true
        } else {
            false
        }
    }

    /// The retry budget per failed kernel (0 without fault injection).
    fn fault_retry_budget(&self) -> u32 {
        self.faults.as_ref().map_or(0, |f| f.cfg.max_retries)
    }

    /// Records a retry decision after failed attempt `attempt` and
    /// returns the backoff gap to wait before re-launching.
    fn fault_log_retry(&mut self, id: NodeId, name: &str, t: f64, attempt: u32) -> f64 {
        let Some(f) = &mut self.faults else {
            return 0.0;
        };
        f.log.retries += 1;
        f.log.events.push(RecoveryEvent {
            t_us: t,
            node: id.index(),
            cause: RecoveryCause::TransientKernel,
            action: RecoveryAction::Retry,
            attempt,
        });
        self.runtime.emit(SinkEvent::Fault {
            category: "retries",
            kind: RecoveryCause::TransientKernel.to_string(),
            label: name.to_string(),
            t_us: t,
        });
        f.cfg.backoff_us(attempt)
    }

    /// Records a GPU→CPU fallback; a permanent failure marks the GPU
    /// lost so the remaining suffix re-tunes to the CPU-only plan.
    fn fault_log_fallback(&mut self, id: NodeId, name: &str, t: f64, attempt: u32) {
        let Some(f) = &mut self.faults else { return };
        let permanent = f.clock.is_permanent(id.index());
        let cause = if permanent {
            RecoveryCause::PermanentKernel
        } else {
            RecoveryCause::TransientKernel
        };
        f.log.fallbacks += 1;
        f.log.events.push(RecoveryEvent {
            t_us: t,
            node: id.index(),
            cause,
            action: RecoveryAction::FallbackToCpu,
            attempt,
        });
        if permanent {
            f.gpu_lost = true;
        }
        self.runtime.emit(SinkEvent::Fault {
            category: "fallbacks",
            kind: cause.to_string(),
            label: name.to_string(),
            t_us: t,
        });
    }

    /// Degrades the remaining suffix to the single-processor plan when
    /// the deadline budget is burning (at most once per run).
    fn maybe_degrade_for_deadline(&mut self, id: NodeId, now: f64) {
        let Some(f) = &mut self.faults else { return };
        if f.degraded || f.gpu_lost {
            return;
        }
        let Some(deadline) = f.cfg.deadline_us else {
            return;
        };
        if now > deadline * f.cfg.deadline_degrade_fraction {
            f.degraded = true;
            f.log.deadline_degradations += 1;
            f.log.events.push(RecoveryEvent {
                t_us: now,
                node: id.index(),
                cause: RecoveryCause::DeadlineOverrun,
                action: RecoveryAction::DegradeToSingleProcessor,
                attempt: 0,
            });
            self.runtime.emit(SinkEvent::Fault {
                category: "deadline_degradations",
                kind: RecoveryCause::DeadlineOverrun.to_string(),
                label: String::new(),
                t_us: now,
            });
        }
    }

    /// Allocation strategy of a node's output under the active policy.
    fn alloc_of(&self, id: NodeId) -> AllocStrategy {
        match self.config().memory_policy {
            MemoryPolicy::AllExplicit => AllocStrategy::Explicit,
            MemoryPolicy::AllManaged => AllocStrategy::Managed,
            MemoryPolicy::SemanticAware => self.plan.nodes[id.index()].output_alloc,
        }
    }

    /// Bandwidth factor a kernel sees given the arrays it touches,
    /// weighted by its activation-vs-weight traffic mix.
    fn bandwidth_factor(&self, id: NodeId) -> f64 {
        let memory = &self.runtime.platform.memory;
        let node = self.graph.nodes().get(id.index()).expect("validated");
        let mut factor = memory.bandwidth_factor(self.alloc_of(id));
        for input in node.inputs() {
            factor = factor.min(memory.bandwidth_factor(self.alloc_of(*input)));
        }
        let desc = kernel_desc(self.graph, id).expect("validated at plan time");
        weighted_bw_factor(&desc, factor)
    }

    /// Ensures `id`'s output is accessible to `proc` by time `at`,
    /// scheduling copies/migrations as needed; returns the ready time.
    fn make_available(&mut self, id: NodeId, proc: ProcessorKind, at: f64) -> f64 {
        let memory = &self.runtime.platform.memory;
        let loc = self.loc[id.index()];
        if loc.available_to(proc) {
            return at;
        }
        let node = self.graph.nodes().get(id.index()).expect("validated");
        let bytes = (node.output_shape().num_elements() * 4) as u64;
        let label = format!("{} -> {proc}", node.layer().name());
        let end = match self.alloc_of(id) {
            AllocStrategy::Explicit => {
                // A bandwidth-degradation window stretches the DMA.
                let dur = memory.copy_time_us(bytes) / self.fault_bw_factor(at);
                self.timeline
                    .schedule_bus(TraceKind::Copy, at, dur, bytes, Some(proc), label)
            }
            AllocStrategy::Managed => {
                let prefetched = self.plan.nodes[id.index()].prefetch_inputs
                    || self
                        .graph
                        .successors(id)
                        .iter()
                        .any(|s| self.plan.nodes[s.index()].prefetch_inputs);
                // A stall window multiplies the page-migration time.
                let dur = memory.migration_time_us(bytes, prefetched) * self.fault_stall_factor(at);
                self.timeline
                    .schedule_bus(TraceKind::Migration, at, dur, bytes, Some(proc), label)
            }
        };
        self.loc[id.index()] = Loc::Both;
        end.max(at)
    }

    /// Executes one node per its plan. `corun_context` marks nodes inside
    /// a fork-join region whose branches run on both processors (memory
    /// contention applies).
    fn exec_node(&mut self, id: NodeId, corun_context: bool) -> Result<()> {
        let node = self.graph.node(id)?;
        if node.layer().class() == LayerClass::Input {
            // The host writes the input tensor when the request arrives
            // (the vector is pre-seeded with the arrival time).
            self.loc[id.index()] = Loc::Host;
            return Ok(());
        }
        let now = node
            .inputs()
            .iter()
            .map(|i| self.ready[i.index()])
            .fold(0.0, f64::max);
        self.maybe_degrade_for_deadline(id, now);
        match self.assignment_of(id) {
            Assignment::Gpu => self.exec_solo(id, ProcessorKind::Gpu, corun_context),
            Assignment::Cpu => self.exec_solo(id, ProcessorKind::Cpu, corun_context),
            Assignment::Split { cpu_fraction } => self.exec_split(id, cpu_fraction, false),
            Assignment::SplitInput { cpu_fraction } => self.exec_split(id, cpu_fraction, true),
        }
    }

    /// Whole layer on one processor.
    fn exec_solo(&mut self, id: NodeId, proc: ProcessorKind, corun: bool) -> Result<()> {
        let spec = self.runtime.spec(proc)?.clone();
        let memory = self.runtime.platform.memory.clone();
        let node = self.graph.node(id)?;
        let name = node.layer().name().to_string();
        let class = node.layer().class();
        let desc = kernel_desc(self.graph, id)?;
        let naive = self.config().memory_policy == MemoryPolicy::AllExplicit;
        // The original host-orchestrated program with managed arrays: the
        // host still touches activations between kernels. On an integrated
        // SoC that is free (same DRAM); on a discrete GPU every touch
        // bounces the pages over PCIe — the paper's Section IV-B claim
        // that unified memory "brings no benefit for the discrete
        // architecture".
        let managed_bounce =
            self.config().memory_policy == MemoryPolicy::AllManaged && !memory.is_unified();

        let inputs: Vec<NodeId> = node.inputs().to_vec();
        let mut ready = inputs
            .iter()
            .map(|i| self.ready[i.index()])
            .fold(0.0, f64::max);
        let start = ready;
        let mut memory_us = 0.0;

        if naive || managed_bounce {
            // Host-orchestrated boundary before a GPU kernel: an explicit
            // H2D copy, or an on-demand page-fault storm for managed
            // arrays on PCIe (scaled by the roundtrip fraction).
            if proc == ProcessorKind::Gpu {
                let (kind, dur) = if naive {
                    (TraceKind::Copy, memory.copy_time_us(desc.bytes_in))
                } else {
                    (
                        TraceKind::Migration,
                        memory.migration_time_us(desc.bytes_in, false),
                    )
                };
                let dur = self.config().host_roundtrip_fraction * dur;
                if dur > 0.0 {
                    memory_us += dur;
                    ready = self.timeline.schedule_bus(
                        kind,
                        ready,
                        dur,
                        desc.bytes_in,
                        Some(proc),
                        format!("{name} h2d"),
                    );
                }
            }
        } else {
            for input in &inputs {
                ready = self.make_available(*input, proc, ready).max(ready);
            }
        }

        // The zero-copy access penalty is a GPU-side effect (managed pages
        // lose some coalescing); the CPU reads the same DRAM either way.
        let policy_bw = if naive {
            1.0
        } else {
            self.bandwidth_factor(id)
        };
        let contention = if corun {
            memory.corun_contention_factor
        } else {
            1.0
        };
        // Kernel launch with recovery: an injected failure occupies the
        // processor for the attempt, then either retries after an
        // exponential backoff or — once the budget is exhausted —
        // re-places the work on the CPU.
        let mut proc = proc;
        let mut spec = spec;
        let mut kernel_us = 0.0;
        let mut failed_attempts = 0u32;
        let mut end = loop {
            let ctx = ExecutionContext {
                bandwidth_factor: if proc == ProcessorKind::Cpu {
                    1.0
                } else {
                    policy_bw
                } * self.fault_bw_factor(ready),
                contention_factor: contention,
                compute_factor: self.fault_compute_factor(ready),
            };
            let duration = self.jittered(spec.kernel_time_us(&desc, &ctx));
            kernel_us += duration;
            if proc == ProcessorKind::Cpu || !self.fault_should_fail(id, &name, ready) {
                break self.timeline.schedule(
                    proc,
                    TraceKind::Kernel,
                    ready,
                    duration,
                    name.clone(),
                );
            }
            failed_attempts += 1;
            let fail_end = self.timeline.schedule(
                proc,
                TraceKind::Kernel,
                ready,
                duration,
                format!("{name} [attempt {failed_attempts} failed]"),
            );
            if failed_attempts <= self.fault_retry_budget() {
                let backoff = self.fault_log_retry(id, &name, fail_end, failed_attempts);
                ready = fail_end + backoff;
            } else {
                self.fault_log_fallback(id, &name, fail_end, failed_attempts);
                proc = ProcessorKind::Cpu;
                spec = self.runtime.spec(ProcessorKind::Cpu)?.clone();
                ready = fail_end;
                if !(naive || managed_bounce) {
                    for input in &inputs {
                        ready = self
                            .make_available(*input, ProcessorKind::Cpu, ready)
                            .max(ready);
                    }
                }
            }
        };

        if (naive || managed_bounce) && proc == ProcessorKind::Gpu {
            // ... and the host reads the output after it.
            let (kind, dur) = if naive {
                (TraceKind::Copy, memory.copy_time_us(desc.bytes_out))
            } else {
                (
                    TraceKind::Migration,
                    memory.migration_time_us(desc.bytes_out, false),
                )
            };
            let dur = self.config().host_roundtrip_fraction * dur;
            if dur > 0.0 {
                memory_us += dur;
                end = self.timeline.schedule_bus(
                    kind,
                    end,
                    dur,
                    desc.bytes_out,
                    Some(proc),
                    format!("{name} d2h"),
                );
            }
            self.loc[id.index()] = Loc::Both;
        } else {
            self.loc[id.index()] = Loc::of(proc);
        }

        self.ready[id.index()] = end;
        self.layers.push(LayerTiming {
            node: id.index(),
            name,
            class_tag: class.tag().to_string(),
            assignment: self.assignment_of(id),
            start_us: start,
            end_us: end,
            kernel_us,
            memory_us,
        });
        Ok(())
    }

    /// Intra-kernel co-run: CPU computes `p` of the units, GPU the rest.
    /// `by_input` selects the input-channel split (full-size partial sums
    /// merged by addition) instead of the output-unit split.
    fn exec_split(&mut self, id: NodeId, p_cpu: f64, by_input: bool) -> Result<()> {
        let gpu = self.runtime.spec(ProcessorKind::Gpu)?.clone();
        let cpu = self.runtime.platform.cpu.clone();
        let memory = self.runtime.platform.memory.clone();
        let node = self.graph.node(id)?;
        let name = node.layer().name().to_string();
        let class = node.layer().class();
        let desc = kernel_desc(self.graph, id)?;
        let naive = self.config().memory_policy == MemoryPolicy::AllExplicit;

        let inputs: Vec<NodeId> = node.inputs().to_vec();
        let mut ready = inputs
            .iter()
            .map(|i| self.ready[i.index()])
            .fold(0.0, f64::max);
        let start = ready;
        let mut memory_us = 0.0;

        // Both processors need the inputs. Under zero-copy this is free
        // (the whole point of fine-grained co-running on unified memory);
        // under the naive policy the GPU side re-uploads.
        if naive {
            let dur = self.config().host_roundtrip_fraction * memory.copy_time_us(desc.bytes_in);
            if dur > 0.0 {
                memory_us += dur;
                ready = self.timeline.schedule_bus(
                    TraceKind::Copy,
                    ready,
                    dur,
                    desc.bytes_in,
                    Some(ProcessorKind::Gpu),
                    format!("{name} h2d"),
                );
            }
        } else {
            for input in &inputs {
                ready = self
                    .make_available(*input, ProcessorKind::Cpu, ready)
                    .max(ready);
                ready = self
                    .make_available(*input, ProcessorKind::Gpu, ready)
                    .max(ready);
            }
        }

        let bw = if naive {
            1.0
        } else {
            self.bandwidth_factor(id)
        };
        let window_bw = self.fault_bw_factor(ready);
        let window_compute = self.fault_compute_factor(ready);
        let cpu_ctx = ExecutionContext {
            // Zero-copy penalty is GPU-side only, but a degradation
            // window squeezes the shared DRAM for both processors.
            bandwidth_factor: window_bw,
            contention_factor: memory.corun_contention_factor,
            compute_factor: window_compute,
        };
        let gpu_ctx = ExecutionContext {
            bandwidth_factor: bw * window_bw,
            contention_factor: memory.corun_contention_factor,
            compute_factor: window_compute,
        };
        let (cpu_desc, gpu_desc) = if by_input {
            (
                scale_desc_input(&desc, p_cpu),
                scale_desc_input(&desc, 1.0 - p_cpu),
            )
        } else {
            (scale_desc(&desc, p_cpu), scale_desc(&desc, 1.0 - p_cpu))
        };
        let t_cpu = self.jittered(cpu.kernel_time_us(&cpu_desc, &cpu_ctx));
        let cpu_end = self.timeline.schedule(
            ProcessorKind::Cpu,
            TraceKind::Kernel,
            ready,
            t_cpu,
            format!("{name} [cpu part]"),
        );
        // GPU share with recovery: a failed launch retries with backoff;
        // exhaustion re-executes the GPU's share on the CPU after its
        // own part (recovery changes *where*, never *what*).
        let mut gpu_ready = ready;
        let mut failed_attempts = 0u32;
        let mut t_gpu_total = 0.0;
        let gpu_end = loop {
            let t_gpu = self.jittered(gpu.kernel_time_us(&gpu_desc, &gpu_ctx));
            t_gpu_total += t_gpu;
            if !self.fault_should_fail(id, &name, gpu_ready) {
                break self.timeline.schedule(
                    ProcessorKind::Gpu,
                    TraceKind::Kernel,
                    gpu_ready,
                    t_gpu,
                    format!("{name} [gpu part]"),
                );
            }
            failed_attempts += 1;
            let fail_end = self.timeline.schedule(
                ProcessorKind::Gpu,
                TraceKind::Kernel,
                gpu_ready,
                t_gpu,
                format!("{name} [gpu part attempt {failed_attempts} failed]"),
            );
            if failed_attempts <= self.fault_retry_budget() {
                let backoff = self.fault_log_retry(id, &name, fail_end, failed_attempts);
                gpu_ready = fail_end + backoff;
            } else {
                self.fault_log_fallback(id, &name, fail_end, failed_attempts);
                let t = self.jittered(cpu.kernel_time_us(&gpu_desc, &cpu_ctx));
                t_gpu_total += t;
                break self.timeline.schedule(
                    ProcessorKind::Cpu,
                    TraceKind::Kernel,
                    cpu_end.max(fail_end),
                    t,
                    format!("{name} [gpu share on cpu]"),
                );
            }
        };
        let mut end = cpu_end.max(gpu_end);
        let kernel_us = t_cpu.max(t_gpu_total);

        // Merge the CPU part into the canonical output array. An
        // input-channel split produces a full-size partial sum on each
        // processor, so the whole output volume crosses at the merge; an
        // output split only moves the CPU's share.
        let merge_bytes = if by_input {
            desc.bytes_out
        } else {
            (desc.bytes_out as f64 * p_cpu) as u64
        };
        match self.alloc_of(id) {
            AllocStrategy::Explicit => {
                let dur = memory.copy_time_us(merge_bytes);
                memory_us += dur;
                end = self.timeline.schedule_bus(
                    TraceKind::Copy,
                    end,
                    dur,
                    merge_bytes,
                    Some(ProcessorKind::Gpu),
                    format!("{name} merge"),
                );
            }
            AllocStrategy::Managed => {
                // An output split writes disjoint ranges of one managed
                // array: only the pages straddling the partition boundary
                // thrash. An input split's partial sums overlap on every
                // page — the full race-condition case of Section IV-B.
                let boundary = if by_input {
                    merge_bytes
                } else {
                    merge_bytes.min(128 << 10)
                };
                let dur = memory.thrash_time_us(boundary);
                memory_us += dur;
                end = self.timeline.schedule_bus(
                    TraceKind::Thrash,
                    end,
                    dur,
                    boundary,
                    None,
                    format!("{name} boundary pages"),
                );
            }
        }

        // Co-run synchronization (kernel wait + worker join).
        end += self.config().sync_overhead_us;
        self.timeline.advance_to(end);

        self.loc[id.index()] = if self.alloc_of(id) == AllocStrategy::Managed {
            Loc::Both
        } else {
            Loc::Device
        };
        self.ready[id.index()] = end;
        self.layers.push(LayerTiming {
            node: id.index(),
            name,
            class_tag: class.tag().to_string(),
            assignment: self.assignment_of(id),
            start_us: start,
            end_us: end,
            kernel_us,
            memory_us,
        });
        Ok(())
    }

    /// Executes a fork-join region: branches on their assigned processors,
    /// concurrently when assignments differ.
    fn exec_parallel(&mut self, branches: &[Vec<NodeId>], join: NodeId) -> Result<()> {
        // A branch is CPU-assigned when its first node is.
        let mut has_cpu = false;
        let mut has_gpu = false;
        for branch in branches {
            match branch.first().map(|id| self.assignment_of(*id)) {
                Some(Assignment::Cpu) => has_cpu = true,
                Some(Assignment::Gpu)
                | Some(Assignment::Split { .. })
                | Some(Assignment::SplitInput { .. }) => has_gpu = true,
                None => {}
            }
        }
        let corun = has_cpu && has_gpu;

        for branch in branches {
            for &id in branch {
                self.exec_node(id, corun)?;
            }
        }

        if corun {
            // The processors synchronize before the join layer
            // (paper Figure 5: "CPU and GPU need to synchronize before
            // going on to the concatenation layer").
            let at = branches
                .iter()
                .flat_map(|b| b.last())
                .map(|id| self.ready[id.index()])
                .fold(0.0, f64::max)
                + self.config().sync_overhead_us;
            self.timeline.advance_to(at);
            let join_name = self.graph.node(join)?.layer().name().to_string();
            self.timeline.schedule_bus(
                TraceKind::Sync,
                at - self.config().sync_overhead_us,
                self.config().sync_overhead_us,
                0,
                None,
                format!("barrier before {join_name}"),
            );
        }
        Ok(())
    }

    /// Final D2H of the class scores (the host consumes the result).
    fn read_back_output(&mut self, output: NodeId) -> Result<()> {
        let memory = self.runtime.platform.memory.clone();
        let node = self.graph.node(output)?;
        let bytes = (node.output_shape().num_elements() * 4) as u64;
        let at = self.ready[output.index()];
        if !self.loc[output.index()].available_to(ProcessorKind::Cpu) {
            let dur = match self.alloc_of(output) {
                AllocStrategy::Explicit => memory.copy_time_us(bytes),
                AllocStrategy::Managed => memory.migration_time_us(bytes, false),
            };
            self.timeline.schedule_bus(
                TraceKind::Copy,
                at,
                dur,
                bytes,
                Some(ProcessorKind::Cpu),
                "output read-back",
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ExecutionConfig, NodePlan};
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::{jetson_agx_xavier, raspberry_pi_4};

    fn gpu_plan(graph: &Graph, config: ExecutionConfig) -> ExecutionPlan {
        ExecutionPlan {
            config,
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        }
    }

    fn cpu_plan(graph: &Graph, config: ExecutionConfig) -> ExecutionPlan {
        ExecutionPlan {
            config,
            nodes: vec![
                NodePlan {
                    assignment: Assignment::Cpu,
                    output_alloc: AllocStrategy::Explicit,
                    prefetch_inputs: false,
                };
                graph.len()
            ],
        }
    }

    #[test]
    fn gpu_baseline_runs_all_models() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Paper);
            let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
            let report = runtime.simulate(&graph, &plan).unwrap();
            assert!(report.total_us > 0.0, "{kind}");
            assert!(report.summary.copy_us > 0.0, "{kind}: naive mode must copy");
            assert!(report.energy.energy_mj > 0.0, "{kind}");
            // Kernel events exist for every non-input layer.
            assert_eq!(report.layers.len(), graph.len() - 1, "{kind}");
        }
    }

    #[test]
    fn cpu_only_runs_on_gpuless_platform() {
        let platform = raspberry_pi_4();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let plan = cpu_plan(&graph, ExecutionConfig::cpu_only());
        let report = runtime.simulate(&graph, &plan).unwrap();
        assert!(report.total_us > 0.0);
        assert_eq!(report.energy.gpu_utilization, 0.0);
    }

    #[test]
    fn gpu_plan_on_gpuless_platform_errors() {
        let platform = raspberry_pi_4();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        assert!(matches!(
            runtime.simulate(&graph, &plan),
            Err(CoreError::NoGpu { .. })
        ));
    }

    #[test]
    fn managed_policy_eliminates_explicit_copies() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let naive = runtime
            .simulate(&graph, &gpu_plan(&graph, ExecutionConfig::baseline_gpu()))
            .unwrap();
        let mut managed_cfg = ExecutionConfig::baseline_gpu();
        managed_cfg.memory_policy = MemoryPolicy::AllManaged;
        let managed = runtime
            .simulate(&graph, &gpu_plan(&graph, managed_cfg))
            .unwrap();
        assert!(naive.summary.copy_us > 0.0);
        assert!(managed.summary.copy_us < naive.summary.copy_us / 4.0);
    }

    #[test]
    fn split_assignment_beats_gpu_only_on_fc_heavy_net() {
        // FCNN's fc layers are memory-bound on the GPU; a tuned split
        // should win despite sync overhead.
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::Fcnn, ModelScale::Paper);
        let mut cfg = ExecutionConfig::edgenn();
        cfg.memory_policy = MemoryPolicy::AllManaged;
        let baseline = {
            let mut plan = gpu_plan(&graph, cfg);
            plan.config.memory_policy = MemoryPolicy::AllManaged;
            runtime.simulate(&graph, &plan).unwrap()
        };
        // Hand-build a split plan on the large fc layers.
        let mut plan = gpu_plan(&graph, cfg);
        for (idx, node) in graph.nodes().iter().enumerate() {
            if node.layer().class() == LayerClass::Fc {
                let (t_cpu, t_gpu) = runtime.node_times(&graph, NodeId(idx)).unwrap();
                let p = t_gpu / (t_cpu + t_gpu);
                plan.nodes[idx].assignment = Assignment::Split { cpu_fraction: p };
            }
        }
        let split = runtime.simulate(&graph, &plan).unwrap();
        assert!(
            split.total_us < baseline.total_us,
            "split {} should beat gpu-only {}",
            split.total_us,
            baseline.total_us
        );
    }

    #[test]
    fn jitter_changes_times_but_stays_deterministic_per_seed() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let mut cfg = ExecutionConfig::baseline_gpu();
        cfg.jitter = 0.1;
        cfg.jitter_seed = 1;
        let a = runtime.simulate(&graph, &gpu_plan(&graph, cfg)).unwrap();
        let b = runtime.simulate(&graph, &gpu_plan(&graph, cfg)).unwrap();
        assert_eq!(a.total_us, b.total_us, "same seed, same result");
        cfg.jitter_seed = 2;
        let c = runtime.simulate(&graph, &gpu_plan(&graph, cfg)).unwrap();
        assert_ne!(a.total_us, c.total_us, "different seed, different result");
    }

    #[test]
    fn scale_desc_partitions_conserve_flops() {
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let desc = kernel_desc(&graph, NodeId(1)).unwrap();
        let a = scale_desc(&desc, 0.3);
        let b = scale_desc(&desc, 0.7);
        let total = a.flops + b.flops;
        assert!(total >= desc.flops - 1 && total <= desc.flops + 1);
        assert_eq!(a.bytes_in, desc.bytes_in, "both parts read the whole input");
        assert_eq!(a.working_set_bytes, desc.working_set_bytes);
    }

    #[test]
    fn op_class_covers_all_layer_classes() {
        assert_eq!(op_class(LayerClass::Conv), OpClass::Conv);
        assert_eq!(op_class(LayerClass::Fc), OpClass::Fc);
        assert_eq!(op_class(LayerClass::Pool), OpClass::Pool);
        assert_eq!(op_class(LayerClass::Activation), OpClass::Activation);
        assert_eq!(op_class(LayerClass::Norm), OpClass::Norm);
        assert_eq!(op_class(LayerClass::Combine), OpClass::Combine);
        assert_eq!(op_class(LayerClass::Input), OpClass::Combine);
    }

    #[test]
    fn stream_throughput_at_least_matches_sequential() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let plan = {
            let tuner = crate::tuner::Tuner::new(&graph, &runtime).unwrap();
            tuner
                .plan(&graph, &runtime, ExecutionConfig::edgenn())
                .unwrap()
        };
        let single = runtime.simulate(&graph, &plan).unwrap();
        let stream = runtime.simulate_stream(&graph, &plan, 8).unwrap();
        assert_eq!(stream.requests, 8);
        assert_eq!(stream.finish_times_us.len(), 8);
        // Completions are ordered and the stream is no slower than 8
        // strictly sequential runs.
        for w in stream.finish_times_us.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(stream.total_us <= single.total_us * 8.0 + 1e-6);
        assert!(stream.throughput_per_s >= 1e6 / single.total_us - 1e-6);
        assert!(stream.inter_completion_us() <= single.total_us + 1e-6);
        assert!(stream.energy.energy_mj > single.energy.energy_mj);
    }

    #[test]
    fn poisson_stream_latency_grows_with_load() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
        let plan = {
            let tuner = crate::tuner::Tuner::new(&graph, &runtime).unwrap();
            tuner
                .plan(&graph, &runtime, ExecutionConfig::edgenn())
                .unwrap()
        };
        let single = runtime.simulate(&graph, &plan).unwrap();
        let capacity = 1e6 / single.total_us; // requests/s the device sustains

        let light = runtime
            .simulate_poisson_stream(&graph, &plan, capacity * 0.3, 40, 7)
            .unwrap();
        let heavy = runtime
            .simulate_poisson_stream(&graph, &plan, capacity * 0.95, 40, 7)
            .unwrap();
        assert!(
            light.p50_us >= single.total_us * 0.9,
            "latency floor is one inference"
        );
        assert!(
            heavy.p95_us > light.p95_us,
            "queueing under load must raise tail latency: {} vs {}",
            heavy.p95_us,
            light.p95_us
        );
        assert!(light.p50_us <= light.p95_us && light.p95_us <= light.p99_us);
        // Determinism per seed.
        let again = runtime
            .simulate_poisson_stream(&graph, &plan, capacity * 0.3, 40, 7)
            .unwrap();
        assert_eq!(again.p99_us, light.p99_us);
    }

    #[test]
    fn mixed_workload_runs_and_sjf_beats_fifo_on_mean_completion() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner_plan = |graph: &Graph| {
            let tuner = crate::tuner::Tuner::new(graph, &runtime).unwrap();
            tuner
                .plan(graph, &runtime, ExecutionConfig::edgenn())
                .unwrap()
        };
        let vgg = build(ModelKind::Vgg16, ModelScale::Paper);
        let lenet = build(ModelKind::LeNet, ModelScale::Paper);
        let vgg_plan = tuner_plan(&vgg);
        let lenet_plan = tuner_plan(&lenet);

        // FIFO with the heavy job first vs shortest-job-first.
        let fifo = runtime
            .simulate_workload(&[
                (&vgg, &vgg_plan),
                (&lenet, &lenet_plan),
                (&lenet, &lenet_plan),
            ])
            .unwrap();
        let sjf = runtime
            .simulate_workload(&[
                (&lenet, &lenet_plan),
                (&lenet, &lenet_plan),
                (&vgg, &vgg_plan),
            ])
            .unwrap();
        assert_eq!(fifo.requests, 3);
        // The makespan is order-insensitive (same total work)...
        assert!((fifo.total_us - sjf.total_us).abs() / fifo.total_us < 0.02);
        // ...but mean completion strongly favors running the LeNets first.
        assert!(
            sjf.mean_completion_us() < fifo.mean_completion_us() * 0.6,
            "sjf {} vs fifo {}",
            sjf.mean_completion_us(),
            fifo.mean_completion_us()
        );
    }

    #[test]
    fn stream_rejects_zero_requests() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        assert!(runtime.simulate_stream(&graph, &plan, 0).is_err());
    }

    #[test]
    fn per_layer_timings_are_ordered_and_positive() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
        let report = runtime
            .simulate(&graph, &gpu_plan(&graph, ExecutionConfig::baseline_gpu()))
            .unwrap();
        for layer in &report.layers {
            assert!(layer.end_us >= layer.start_us, "{}", layer.name);
            assert!(layer.kernel_us > 0.0, "{}", layer.name);
        }
        let sum_kernels: f64 = report.layers.iter().map(|l| l.kernel_us).sum();
        assert!(sum_kernels <= report.total_us + 1e-6);
    }

    /// First non-input node index in the GPU plan (fault anchor).
    fn first_kernel_node(graph: &Graph) -> usize {
        graph
            .topo_order()
            .into_iter()
            .find(|id| graph.node(*id).unwrap().layer().class() != LayerClass::Input)
            .unwrap()
            .index()
    }

    #[test]
    fn empty_fault_plan_is_bitwise_identical_to_plain_simulate() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        let plain = runtime.simulate(&graph, &plan).unwrap();
        let outcome = runtime
            .simulate_with_faults(
                &graph,
                &plan,
                &FaultPlan::none(),
                &ResilienceConfig::default(),
            )
            .unwrap();
        assert!(outcome.recovery.is_clean());
        assert_eq!(
            outcome.report.total_us, plain.total_us,
            "resilience machinery must cost nothing when idle"
        );
    }

    #[test]
    fn analytic_permanent_failure_exhausts_retries_then_falls_back() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        let mut faults = FaultPlan::none();
        faults.kernel_faults.push(edgenn_sim::KernelFault {
            node: first_kernel_node(&graph),
            fail_count: u32::MAX,
        });
        let cfg = ResilienceConfig::default();
        let outcome = runtime
            .simulate_with_faults(&graph, &plan, &faults, &cfg)
            .unwrap();
        assert_eq!(outcome.recovery.retries, u64::from(cfg.max_retries));
        assert_eq!(outcome.recovery.fallbacks, 1);
        assert!(outcome.recovery.gpu_lost, "permanent loss re-tunes to CPU");
        let clean = runtime.simulate(&graph, &plan).unwrap();
        assert!(
            outcome.report.total_us > clean.total_us,
            "retries and the CPU path must cost simulated time"
        );
    }

    #[test]
    fn analytic_one_shot_transient_recovers_in_one_retry() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        let mut faults = FaultPlan::none();
        faults.kernel_faults.push(edgenn_sim::KernelFault {
            node: first_kernel_node(&graph),
            fail_count: 1,
        });
        let outcome = runtime
            .simulate_with_faults(&graph, &plan, &faults, &ResilienceConfig::default())
            .unwrap();
        assert_eq!(outcome.recovery.retries, 1);
        assert_eq!(outcome.recovery.fallbacks, 0);
        assert!(!outcome.recovery.gpu_lost);
        assert_eq!(outcome.recovery.faults_injected, 1);
    }

    #[test]
    fn deadline_budget_degrades_the_run_to_a_single_processor() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::ResNet18, ModelScale::Paper);
        let plan = {
            let tuner = crate::tuner::Tuner::new(&graph, &runtime).unwrap();
            tuner
                .plan(&graph, &runtime, ExecutionConfig::edgenn())
                .unwrap()
        };
        let cfg = ResilienceConfig {
            deadline_us: Some(1.0), // burns immediately
            ..ResilienceConfig::default()
        };
        let outcome = runtime
            .simulate_with_faults(&graph, &plan, &FaultPlan::none(), &cfg)
            .unwrap();
        assert_eq!(outcome.recovery.deadline_degradations, 1);
        assert!(outcome
            .recovery
            .events
            .iter()
            .any(|e| e.action == RecoveryAction::DegradeToSingleProcessor));
    }

    #[test]
    fn seeded_fault_runs_are_deterministic_and_survive_every_seed() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
        let plan = {
            let tuner = crate::tuner::Tuner::new(&graph, &runtime).unwrap();
            tuner
                .plan(&graph, &runtime, ExecutionConfig::edgenn())
                .unwrap()
        };
        let cfg = ResilienceConfig::default();
        for seed in 0..12u64 {
            let faults = FaultPlan::from_seed(seed, graph.len());
            let a = runtime
                .simulate_with_faults(&graph, &plan, &faults, &cfg)
                .unwrap();
            let b = runtime
                .simulate_with_faults(&graph, &plan, &faults, &cfg)
                .unwrap();
            assert_eq!(a.report.total_us, b.report.total_us, "seed {seed}");
            assert_eq!(
                a.recovery.faults_injected, b.recovery.faults_injected,
                "seed {seed}"
            );
            assert!(a.report.total_us.is_finite() && a.report.total_us > 0.0);
        }
    }

    #[test]
    fn oom_pressure_shrinks_the_footprint_to_managed_arrays() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::Vgg16, ModelScale::Paper);
        let plan = gpu_plan(&graph, ExecutionConfig::baseline_gpu());
        // Reserve enough DRAM that the explicit-copy footprint no longer
        // fits but the all-managed one still does, forcing exactly one
        // shrink rather than an unrecoverable failure.
        let explicit_peak = crate::footprint::footprint(&graph, &plan)
            .unwrap()
            .peak_bytes;
        let mut managed_plan = plan.clone();
        managed_plan.config.memory_policy = MemoryPolicy::AllManaged;
        let managed_peak = crate::footprint::footprint(&graph, &managed_plan)
            .unwrap()
            .peak_bytes;
        assert!(managed_peak < explicit_peak);
        let budget = (managed_peak + explicit_peak) as f64 / 2.0;
        let mut faults = FaultPlan::none();
        faults.oom_reserve_fraction = 1.0 - budget / platform.dram_bytes as f64;
        let outcome = runtime
            .simulate_with_faults(&graph, &plan, &faults, &ResilienceConfig::default())
            .unwrap();
        assert!(outcome
            .recovery
            .events
            .iter()
            .any(|e| e.action == RecoveryAction::ShrinkFootprint));
    }
}
