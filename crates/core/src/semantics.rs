//! Semantic-aware memory management (paper Section IV-B).
//!
//! > "The effect of applying zero-copy technique is not always positive
//! > and is determined by data processing semantics. The memory should be
//! > managed according to the semantics."
//!
//! Each array in the inference gets a [`ArrayRole`] describing how it is
//! produced and consumed; the planner maps roles to allocation strategies:
//!
//! | role | producers/consumers | strategy |
//! |---|---|---|
//! | weights | written once at load, read by one processor | managed (zero-copy) |
//! | network input | written by CPU once, read downstream | managed, prefetched |
//! | chain activation | one producer, one consumer | managed |
//! | co-run output | **written by both processors** | explicit (regular, merged) |
//! | branch boundary | produced on one processor, consumed on the other | managed |
//!
//! The co-run-output row is the paper's key observation: write-sharing a
//! managed array triggers fine-grained consistency traffic ("massive page
//! faults and memory copies"), so those arrays revert to regular
//! allocation with an explicit merge.

use edgenn_nn::layer::LayerClass;
use edgenn_sim::{AllocStrategy, MemorySpec};
use serde::{Deserialize, Serialize};

/// How an array is produced and consumed during one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayRole {
    /// Model parameters: written at load time, read-only afterwards.
    Weights,
    /// The network input: written once by the CPU before inference.
    NetworkInput,
    /// An activation flowing along a chain: single producer, consumed by
    /// the next layer on the same or the other processor.
    ChainActivation,
    /// A layer output produced by *both* processors co-running one kernel
    /// (intra-kernel split): disjoint ranges written concurrently.
    CoRunOutput,
    /// A branch output crossing the fork-join boundary: produced entirely
    /// on one processor, consumed at the join (possibly elsewhere).
    BranchBoundary,
    /// The final network output, read back by the host.
    NetworkOutput,
}

/// One decision of the semantic planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryDecision {
    /// Chosen allocation strategy.
    pub strategy: AllocStrategy,
    /// Whether the runtime should issue a prefetch
    /// (`cudaMemPrefetchAsync`) before the consuming kernel.
    pub prefetch: bool,
}

/// Maps an array role to an allocation decision — the paper's rule table.
pub fn decide(role: ArrayRole) -> MemoryDecision {
    match role {
        ArrayRole::Weights => MemoryDecision {
            strategy: AllocStrategy::Managed,
            prefetch: true,
        },
        ArrayRole::NetworkInput => {
            // "If a GPU kernel uses the array long after the CPU has
            // modified the array, an explicit memory prefetching ... can
            // help prepare for the upcoming kernel" (Section IV-B).
            MemoryDecision {
                strategy: AllocStrategy::Managed,
                prefetch: true,
            }
        }
        ArrayRole::ChainActivation | ArrayRole::BranchBoundary | ArrayRole::NetworkOutput => {
            MemoryDecision {
                strategy: AllocStrategy::Managed,
                prefetch: false,
            }
        }
        ArrayRole::CoRunOutput => {
            // Written by both processors: regular arrays + explicit merge.
            MemoryDecision {
                strategy: AllocStrategy::Explicit,
                prefetch: false,
            }
        }
    }
}

/// Cost-check refinement: even for roles where zero-copy is admissible,
/// the adaptive tuner keeps the *regular* strategy when the managed-access
/// penalty on this layer exceeds the copies it saves.
///
/// This implements the paper's Figure 10 finding from the planning side:
/// pooling layers (pure memory traffic) can lose more to the managed
/// bandwidth penalty than they gain from skipping two boundary copies.
///
/// `kernel_memory_us` is the layer's memory-bound time at full bandwidth,
/// `boundary_bytes` the traffic the explicit strategy would copy.
pub fn refine_by_cost(
    base: MemoryDecision,
    memory: &MemorySpec,
    kernel_memory_us: f64,
    boundary_bytes: u64,
    class: LayerClass,
) -> MemoryDecision {
    if base.strategy == AllocStrategy::Explicit {
        return base;
    }
    // Managed penalty: the kernel's memory phase is stretched by 1/factor.
    let factor = memory.managed_bw_factor.max(1e-6);
    let penalty_us = kernel_memory_us * (1.0 / factor - 1.0);
    let copies_saved_us = 2.0 * memory.copy_time_us(boundary_bytes);
    // Structural layers (concat/flatten) are pure copies either way; keep
    // them managed — the explicit strategy would double-move their data.
    if class == LayerClass::Combine {
        return base;
    }
    if penalty_us > copies_saved_us {
        MemoryDecision {
            strategy: AllocStrategy::Explicit,
            prefetch: false,
        }
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_sim::platforms::jetson_agx_xavier;

    #[test]
    fn rule_table_matches_paper() {
        assert_eq!(decide(ArrayRole::Weights).strategy, AllocStrategy::Managed);
        assert!(decide(ArrayRole::Weights).prefetch);
        assert_eq!(
            decide(ArrayRole::NetworkInput).strategy,
            AllocStrategy::Managed
        );
        assert!(decide(ArrayRole::NetworkInput).prefetch);
        assert_eq!(
            decide(ArrayRole::ChainActivation).strategy,
            AllocStrategy::Managed
        );
        assert_eq!(
            decide(ArrayRole::CoRunOutput).strategy,
            AllocStrategy::Explicit,
            "write-shared arrays must be regular (paper Section IV-B)"
        );
        assert_eq!(
            decide(ArrayRole::BranchBoundary).strategy,
            AllocStrategy::Managed
        );
        assert_eq!(
            decide(ArrayRole::NetworkOutput).strategy,
            AllocStrategy::Managed
        );
    }

    #[test]
    fn cost_refinement_reverts_bandwidth_bound_layers() {
        let platform = jetson_agx_xavier();
        let base = decide(ArrayRole::ChainActivation);
        // A pooling layer moving lots of bytes with tiny boundary copies:
        // the managed penalty dwarfs the copy saving -> explicit.
        let refined = refine_by_cost(base, &platform.memory, 5_000.0, 10_000, LayerClass::Pool);
        assert_eq!(refined.strategy, AllocStrategy::Explicit);
        // A compute-bound conv layer with small memory phase and large
        // boundary traffic keeps zero-copy.
        let kept = refine_by_cost(base, &platform.memory, 50.0, 5_000_000, LayerClass::Conv);
        assert_eq!(kept.strategy, AllocStrategy::Managed);
    }

    #[test]
    fn cost_refinement_never_touches_explicit_or_combine() {
        let platform = jetson_agx_xavier();
        let explicit = decide(ArrayRole::CoRunOutput);
        assert_eq!(
            refine_by_cost(explicit, &platform.memory, 1e9, 0, LayerClass::Pool),
            explicit
        );
        let base = decide(ArrayRole::ChainActivation);
        let combine = refine_by_cost(base, &platform.memory, 1e9, 0, LayerClass::Combine);
        assert_eq!(combine.strategy, AllocStrategy::Managed);
    }
}
