//! Inter-kernel branch assignment for the non-chain part of a DAG
//! (paper Section IV-D, final paragraphs).
//!
//! For a fork-join region with two independent branches (the paper's
//! yellow/green chains in Figure 5), the tuner enumerates the assignment
//! strategies the paper lists and picks the minimum-total-time one:
//!
//! 1. branch A → CPU, branch B → GPU: `max(t_c(A), t_g(B)) + v(A)/s`
//! 2. branch B → CPU, branch A → GPU: `max(t_c(B), t_g(A)) + v(B)/s`
//! 3. everything → GPU: `t_g(A) + t_g(B)`
//! 4. everything → CPU: `t_c(A) + t_c(B)` (not listed in the paper's
//!    three options but strictly generalizes them; it wins only on
//!    launch-overhead-dominated graphs).
//!
//! where `v(X)` is the output volume of the branch executed on the CPU
//! (its result must be merged back through memory before the join, at the
//! platform's effective merge rate plus a fixed per-merge cost).

use serde::{Deserialize, Serialize};

/// Profiled cost of one branch of a fork-join region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchCost {
    /// Time to run the whole branch on the CPU (us).
    pub t_cpu_us: f64,
    /// Time to run the whole branch on the GPU (us).
    pub t_gpu_us: f64,
    /// Bytes the branch's final output occupies (merged at the join).
    pub output_bytes: u64,
}

/// Which processor each branch runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchAssignment {
    /// All branches on the GPU, sequentially.
    AllGpu,
    /// All branches on the CPU, sequentially.
    AllCpu,
    /// Branch `cpu_branch` on the CPU, the other(s) on the GPU,
    /// concurrently.
    Split {
        /// Index of the branch assigned to the CPU.
        cpu_branch: usize,
    },
}

/// The tuner's decision for one fork-join region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssignDecision {
    /// Chosen strategy.
    pub assignment: BranchAssignment,
    /// Predicted region time under the chosen strategy (us).
    pub t_total_us: f64,
    /// Predicted region time with everything on the GPU (us).
    pub t_gpu_only_us: f64,
}

impl AssignDecision {
    /// Predicted relative improvement over all-GPU execution.
    pub fn improvement(&self) -> f64 {
        if self.t_gpu_only_us <= 0.0 {
            return 0.0;
        }
        ((self.t_gpu_only_us - self.t_total_us) / self.t_gpu_only_us).max(0.0)
    }
}

/// Enumerates the strategies for a two-or-more-branch region and picks
/// the cheapest.
///
/// `copy_rate_gbps` is the CPU→GPU merge rate `s`; `sync_overhead_us` is
/// charged whenever both processors participate (they must synchronize
/// before the join, paper Figure 5: "CPU and GPU need to synchronize
/// before going on to the concatenation layer").
pub fn optimal_assignment(
    branches: &[BranchCost],
    copy_rate_gbps: f64,
    merge_fixed_us: f64,
    sync_overhead_us: f64,
) -> AssignDecision {
    let t_all_gpu: f64 = branches.iter().map(|b| b.t_gpu_us).sum();
    let t_all_cpu: f64 = branches.iter().map(|b| b.t_cpu_us).sum();

    let mut best = AssignDecision {
        assignment: BranchAssignment::AllGpu,
        t_total_us: t_all_gpu,
        t_gpu_only_us: t_all_gpu,
    };
    if t_all_cpu < best.t_total_us {
        best = AssignDecision {
            assignment: BranchAssignment::AllCpu,
            t_total_us: t_all_cpu,
            t_gpu_only_us: t_all_gpu,
        };
    }

    for (i, cpu_branch) in branches.iter().enumerate() {
        // Branch i on CPU; all others sequentially on the GPU.
        let t_gpu_side: f64 = branches
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, b)| b.t_gpu_us)
            .sum();
        let merge_us = if copy_rate_gbps > 0.0 {
            merge_fixed_us + cpu_branch.output_bytes as f64 / (copy_rate_gbps * 1e3)
        } else {
            f64::INFINITY
        };
        let t = cpu_branch.t_cpu_us.max(t_gpu_side) + merge_us + sync_overhead_us;
        if t < best.t_total_us {
            best = AssignDecision {
                assignment: BranchAssignment::Split { cpu_branch: i },
                t_total_us: t,
                t_gpu_only_us: t_all_gpu,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(t_cpu: f64, t_gpu: f64, bytes: u64) -> BranchCost {
        BranchCost {
            t_cpu_us: t_cpu,
            t_gpu_us: t_gpu,
            output_bytes: bytes,
        }
    }

    #[test]
    fn balanced_branches_split_across_processors() {
        // Two branches, each 100us on GPU, 120us on CPU, tiny outputs:
        // running one on each processor halves the region time.
        let branches = [branch(120.0, 100.0, 1000), branch(120.0, 100.0, 1000)];
        let d = optimal_assignment(&branches, 10.0, 0.0, 5.0);
        assert!(matches!(d.assignment, BranchAssignment::Split { .. }));
        assert!(d.t_total_us < 200.0 * 0.7, "t = {}", d.t_total_us);
        assert!(d.improvement() > 0.3);
    }

    #[test]
    fn slow_cpu_keeps_everything_on_gpu() {
        // CPU 20x slower: co-running one branch on the CPU would dominate.
        let branches = [branch(2000.0, 100.0, 1000), branch(2000.0, 100.0, 1000)];
        let d = optimal_assignment(&branches, 10.0, 0.0, 5.0);
        assert_eq!(d.assignment, BranchAssignment::AllGpu);
        assert_eq!(d.t_total_us, 200.0);
        assert_eq!(d.improvement(), 0.0);
    }

    #[test]
    fn huge_merge_volume_keeps_everything_on_gpu() {
        // 1 GB branch output at 10 GB/s = 100 ms of merge: never worth it.
        let branches = [
            branch(120.0, 100.0, 1_000_000_000),
            branch(120.0, 100.0, 1_000_000_000),
        ];
        let d = optimal_assignment(&branches, 10.0, 0.0, 5.0);
        assert_eq!(d.assignment, BranchAssignment::AllGpu);
    }

    #[test]
    fn launch_bound_graphs_move_to_cpu() {
        // Tiny branches where GPU launch overhead dominates.
        let branches = [branch(5.0, 50.0, 100), branch(5.0, 50.0, 100)];
        let d = optimal_assignment(&branches, 10.0, 0.0, 2.0);
        assert_eq!(d.assignment, BranchAssignment::AllCpu);
        assert_eq!(d.t_total_us, 10.0);
    }

    #[test]
    fn asymmetric_branches_put_cheap_one_on_cpu() {
        // The paper's formula: strategy picks min of
        // max(t_c1, t_g2)+v1/s vs max(t_c2, t_g1)+v2/s vs t_g1+t_g2.
        // Branch 0 small (fits CPU), branch 1 large (needs GPU).
        let branches = [branch(80.0, 60.0, 4000), branch(500.0, 90.0, 4000)];
        let d = optimal_assignment(&branches, 10.0, 0.0, 0.0);
        // Split with branch 0 on CPU: max(80, 90) + 0.4 = 90.4
        // Split with branch 1 on CPU: max(500, 60) + 0.4 = 500.4
        // AllGpu: 150. AllCpu: 580.
        assert_eq!(d.assignment, BranchAssignment::Split { cpu_branch: 0 });
        assert!((d.t_total_us - 90.4).abs() < 1e-9);
        assert!((d.t_gpu_only_us - 150.0).abs() < 1e-9);
    }

    #[test]
    fn empty_branch_costs_nothing_on_cpu() {
        // ResNet identity shortcut: zero-cost branch — putting it "on the
        // CPU" is free and lets the GPU run the conv branch undisturbed,
        // which equals AllGpu in time; the tie is broken toward AllGpu.
        let branches = [branch(0.0, 0.0, 0), branch(300.0, 100.0, 4000)];
        let d = optimal_assignment(&branches, 10.0, 0.0, 0.0);
        assert!((d.t_total_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn three_branch_regions_are_supported() {
        let branches = [
            branch(100.0, 90.0, 1000),
            branch(100.0, 90.0, 1000),
            branch(100.0, 90.0, 1000),
        ];
        let d = optimal_assignment(&branches, 10.0, 0.0, 0.0);
        // Best split: one branch on CPU (100) vs two on GPU (180) -> 180.1.
        assert!(matches!(d.assignment, BranchAssignment::Split { .. }));
        assert!(d.t_total_us < 270.0);
    }
}
