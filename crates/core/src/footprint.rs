//! Memory-footprint accounting for an execution plan.
//!
//! The paper's regular (explicit) strategy keeps **two copies** of an
//! array — "the array should be a regular CUDA array with two copies for
//! the CPU and the GPU separately" (Section IV-B) — while a managed array
//! exists once in unified memory. On a 32 GB Xavier that rarely binds,
//! but on smaller boards (and for VGG-scale activations) the distinction
//! matters; this module computes peak memory under a plan via liveness
//! analysis over the topological order.

use edgenn_nn::graph::{Graph, NodeId};
use edgenn_sim::AllocStrategy;
use serde::{Deserialize, Serialize};

use crate::plan::{ExecutionPlan, MemoryPolicy, Precision};
use crate::Result;

/// Peak-memory breakdown of one plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// Model parameters resident for the whole run: the f32 weights and
    /// biases, plus — under an [`Precision::Int8`] plan — each
    /// int8-capable layer's cached quantization sidecar (one code byte
    /// per weight element and the per-output-channel scale/row-sum
    /// tables). The f32 master weights stay resident either way: they
    /// seed quantization and serve the layers without int8 kernels.
    pub weight_bytes: u64,
    /// Peak bytes of live activations, counting explicit arrays twice
    /// (host copy + device copy) and managed arrays once.
    pub peak_activation_bytes: u64,
    /// Peak total (weights + activations).
    pub peak_bytes: u64,
}

impl Footprint {
    /// Peak total in mebibytes.
    pub fn peak_mib(&self) -> f64 {
        self.peak_bytes as f64 / (1 << 20) as f64
    }
}

/// Bytes an array occupies under its allocation strategy: explicit arrays
/// are duplicated on host and device; managed arrays exist once.
fn array_bytes(elems: usize, strategy: AllocStrategy) -> u64 {
    let one = (elems * 4) as u64;
    match strategy {
        AllocStrategy::Explicit => 2 * one,
        AllocStrategy::Managed => one,
    }
}

/// Bytes of the quantization sidecar one node's layer caches when a
/// plan runs int8 kernels: one i8 code per weight element (the bias
/// stays f32 and is consumed by the requantize epilogue directly) plus
/// an f32 scale and an i32 row sum per output channel.
fn int8_sidecar_bytes(graph: &Graph, id: NodeId) -> Result<u64> {
    let node = graph.node(id)?;
    let layer = node.layer();
    if !layer.int8_ready() {
        return Ok(0);
    }
    let shapes: Vec<_> = node
        .inputs()
        .iter()
        .map(|i| Ok(graph.node(*i)?.output_shape()))
        .collect::<Result<_>>()?;
    // workload.weight_bytes counts weights + bias at 4 bytes each; the
    // bias length equals the output-unit count for conv/dense.
    let param_elems = layer.workload(&shapes)?.weight_bytes / 4;
    let units = layer.partition_units(&shapes)? as u64;
    Ok((param_elems - units) + units * 8)
}

/// Computes the peak memory footprint of executing `plan` over `graph`.
///
/// Liveness: a node's output array is allocated when the node executes
/// and freed after its last consumer executes (the network output lives
/// to the end). Weights are resident throughout.
///
/// # Errors
/// Fails on plan/graph mismatches.
pub fn footprint(graph: &Graph, plan: &ExecutionPlan) -> Result<Footprint> {
    plan.validate(graph)?;
    if graph.is_empty() {
        // No nodes, no arrays: the empty footprint, not an index panic on
        // the missing output node.
        return Ok(Footprint {
            weight_bytes: 0,
            peak_activation_bytes: 0,
            peak_bytes: 0,
        });
    }
    let mut weight_bytes = graph.param_bytes();
    if plan.config.precision == Precision::Int8 {
        for id in graph.topo_order() {
            weight_bytes += int8_sidecar_bytes(graph, id)?;
        }
    }

    // Last consumer of each node's output.
    let mut last_use: Vec<usize> = (0..graph.len()).collect();
    for id in graph.topo_order() {
        let node = graph.node(id)?;
        for input in node.inputs() {
            last_use[input.index()] = last_use[input.index()].max(id.index());
        }
    }
    let output = graph.output_id().index();
    last_use[output] = graph.len(); // the result is read back at the end

    let strategy_of = |id: NodeId| -> AllocStrategy {
        match plan.config.memory_policy {
            MemoryPolicy::AllExplicit => AllocStrategy::Explicit,
            MemoryPolicy::AllManaged => AllocStrategy::Managed,
            MemoryPolicy::SemanticAware => plan.nodes[id.index()].output_alloc,
        }
    };

    let mut live = 0u64;
    let mut peak = 0u64;
    for id in graph.topo_order() {
        let node = graph.node(id)?;
        live += array_bytes(node.output_shape().num_elements(), strategy_of(id));
        peak = peak.max(live);
        // Free arrays whose last consumer is this node.
        for (idx, &last) in last_use.iter().enumerate() {
            if last == id.index() && idx != id.index() {
                let freed = graph.node(NodeId(idx))?;
                live = live.saturating_sub(array_bytes(
                    freed.output_shape().num_elements(),
                    strategy_of(NodeId(idx)),
                ));
            }
        }
    }

    Ok(Footprint {
        weight_bytes,
        peak_activation_bytes: peak,
        peak_bytes: weight_bytes + peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ExecutionConfig, NodePlan};
    use crate::runtime::Runtime;
    use crate::tuner::Tuner;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::jetson_agx_xavier;

    fn plan_for(graph: &Graph, config: ExecutionConfig) -> ExecutionPlan {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(graph, &runtime).unwrap();
        tuner.plan(graph, &runtime, config).unwrap()
    }

    #[test]
    fn explicit_arrays_double_activation_memory() {
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let explicit =
            footprint(&graph, &plan_for(&graph, ExecutionConfig::baseline_gpu())).unwrap();
        let mut managed_cfg = ExecutionConfig::baseline_gpu();
        managed_cfg.memory_policy = MemoryPolicy::AllManaged;
        let managed = footprint(&graph, &plan_for(&graph, managed_cfg)).unwrap();
        assert_eq!(explicit.weight_bytes, managed.weight_bytes);
        // "two copies for the CPU and the GPU separately": exactly 2x.
        assert_eq!(
            explicit.peak_activation_bytes,
            2 * managed.peak_activation_bytes
        );
        assert!(explicit.peak_bytes > managed.peak_bytes);
    }

    #[test]
    fn semantic_policy_sits_between_the_pure_policies() {
        let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
        let explicit =
            footprint(&graph, &plan_for(&graph, ExecutionConfig::baseline_gpu())).unwrap();
        let semantic = footprint(&graph, &plan_for(&graph, ExecutionConfig::edgenn())).unwrap();
        let mut managed_cfg = ExecutionConfig::baseline_gpu();
        managed_cfg.memory_policy = MemoryPolicy::AllManaged;
        let managed = footprint(&graph, &plan_for(&graph, managed_cfg)).unwrap();
        assert!(semantic.peak_activation_bytes <= explicit.peak_activation_bytes);
        assert!(semantic.peak_activation_bytes >= managed.peak_activation_bytes);
    }

    #[test]
    fn paper_scale_models_fit_the_xavier() {
        // The Xavier carries 32 GB; every benchmark must fit with room to
        // spare, and VGG must dominate the suite.
        let mut peaks = Vec::new();
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Paper);
            let fp = footprint(&graph, &plan_for(&graph, ExecutionConfig::edgenn())).unwrap();
            assert!(
                fp.peak_mib() < 32.0 * 1024.0,
                "{kind}: {} MiB",
                fp.peak_mib()
            );
            peaks.push((kind, fp.peak_bytes));
        }
        let max = peaks.iter().max_by_key(|(_, b)| *b).unwrap();
        assert_eq!(max.0, ModelKind::Vgg16, "VGG-16 should be the heaviest");
    }

    #[test]
    fn liveness_frees_dead_activations() {
        // Peak activations must be far below the sum of all layer outputs
        // for a deep chain (otherwise liveness is broken).
        let graph = build(ModelKind::Vgg16, ModelScale::Paper);
        let fp = footprint(&graph, &plan_for(&graph, ExecutionConfig::edgenn())).unwrap();
        let total_outputs: u64 = graph
            .topo_order()
            .map(|id| (graph.node(id).unwrap().output_shape().num_elements() * 4) as u64)
            .sum();
        assert!(
            fp.peak_activation_bytes < total_outputs / 4,
            "peak {} should be far below the sum {}",
            fp.peak_activation_bytes,
            total_outputs
        );
    }

    #[test]
    fn int8_plans_account_the_quantization_sidecar_exactly() {
        let graph = build(ModelKind::AlexNet, ModelScale::Tiny);
        let f32_fp = footprint(&graph, &plan_for(&graph, ExecutionConfig::edgenn())).unwrap();
        let int8_fp = footprint(&graph, &plan_for(&graph, ExecutionConfig::edgenn_int8())).unwrap();
        // Activations stay f32 between nodes in both precisions.
        assert_eq!(f32_fp.peak_activation_bytes, int8_fp.peak_activation_bytes);
        let expected_sidecar: u64 = graph
            .topo_order()
            .map(|id| int8_sidecar_bytes(&graph, id).unwrap())
            .sum();
        assert!(expected_sidecar > 0, "conv/dense layers carry a sidecar");
        assert_eq!(int8_fp.weight_bytes, f32_fp.weight_bytes + expected_sidecar);
        // The sidecar is bounded by a quarter of the f32 parameters plus
        // the per-channel tables — far from doubling the weights.
        assert!(int8_fp.weight_bytes < f32_fp.weight_bytes + f32_fp.weight_bytes / 3);
    }

    #[test]
    fn footprint_requires_a_matching_plan() {
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let other = build(ModelKind::AlexNet, ModelScale::Paper);
        let plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); other.len()],
        };
        assert!(footprint(&graph, &plan).is_err());
    }
}
