//! Stage-pipelined execution for throughput serving.
//!
//! EdgeNN's hybrid plans minimize single-inference *latency*. For a
//! saturated request stream, a different strategy can win: split the
//! network into a CPU stage and a GPU stage at one cut point, so request
//! `k+1`'s front stage overlaps request `k`'s back stage — the pipelined
//! data-parallel scheduling of DART (the paper's reference \[88\], cited
//! as the multi-DNN real-time line of work). Steady-state throughput is
//! then bounded by the *slower stage*, not the end-to-end latency.
//!
//! The planner sweeps every cut position and both stage orientations,
//! picking the one with the best predicted bottleneck time.

use edgenn_nn::graph::Graph;
use edgenn_obs::SinkEvent;
use edgenn_sim::AllocStrategy;
use serde::{Deserialize, Serialize};

use crate::plan::{Assignment, ExecutionConfig, ExecutionPlan, NodePlan};
use crate::runtime::Runtime;
use crate::tuner::Tuner;
use crate::{CoreError, Result};

/// A chosen pipeline split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// The executable plan (front stage on one processor, back on the other).
    pub plan: ExecutionPlan,
    /// Index of the first node of the back stage.
    pub cut: usize,
    /// True when the front stage runs on the CPU.
    pub cpu_first: bool,
    /// Predicted bottleneck stage time (us) — the steady-state
    /// inter-completion gap.
    pub bottleneck_us: f64,
}

/// Finds the throughput-optimal two-stage pipeline split of a chain-style
/// execution order.
///
/// # Errors
/// Fails when the platform has no GPU or on profiling failures.
pub fn plan_pipeline(
    graph: &Graph,
    runtime: &Runtime<'_>,
    config: ExecutionConfig,
) -> Result<PipelinePlan> {
    if !runtime.platform().has_gpu() {
        return Err(CoreError::NoGpu {
            platform: runtime.platform().name.clone(),
        });
    }
    let tuner = Tuner::new(graph, runtime)?;
    let stats = tuner.stats();

    // Prefix sums of per-node solo times in topological order.
    let n = graph.len();
    let mut cpu_prefix = vec![0.0f64; n + 1];
    let mut gpu_prefix = vec![0.0f64; n + 1];
    for (i, stat) in stats.iter().enumerate() {
        cpu_prefix[i + 1] = cpu_prefix[i] + stat.t_cpu_us;
        gpu_prefix[i + 1] = gpu_prefix[i] + stat.t_gpu_us;
    }

    let mut best: Option<(usize, bool, f64)> = None;
    for cut in 1..n {
        // Front = nodes [1, cut), back = [cut, n).
        let candidates = [
            // CPU front, GPU back.
            (
                true,
                (cpu_prefix[cut] - cpu_prefix[1]),
                gpu_prefix[n] - gpu_prefix[cut],
            ),
            // GPU front, CPU back.
            (
                false,
                (gpu_prefix[cut] - gpu_prefix[1]),
                cpu_prefix[n] - cpu_prefix[cut],
            ),
        ];
        let mut cut_best = f64::INFINITY;
        for (cpu_first, front, back) in candidates {
            let bottleneck = front.max(back);
            cut_best = cut_best.min(bottleneck);
            if best.is_none_or(|(_, _, b)| bottleneck < b) {
                best = Some((cut, cpu_first, bottleneck));
            }
        }
        if let Some(sink) = runtime.observer() {
            // The sweep itself, as a counter track over cut positions.
            sink.emit(SinkEvent::Counter {
                track: "pipeline_bottleneck_us".to_string(),
                t_us: cut as f64,
                value: cut_best,
            });
        }
    }
    let (cut, cpu_first, bottleneck_us) = best.ok_or_else(|| CoreError::Internal {
        reason: "graph has no layers".to_string(),
    })?;
    if let Some(sink) = runtime.observer() {
        sink.emit(SinkEvent::Instant {
            category: "pipeline",
            label: format!(
                "cut at node {cut} ({} front), predicted bottleneck {bottleneck_us:.1} us",
                if cpu_first { "cpu" } else { "gpu" }
            ),
            t_us: cut as f64,
        });
    }

    let mut nodes = vec![NodePlan::gpu_explicit(); n];
    for (idx, node) in nodes.iter_mut().enumerate() {
        let in_front = idx < cut;
        let on_cpu = in_front == cpu_first;
        node.assignment = if on_cpu {
            Assignment::Cpu
        } else {
            Assignment::Gpu
        };
        // Zero-copy hand-off between the stages.
        node.output_alloc = AllocStrategy::Managed;
    }
    let plan = ExecutionPlan { config, nodes };
    plan.validate(graph)?;
    Ok(PipelinePlan {
        plan,
        cut,
        cpu_first,
        bottleneck_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use edgenn_sim::platforms::{jetson_agx_xavier, raspberry_pi_4};

    #[test]
    fn pipeline_beats_latency_plan_on_saturated_streams() {
        // AlexNet: heavy conv front (GPU) + fc back (CPU-capable) is the
        // classic pipeline case.
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let mut config = ExecutionConfig::edgenn();
        config.memory_policy = crate::plan::MemoryPolicy::SemanticAware;

        let latency_plan = {
            let tuner = Tuner::new(&graph, &runtime).unwrap();
            tuner.plan(&graph, &runtime, config).unwrap()
        };
        let pipeline = plan_pipeline(&graph, &runtime, config).unwrap();
        assert!(pipeline.cut > 0 && pipeline.cut < graph.len());

        let requests = 16;
        let latency_stream = runtime
            .simulate_stream(&graph, &latency_plan, requests)
            .unwrap();
        let pipeline_stream = runtime
            .simulate_stream(&graph, &pipeline.plan, requests)
            .unwrap();

        // The pipelined stream overlaps stages across requests: its
        // steady-state completion gap must beat its own single-inference
        // latency, demonstrating real pipelining.
        let single = runtime.simulate(&graph, &pipeline.plan).unwrap();
        assert!(
            pipeline_stream.inter_completion_us() < single.total_us * 0.95,
            "no overlap: gap {} vs single {}",
            pipeline_stream.inter_completion_us(),
            single.total_us
        );
        // And its throughput should at least approach the latency plan's
        // (it wins when the stage balance is good; never collapses).
        assert!(
            pipeline_stream.throughput_per_s > latency_stream.throughput_per_s * 0.5,
            "pipeline {} vs latency-plan {}",
            pipeline_stream.throughput_per_s,
            latency_stream.throughput_per_s
        );
    }

    #[test]
    fn pipeline_prediction_matches_simulation_order_of_magnitude() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::Fcnn, ModelScale::Paper);
        let pipeline = plan_pipeline(&graph, &runtime, ExecutionConfig::edgenn()).unwrap();
        let stream = runtime.simulate_stream(&graph, &pipeline.plan, 24).unwrap();
        let gap = stream.inter_completion_us();
        assert!(
            gap < pipeline.bottleneck_us * 3.0 && gap > pipeline.bottleneck_us * 0.3,
            "prediction {} vs measured {}",
            pipeline.bottleneck_us,
            gap
        );
    }

    #[test]
    fn pipeline_planning_reports_its_sweep_and_choice() {
        use edgenn_obs::Recorder;
        use std::sync::Arc;

        let platform = jetson_agx_xavier();
        let recorder = Recorder::new();
        let runtime = Runtime::with_observer(&platform, Arc::new(recorder.clone()));
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let pipeline = plan_pipeline(&graph, &runtime, ExecutionConfig::edgenn()).unwrap();

        // One bottleneck sample per candidate cut position.
        let sweep: Vec<_> = recorder
            .counter_samples()
            .into_iter()
            .filter(|s| s.track == "pipeline_bottleneck_us")
            .collect();
        assert_eq!(sweep.len(), graph.len() - 1);
        // The chosen cut is the sweep's argmin.
        let min = sweep.iter().map(|s| s.value).fold(f64::INFINITY, f64::min);
        assert!((min - pipeline.bottleneck_us).abs() < 1e-9);
        // And the choice is marked as an instant event.
        assert_eq!(
            recorder
                .metrics()
                .counter_value("edgenn_pipeline_events_total"),
            Some(1.0)
        );
    }

    #[test]
    fn pipeline_requires_a_gpu() {
        let platform = raspberry_pi_4();
        let runtime = Runtime::new(&platform);
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        assert!(matches!(
            plan_pipeline(&graph, &runtime, ExecutionConfig::edgenn()),
            Err(CoreError::NoGpu { .. })
        ));
    }

    #[test]
    fn pipeline_plans_execute_losslessly() {
        use crate::runtime::functional;
        use edgenn_tensor::Tensor;
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        for kind in [ModelKind::AlexNet, ModelKind::Vgg16] {
            let graph = build(kind, ModelScale::Tiny);
            let pipeline = plan_pipeline(&graph, &runtime, ExecutionConfig::edgenn()).unwrap();
            let input = Tensor::random(graph.input_shape().dims(), 1.0, 3);
            let reference = graph.forward(&input).unwrap();
            let outcome = functional::execute(&graph, &pipeline.plan, &input).unwrap();
            assert!(outcome.output.approx_eq(&reference, 1e-4), "{kind}");
        }
    }
}
