//! Execution plans: the tuner's output, consumed by the runtime.

use edgenn_nn::graph::Graph;
use edgenn_sim::AllocStrategy;
use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// Which memory-management policy the planner applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Every array regular (`cudaMalloc` + explicit copies) — the paper's
    /// "direct execution of the original programs" baseline.
    AllExplicit,
    /// Every array managed (naive zero-copy everywhere).
    AllManaged,
    /// The paper's semantic-aware policy: per-array decision by role, with
    /// the adaptive cost refinement.
    SemanticAware,
}

/// What the tuner optimizes for.
///
/// The paper tunes for latency; the energy objective is this
/// reproduction's extension, motivated by the paper's own emphasis on
/// performance-per-watt (Figures 7 and 13): co-running burns both
/// processors, so when the latency gain is marginal an energy-optimal
/// plan keeps one of them idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneObjective {
    /// Minimize end-to-end latency (the paper's objective).
    Latency,
    /// Minimize energy per inference (latency x average power).
    Energy,
}

/// Numeric precision the functional runtime computes in.
///
/// Plans are precision-agnostic (the partition optimum depends only on
/// relative throughput); the executor consumes this field to pick the
/// kernel family. Int8 runs every int8-capable layer through the
/// quantized microkernels ([`edgenn_nn::layer::Layer::forward_partial_int8`])
/// with f32 activations *between* nodes, so partition merges and
/// layer-boundary semantics are unchanged. Layers without int8 kernels
/// (pools, softmax, element-wise) stay f32, as does input-channel
/// splitting — partial *sums* need f32 accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit float kernels everywhere (reference path).
    F32,
    /// 8-bit integer GEMM/dot kernels with fused requantize epilogues on
    /// every int8-capable layer.
    Int8,
}

impl Precision {
    /// Bytes per stored weight element under this precision (int8 packs
    /// quantized codes at one byte per element).
    pub fn weight_element_bytes(self) -> u64 {
        match self {
            Precision::F32 => 4,
            Precision::Int8 => 1,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::F32 => write!(f, "f32"),
            Precision::Int8 => write!(f, "int8"),
        }
    }
}

/// Which co-running capability the planner may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HybridMode {
    /// GPU computes everything (the paper's integrated-GPU baseline).
    GpuOnly,
    /// CPU computes everything (the edge-CPU baselines of Figure 6).
    CpuOnly,
    /// Only whole independent branches may move to the CPU — the
    /// state-of-the-art comparator of Section V-F (FineStream-style).
    InterKernelOnly,
    /// Only intra-kernel splitting of chain layers (ablation).
    IntraKernelOnly,
    /// Full EdgeNN: inter- and intra-kernel co-running.
    InterAndIntra,
}

/// Tuning knobs for plan construction and simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Memory policy.
    pub memory_policy: MemoryPolicy,
    /// Hybrid-execution mode.
    pub hybrid: HybridMode,
    /// Tuning objective.
    pub objective: TuneObjective,
    /// Fixed co-run synchronization overhead (us): kernel-completion wait
    /// plus worker join. Charged whenever both processors cooperate.
    pub sync_overhead_us: f64,
    /// Fraction of layer boundaries at which the naive
    /// ([`MemoryPolicy::AllExplicit`]) host-orchestrated programs round-trip
    /// activations through host memory (H2D before each GPU kernel, D2H
    /// after). calibrated: the paper's original benchmark programs are
    /// per-layer host-orchestrated CUDA; 1.0 would round-trip every
    /// boundary, 0.0 none. Ignored by the residency-tracked policies.
    pub host_roundtrip_fraction: f64,
    /// Deterministic execution-time jitter amplitude in [0, 1): models
    /// run-to-run variance so the adaptive tuner has something real to
    /// adapt to. 0 disables jitter.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
    /// Numeric precision of the functional kernels.
    pub precision: Precision,
}

impl ExecutionConfig {
    /// Full EdgeNN configuration.
    pub fn edgenn() -> Self {
        Self {
            memory_policy: MemoryPolicy::SemanticAware,
            hybrid: HybridMode::InterAndIntra,
            objective: TuneObjective::Latency,
            sync_overhead_us: 10.0,
            host_roundtrip_fraction: 0.35,
            jitter: 0.0,
            jitter_seed: 0,
            precision: Precision::F32,
        }
    }

    /// Full EdgeNN with int8 quantized kernels on every capable layer.
    pub fn edgenn_int8() -> Self {
        Self {
            precision: Precision::Int8,
            ..Self::edgenn()
        }
    }

    /// The paper's baseline: original programs, GPU only, explicit memory.
    pub fn baseline_gpu() -> Self {
        Self {
            memory_policy: MemoryPolicy::AllExplicit,
            hybrid: HybridMode::GpuOnly,
            ..Self::edgenn()
        }
    }

    /// CPU-only execution (edge-CPU platforms).
    pub fn cpu_only() -> Self {
        Self {
            memory_policy: MemoryPolicy::AllExplicit,
            hybrid: HybridMode::CpuOnly,
            ..Self::edgenn()
        }
    }

    /// Memory-management-only ablation (zero-copy without co-running).
    pub fn memory_only() -> Self {
        Self {
            memory_policy: MemoryPolicy::SemanticAware,
            hybrid: HybridMode::GpuOnly,
            ..Self::edgenn()
        }
    }

    /// Hybrid-execution-only ablation (co-running without zero-copy).
    pub fn hybrid_only() -> Self {
        Self {
            memory_policy: MemoryPolicy::AllExplicit,
            hybrid: HybridMode::InterAndIntra,
            ..Self::edgenn()
        }
    }

    /// EdgeNN tuned for energy per inference instead of latency
    /// (reproduction extension).
    pub fn edgenn_energy_aware() -> Self {
        Self {
            objective: TuneObjective::Energy,
            ..Self::edgenn()
        }
    }

    /// The Section V-F comparator: inter-kernel co-running only.
    pub fn inter_kernel_only() -> Self {
        Self {
            memory_policy: MemoryPolicy::SemanticAware,
            hybrid: HybridMode::InterKernelOnly,
            ..Self::edgenn()
        }
    }
}

/// Where one node's computation runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Assignment {
    /// Entirely on the GPU.
    Gpu,
    /// Entirely on the CPU.
    Cpu,
    /// Intra-kernel co-run by *output* units: the CPU computes
    /// `cpu_fraction` of the output channels/neurons, the GPU the rest,
    /// merged by concatenation.
    Split {
        /// CPU proportion `p_cpu ∈ (0, 1)`.
        cpu_fraction: f64,
    },
    /// Intra-kernel co-run by *input* channels (the paper's Section IV-D
    /// convolution split): each processor convolves a channel subset and
    /// produces a full-size partial sum, merged by element-wise addition.
    SplitInput {
        /// CPU proportion of the input channels, in `(0, 1)`.
        cpu_fraction: f64,
    },
}

impl Assignment {
    /// True when both processors participate.
    pub fn is_corun(&self) -> bool {
        matches!(
            self,
            Assignment::Split { .. } | Assignment::SplitInput { .. }
        )
    }
}

/// Per-node decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePlan {
    /// Where the node computes.
    pub assignment: Assignment,
    /// Allocation strategy of the node's output array.
    pub output_alloc: AllocStrategy,
    /// Whether the node's inputs are prefetched to the consuming
    /// processor ahead of the kernel.
    pub prefetch_inputs: bool,
}

impl NodePlan {
    /// A GPU-resident node with explicit output (baseline default).
    pub fn gpu_explicit() -> Self {
        Self {
            assignment: Assignment::Gpu,
            output_alloc: AllocStrategy::Explicit,
            prefetch_inputs: false,
        }
    }
}

/// A complete plan for one graph: one [`NodePlan`] per node, in node-id
/// order, plus the config that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// The configuration the plan was built under.
    pub config: ExecutionConfig,
    /// Per-node decisions, indexed by `NodeId::index()`.
    pub nodes: Vec<NodePlan>,
}

impl ExecutionPlan {
    /// Validates that the plan covers `graph` exactly.
    ///
    /// # Errors
    /// Returns [`CoreError::PlanMismatch`] when node counts differ or a
    /// split fraction is out of range.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        if self.nodes.len() != graph.len() {
            return Err(CoreError::PlanMismatch {
                reason: format!(
                    "plan has {} node entries, graph '{}' has {}",
                    self.nodes.len(),
                    graph.name(),
                    graph.len()
                ),
            });
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Assignment::Split { cpu_fraction } | Assignment::SplitInput { cpu_fraction } =
                node.assignment
            {
                if !(0.0..=1.0).contains(&cpu_fraction) || cpu_fraction == 0.0 {
                    return Err(CoreError::PlanMismatch {
                        reason: format!("node {idx} has invalid split fraction {cpu_fraction}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of nodes co-run by both processors.
    pub fn corun_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.assignment.is_corun())
            .count()
    }

    /// Number of nodes whose output uses zero-copy.
    pub fn managed_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.output_alloc == AllocStrategy::Managed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_nn::models::{build, ModelKind, ModelScale};

    #[test]
    fn preset_configs_encode_paper_modes() {
        let e = ExecutionConfig::edgenn();
        assert_eq!(e.memory_policy, MemoryPolicy::SemanticAware);
        assert_eq!(e.hybrid, HybridMode::InterAndIntra);
        let b = ExecutionConfig::baseline_gpu();
        assert_eq!(b.memory_policy, MemoryPolicy::AllExplicit);
        assert_eq!(b.hybrid, HybridMode::GpuOnly);
        assert_eq!(ExecutionConfig::memory_only().hybrid, HybridMode::GpuOnly);
        assert_eq!(
            ExecutionConfig::hybrid_only().memory_policy,
            MemoryPolicy::AllExplicit
        );
        assert_eq!(
            ExecutionConfig::inter_kernel_only().hybrid,
            HybridMode::InterKernelOnly
        );
        assert_eq!(e.precision, Precision::F32);
        let q = ExecutionConfig::edgenn_int8();
        assert_eq!(q.precision, Precision::Int8);
        assert_eq!(q.hybrid, HybridMode::InterAndIntra);
        assert_eq!(Precision::F32.weight_element_bytes(), 4);
        assert_eq!(Precision::Int8.weight_element_bytes(), 1);
        assert_eq!(Precision::Int8.to_string(), "int8");
    }

    #[test]
    fn validate_checks_length_and_fractions() {
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let mut plan = ExecutionPlan {
            config: ExecutionConfig::baseline_gpu(),
            nodes: vec![NodePlan::gpu_explicit(); graph.len()],
        };
        assert!(plan.validate(&graph).is_ok());

        plan.nodes.pop();
        assert!(matches!(
            plan.validate(&graph),
            Err(CoreError::PlanMismatch { .. })
        ));

        plan.nodes.push(NodePlan {
            assignment: Assignment::Split { cpu_fraction: 1.5 },
            output_alloc: AllocStrategy::Explicit,
            prefetch_inputs: false,
        });
        assert!(matches!(
            plan.validate(&graph),
            Err(CoreError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn plan_counters() {
        let plan = ExecutionPlan {
            config: ExecutionConfig::edgenn(),
            nodes: vec![
                NodePlan::gpu_explicit(),
                NodePlan {
                    assignment: Assignment::Split { cpu_fraction: 0.3 },
                    output_alloc: AllocStrategy::Explicit,
                    prefetch_inputs: false,
                },
                NodePlan {
                    assignment: Assignment::Cpu,
                    output_alloc: AllocStrategy::Managed,
                    prefetch_inputs: true,
                },
            ],
        };
        assert_eq!(plan.corun_count(), 1);
        assert_eq!(plan.managed_count(), 1);
        assert!(Assignment::Split { cpu_fraction: 0.3 }.is_corun());
        assert!(!Assignment::Gpu.is_corun());
    }
}
