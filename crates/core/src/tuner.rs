//! The fine-grained adaptive inference tuning approach (paper
//! Section IV-D).
//!
//! The tuner:
//! 1. partitions the network into sub-tasks by layers and builds the DAG
//!    (delegated to `edgenn-nn`'s graph structure decomposition);
//! 2. **profiles** each sub-task on both processors ("we first use the CPU
//!    and the GPU to calculate the whole layer separately and record
//!    their execution time");
//! 3. applies the closed-form intra-kernel optimum (Equations 1-4) to
//!    chain layers and enumerates inter-kernel branch assignments for
//!    fork-join regions;
//! 4. chooses each array's allocation strategy semantically, with the
//!    cost refinement;
//! 5. **adapts**: each execution feeds measured times back into
//!    exponential moving averages, and the plan is regenerated, so the
//!    strategy tracks the device's real behaviour across runs.

use edgenn_nn::graph::{Graph, NodeId, Segment};
use edgenn_nn::layer::LayerClass;
use edgenn_obs::SinkEvent;
use edgenn_sim::AllocStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::assign::{optimal_assignment, BranchAssignment, BranchCost};
use crate::partition::{optimal_partition, PartitionInputs};
use crate::plan::{
    Assignment, ExecutionConfig, ExecutionPlan, HybridMode, MemoryPolicy, NodePlan, TuneObjective,
};
use crate::runtime::{kernel_desc, Runtime};
use crate::semantics::{decide, refine_by_cost, ArrayRole};
use crate::Result;

/// Execution context of a solo (non-co-run) kernel under a memory policy's
/// GPU-side bandwidth factor.
fn solo_policy_ctx(bw_factor: f64) -> edgenn_sim::processor::ExecutionContext {
    edgenn_sim::processor::ExecutionContext {
        bandwidth_factor: bw_factor,
        contention_factor: 1.0,
        compute_factor: 1.0,
    }
}

/// Profiled per-node statistics (exponential moving averages).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeStats {
    /// EMA of the CPU solo time (us).
    pub t_cpu_us: f64,
    /// EMA of the GPU solo time (us).
    pub t_gpu_us: f64,
    /// Number of profiling observations folded in.
    pub samples: u32,
}

/// Residency of a chain's incoming data when the DP starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainStart {
    /// The network input: written by the host.
    Host,
    /// A fork-join join point: both processors just synchronized.
    Synced,
}

/// The inputs the tuner fed to the Equation (1)-(4) closed form for one
/// node: contended solo times and the merge model. Kept for decision
/// provenance so an `explain` consumer can re-derive the optimum.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EqInputs {
    /// CPU time under co-run contention (us) — Eq. (1)'s CPU term.
    pub t_cpu_corun_us: f64,
    /// GPU time under co-run contention and the policy's zero-copy
    /// bandwidth penalty (us) — Eq. (1)'s GPU term.
    pub t_gpu_corun_us: f64,
    /// Output bytes an explicit merge would copy — Eq. (3)'s volume.
    pub output_bytes: u64,
    /// Explicit copy bandwidth (GB/s) of the merge model.
    pub copy_rate_gbps: f64,
    /// Per-split synchronization overhead (us).
    pub sync_overhead_us: f64,
}

/// One candidate the tuner priced for a node, kept for provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateCost {
    /// Candidate label ("cpu", "gpu", "output split 40% cpu", ...).
    pub label: String,
    /// Predicted execution time (us) under the active memory policy.
    pub predicted_us: f64,
    /// True for the candidate the plan settled on.
    pub chosen: bool,
}

/// Per-node candidate costs considered by the chain DP.
#[derive(Debug, Clone)]
struct NodeCandidates {
    /// GPU solo time under the active memory policy (us).
    t_gpu_us: f64,
    /// CPU solo time (us).
    t_cpu_us: f64,
    /// Intra-kernel co-run candidate, when the layer is splittable and
    /// Eq. (4) yields an interior optimum.
    split: Option<SplitCandidate>,
    /// The closed-form inputs, when the layer was splittable at all.
    eq: Option<EqInputs>,
    /// Activation bytes the node reads (handoff sizing).
    input_bytes: u64,
}

/// One viable intra-kernel split.
#[derive(Debug, Clone)]
struct SplitCandidate {
    cpu_fraction: f64,
    t_total_us: f64,
    alloc: AllocStrategy,
    /// True for the input-channel (partial-sum) split, false for the
    /// output-unit split.
    by_input: bool,
}

/// One row of a plan explanation: what the tuner measured and chose for
/// a node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeExplanation {
    /// Node id.
    pub node: usize,
    /// Layer name.
    pub name: String,
    /// Layer class tag.
    pub class: String,
    /// Profiled CPU solo time (EMA, us).
    pub t_cpu_us: f64,
    /// Profiled GPU solo time (EMA, us).
    pub t_gpu_us: f64,
    /// The assignment the plan settled on.
    pub assignment: Assignment,
    /// The output allocation strategy.
    pub output_alloc: AllocStrategy,
    /// Predicted time of the chosen candidate (us).
    pub predicted_us: f64,
    /// Every candidate the tuner priced, including the rejected ones.
    pub candidates: Vec<CandidateCost>,
    /// The Eq. (1)-(4) inputs, when the layer was splittable.
    pub eq_inputs: Option<EqInputs>,
    /// One-line justification of the decision.
    pub rationale: String,
}

/// The adaptive tuner.
#[derive(Debug, Clone)]
pub struct Tuner {
    stats: Vec<NodeStats>,
    /// EMA smoothing factor in (0, 1]: weight of the newest observation.
    alpha: f64,
}

impl Tuner {
    /// Creates a tuner and takes the initial profiling measurements
    /// (jitter-free).
    ///
    /// # Errors
    /// Propagates workload failures from profiling.
    pub fn new(graph: &Graph, runtime: &Runtime<'_>) -> Result<Self> {
        let mut tuner = Self {
            stats: Vec::with_capacity(graph.len()),
            alpha: 0.4,
        };
        for id in graph.topo_order() {
            let (t_cpu_us, t_gpu_us) = runtime.node_times(graph, id)?;
            tuner.stats.push(NodeStats {
                t_cpu_us,
                t_gpu_us,
                samples: 1,
            });
        }
        Ok(tuner)
    }

    /// Per-node statistics.
    pub fn stats(&self) -> &[NodeStats] {
        &self.stats
    }

    /// Restores a tuner from previously exported statistics (an on-device
    /// deployment persists its profile across restarts instead of
    /// re-measuring from scratch).
    ///
    /// # Errors
    /// Returns [`crate::CoreError::PlanMismatch`] when the statistics do
    /// not cover `graph` exactly.
    pub fn from_stats(graph: &Graph, stats: Vec<NodeStats>) -> Result<Self> {
        if stats.len() != graph.len() {
            return Err(crate::CoreError::PlanMismatch {
                reason: format!(
                    "statistics cover {} nodes, graph '{}' has {}",
                    stats.len(),
                    graph.name(),
                    graph.len()
                ),
            });
        }
        Ok(Self { stats, alpha: 0.4 })
    }

    /// Folds one more profiling run into the statistics. `jitter` and
    /// `seed` model measurement noise of a real run (the adaptive feedback
    /// loop the paper describes: "performance statistics are collected to
    /// adjust the execution strategy adaptively").
    ///
    /// # Errors
    /// Propagates workload failures from profiling.
    pub fn observe(
        &mut self,
        graph: &Graph,
        runtime: &Runtime<'_>,
        jitter: f64,
        seed: u64,
    ) -> Result<()> {
        if self.stats.len() != graph.len() {
            return Err(crate::CoreError::PlanMismatch {
                reason: format!(
                    "tuner statistics cover {} nodes, graph '{}' has {}",
                    self.stats.len(),
                    graph.name(),
                    graph.len()
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for id in graph.topo_order() {
            let (mut t_cpu, mut t_gpu) = runtime.node_times(graph, id)?;
            if jitter > 0.0 {
                t_cpu *= 1.0 + jitter * rng.gen_range(-1.0..=1.0);
                t_gpu *= 1.0 + jitter * rng.gen_range(-1.0..=1.0);
            }
            let s = &mut self.stats[id.index()];
            s.t_cpu_us += self.alpha * (t_cpu - s.t_cpu_us);
            if t_gpu.is_finite() {
                s.t_gpu_us += self.alpha * (t_gpu - s.t_gpu_us);
            }
            s.samples += 1;
            let (ema_cpu, ema_gpu, round) = (s.t_cpu_us, s.t_gpu_us, s.samples);
            if let Some(sink) = runtime.observer() {
                let node = graph.node(id)?;
                if node.layer().class() != LayerClass::Input {
                    let name = node.layer().name();
                    sink.emit(SinkEvent::Counter {
                        track: format!("ema_cpu_us/{name}"),
                        t_us: f64::from(round),
                        value: ema_cpu,
                    });
                    if ema_gpu.is_finite() {
                        sink.emit(SinkEvent::Counter {
                            track: format!("ema_gpu_us/{name}"),
                            t_us: f64::from(round),
                            value: ema_gpu,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds an execution plan for `graph` under `config`.
    ///
    /// # Errors
    /// Fails on structural decomposition errors or workload failures.
    pub fn plan(
        &self,
        graph: &Graph,
        runtime: &Runtime<'_>,
        config: ExecutionConfig,
    ) -> Result<ExecutionPlan> {
        if self.stats.len() != graph.len() {
            return Err(crate::CoreError::PlanMismatch {
                reason: format!(
                    "tuner statistics cover {} nodes, graph '{}' has {}",
                    self.stats.len(),
                    graph.name(),
                    graph.len()
                ),
            });
        }
        let platform = runtime.platform();
        let default_assignment = match config.hybrid {
            HybridMode::CpuOnly => Assignment::Cpu,
            _ => Assignment::Gpu,
        };
        let mut nodes = vec![
            NodePlan {
                assignment: default_assignment,
                output_alloc: AllocStrategy::Explicit,
                prefetch_inputs: false,
            };
            graph.len()
        ];

        // --- Hybrid-execution decisions -------------------------------
        let structure = graph.structure()?;
        let allow_intra = platform.has_gpu()
            && matches!(
                config.hybrid,
                HybridMode::IntraKernelOnly | HybridMode::InterAndIntra
            );
        let allow_inter = platform.has_gpu()
            && matches!(
                config.hybrid,
                HybridMode::InterKernelOnly | HybridMode::InterAndIntra
            );

        let mut first_chain = true;
        for segment in structure.segments() {
            match segment {
                Segment::Chain(chain) => {
                    if allow_intra {
                        // The first chain starts at the input node (data on
                        // the host); later chains start at a join, where the
                        // processors have just synchronized.
                        let start = if first_chain {
                            ChainStart::Host
                        } else {
                            ChainStart::Synced
                        };
                        let _ =
                            self.decide_chain(graph, runtime, &config, chain, start, &mut nodes)?;
                    }
                    first_chain = false;
                }
                Segment::Parallel { branches, .. } => {
                    match (allow_inter, allow_intra) {
                        (true, true) => {
                            // The fine-grained adaptive choice: evaluate the
                            // inter-kernel assignment (whole branches to
                            // processors) against the intra-kernel treatment
                            // (branches sequential, each layer splittable)
                            // and keep the cheaper region plan.
                            let mut intra_nodes = nodes.clone();
                            let mut intra_cost = 0.0;
                            for branch in branches {
                                intra_cost += self.decide_chain(
                                    graph,
                                    runtime,
                                    &config,
                                    branch,
                                    ChainStart::Synced,
                                    &mut intra_nodes,
                                )?;
                            }
                            let mut inter_nodes = nodes.clone();
                            let inter_cost = self.decide_branches(
                                graph,
                                &config,
                                branches,
                                &mut inter_nodes,
                                platform,
                            );
                            nodes = if inter_cost < intra_cost {
                                inter_nodes
                            } else {
                                intra_nodes
                            };
                        }
                        (true, false) => {
                            self.decide_branches(graph, &config, branches, &mut nodes, platform);
                        }
                        (false, true) => {
                            for branch in branches {
                                self.decide_chain(
                                    graph,
                                    runtime,
                                    &config,
                                    branch,
                                    ChainStart::Synced,
                                    &mut nodes,
                                )?;
                            }
                        }
                        (false, false) => {}
                    }
                }
            }
        }

        // --- Memory decisions ------------------------------------------
        match config.memory_policy {
            MemoryPolicy::AllExplicit => {}
            MemoryPolicy::AllManaged => {
                for node in &mut nodes {
                    node.output_alloc = AllocStrategy::Managed;
                }
            }
            MemoryPolicy::SemanticAware => {
                self.decide_memory(graph, runtime, &structure, &mut nodes)?;
            }
        }

        let plan = ExecutionPlan { config, nodes };
        plan.validate(graph)?;
        Ok(plan)
    }

    /// Explains a plan node by node: profiled times, every candidate the
    /// planner priced (with the rejected costs), the Eq. (1)-(4) inputs,
    /// and a one-line rationale — the "why" behind every decision.
    ///
    /// # Errors
    /// Returns [`crate::CoreError::PlanMismatch`] when the plan or the
    /// statistics do not cover `graph`.
    pub fn explain(
        &self,
        graph: &Graph,
        runtime: &Runtime<'_>,
        plan: &ExecutionPlan,
    ) -> Result<Vec<NodeExplanation>> {
        plan.validate(graph)?;
        if self.stats.len() != graph.len() {
            return Err(crate::CoreError::PlanMismatch {
                reason: "statistics do not cover the graph".to_string(),
            });
        }
        let has_gpu = runtime.platform().has_gpu();
        let mut rows = Vec::with_capacity(graph.len().saturating_sub(1));
        for id in graph.topo_order().skip(1) {
            let node = graph.node(id)?;
            let stats = self.stats[id.index()];
            let assignment = plan.nodes[id.index()].assignment;
            let output_alloc = plan.nodes[id.index()].output_alloc;

            // Re-derive the candidate costs the planner weighed (the
            // policy-adjusted GPU time and the launch-aware split).
            let cand = if has_gpu {
                Some(self.node_candidates(graph, runtime, &plan.config, id)?)
            } else {
                None
            };
            let t_cpu = cand.as_ref().map_or(stats.t_cpu_us, |c| c.t_cpu_us);
            let t_gpu = cand.as_ref().map_or(stats.t_gpu_us, |c| c.t_gpu_us);
            let split = cand.as_ref().and_then(|c| c.split.clone());

            let mut candidates = vec![CandidateCost {
                label: "cpu".to_string(),
                predicted_us: t_cpu,
                chosen: matches!(assignment, Assignment::Cpu),
            }];
            if has_gpu {
                candidates.push(CandidateCost {
                    label: "gpu".to_string(),
                    predicted_us: t_gpu,
                    chosen: matches!(assignment, Assignment::Gpu),
                });
            }
            if let Some(s) = &split {
                candidates.push(CandidateCost {
                    label: format!(
                        "{} split {:.0}% cpu",
                        if s.by_input {
                            "input-channel"
                        } else {
                            "output"
                        },
                        s.cpu_fraction * 100.0
                    ),
                    predicted_us: s.t_total_us,
                    chosen: assignment.is_corun(),
                });
            }
            let predicted_us = candidates
                .iter()
                .find(|c| c.chosen)
                .map_or_else(|| t_cpu.min(t_gpu), |c| c.predicted_us);
            let rationale = rationale_line(assignment, t_cpu, t_gpu, split.as_ref(), output_alloc);
            rows.push(NodeExplanation {
                node: id.index(),
                name: node.layer().name().to_string(),
                class: node.layer().class().tag().to_string(),
                t_cpu_us: stats.t_cpu_us,
                t_gpu_us: stats.t_gpu_us,
                assignment,
                output_alloc,
                predicted_us,
                candidates,
                eq_inputs: cand.and_then(|c| c.eq),
                rationale,
            });
        }
        Ok(rows)
    }

    /// Runs the adaptive loop: observe -> re-plan, `iterations` times,
    /// returning the final plan and the predicted makespan after each
    /// iteration (for convergence studies).
    ///
    /// # Errors
    /// Propagates planning/simulation failures.
    pub fn adapt(
        &mut self,
        graph: &Graph,
        runtime: &Runtime<'_>,
        config: ExecutionConfig,
        iterations: usize,
        jitter: f64,
    ) -> Result<(ExecutionPlan, Vec<f64>)> {
        let mut history = Vec::with_capacity(iterations);
        let mut plan = self.plan(graph, runtime, config)?;
        for round in 0..iterations {
            let report = runtime.simulate(graph, &plan)?;
            history.push(report.total_us);
            self.observe(graph, runtime, jitter, round as u64 + 1)?;
            plan = self.plan(graph, runtime, config)?;
            if let Some(sink) = runtime.observer() {
                sink.emit(SinkEvent::Instant {
                    category: "plan",
                    label: format!(
                        "plan regenerated after round {} ({} co-run layers, {} zero-copy arrays)",
                        round + 1,
                        plan.corun_count(),
                        plan.managed_count()
                    ),
                    t_us: (round + 1) as f64,
                });
            }
        }
        Ok((plan, history))
    }

    /// Computes the per-processor candidate costs for one node.
    fn node_candidates(
        &self,
        graph: &Graph,
        runtime: &Runtime<'_>,
        config: &ExecutionConfig,
        id: NodeId,
    ) -> Result<NodeCandidates> {
        let node = graph.node(id)?;
        let stats = self.stats[id.index()];
        let memory = &runtime.platform().memory;
        let desc = kernel_desc(graph, id)?;
        let solo = edgenn_sim::processor::ExecutionContext::default();
        let bw_factor = match config.memory_policy {
            MemoryPolicy::AllExplicit => 1.0,
            _ => memory.managed_bw_factor,
        };
        let gpu_spec = runtime.platform().gpu.as_ref().expect("requires a GPU");
        let policy_factor = crate::runtime::weighted_bw_factor(&desc, bw_factor);

        // GPU solo time under the policy's zero-copy access penalty (the
        // CPU reads the same DRAM either way, so its solo time is the EMA).
        let t_gpu = stats.t_gpu_us
            * gpu_spec.kernel_time_us(&desc, &solo_policy_ctx(policy_factor))
            / gpu_spec.kernel_time_us(&desc, &solo);
        let t_cpu = stats.t_cpu_us;

        // Split candidate. Equation (4)'s closed form assumes kernel time
        // scales linearly with the partition fraction; real kernels carry
        // a fixed launch overhead, so the tuner takes Eq. (4)'s optimum as
        // the candidate and *evaluates* it (and the measurement-corrected
        // endpoints) with the full launch-aware kernel model the runtime
        // will charge.
        let shapes: Vec<_> = node
            .inputs()
            .iter()
            .map(|i| graph.node(*i).map(edgenn_nn::graph::Node::output_shape))
            .collect::<std::result::Result<_, _>>()?;
        let units = if node.layer().partitionable() {
            node.layer().partition_units(&shapes)?
        } else {
            1
        };
        let (split, eq) = if units >= 2 {
            let cpu_spec = &runtime.platform().cpu;
            let cpu_corun = edgenn_sim::processor::ExecutionContext {
                bandwidth_factor: 1.0,
                contention_factor: memory.corun_contention_factor,
                compute_factor: 1.0,
            };
            let gpu_corun = edgenn_sim::processor::ExecutionContext {
                bandwidth_factor: policy_factor,
                contention_factor: memory.corun_contention_factor,
                compute_factor: 1.0,
            };
            // Measurement feedback: EMA / analytic ratio corrects the
            // model toward observed behaviour.
            let ema_cpu = stats.t_cpu_us / cpu_spec.kernel_time_us(&desc, &solo).max(1e-9);
            let ema_gpu = stats.t_gpu_us / gpu_spec.kernel_time_us(&desc, &solo).max(1e-9);
            let v_o = (node.output_shape().num_elements() * 4) as u64;
            let boundary_us = memory.thrash_time_us(v_o.min(128 << 10));

            // Launch-aware evaluation of a split at fraction p under one
            // merge model; returns the predicted total time.
            let evaluate = |p: f64, explicit_merge: bool| -> f64 {
                let t_c = cpu_spec
                    .kernel_time_us(&crate::runtime::scale_desc(&desc, p), &cpu_corun)
                    * ema_cpu;
                let t_g = gpu_spec
                    .kernel_time_us(&crate::runtime::scale_desc(&desc, 1.0 - p), &gpu_corun)
                    * ema_gpu;
                let merge = if explicit_merge {
                    memory.copy_time_us((v_o as f64 * p) as u64)
                } else {
                    boundary_us
                };
                t_c.max(t_g) + merge + config.sync_overhead_us
            };

            // Eq. (4) closed-form optimum on the contended times.
            let t_cpu_co = stats.t_cpu_us * cpu_spec.kernel_time_us(&desc, &cpu_corun)
                / cpu_spec.kernel_time_us(&desc, &solo);
            let t_gpu_co = stats.t_gpu_us * gpu_spec.kernel_time_us(&desc, &gpu_corun)
                / gpu_spec.kernel_time_us(&desc, &solo);
            let explicit_decision = optimal_partition(&PartitionInputs {
                t_cpu_us: t_cpu_co,
                t_gpu_us: t_gpu_co,
                output_bytes: v_o,
                copy_rate_gbps: memory.copy_bw_gbps,
                sync_overhead_us: config.sync_overhead_us,
            });
            let managed_decision = optimal_partition(&PartitionInputs {
                t_cpu_us: t_cpu_co,
                t_gpu_us: t_gpu_co,
                output_bytes: 0,
                copy_rate_gbps: memory.copy_bw_gbps,
                sync_overhead_us: config.sync_overhead_us + boundary_us,
            });

            let mut best: Option<SplitCandidate> = None;
            let candidates: &[(f64, bool)] = match config.memory_policy {
                MemoryPolicy::AllExplicit => &[(explicit_decision.p_cpu, true)],
                MemoryPolicy::AllManaged => &[(managed_decision.p_cpu, false)],
                MemoryPolicy::SemanticAware => &[
                    (explicit_decision.p_cpu, true),
                    (managed_decision.p_cpu, false),
                ],
            };
            for &(p_raw, explicit_merge) in candidates {
                if p_raw <= 0.0 || p_raw >= 1.0 {
                    continue;
                }
                // Snap to whole partition units, as the runtime will.
                let cpu_units = ((p_raw * units as f64).round() as usize).clamp(1, units - 1);
                let p = cpu_units as f64 / units as f64;
                let t = evaluate(p, explicit_merge);
                if best.as_ref().is_none_or(|b| t < b.t_total_us) {
                    best = Some(SplitCandidate {
                        cpu_fraction: p,
                        t_total_us: t,
                        alloc: if explicit_merge {
                            AllocStrategy::Explicit
                        } else {
                            AllocStrategy::Managed
                        },
                        by_input: false,
                    });
                }
            }

            // The paper's Section IV-D split: by input channels, each
            // processor producing a full-size partial sum. Both sides
            // write every output page, so the merge is an explicit copy
            // of the whole output (a managed array would thrash — the
            // Section IV-B race-condition case).
            let in_channels = node.layer().input_channels(&shapes)?;
            if node.layer().input_split_supported()
                && in_channels >= 2
                && config.memory_policy != MemoryPolicy::AllManaged
            {
                let merge_full = memory.copy_time_us(v_o);
                let p_raw = if t_cpu_co + t_gpu_co > 0.0 {
                    t_gpu_co / (t_cpu_co + t_gpu_co)
                } else {
                    0.0
                };
                if p_raw > 0.0 && p_raw < 1.0 {
                    let cpu_channels =
                        ((p_raw * in_channels as f64).round() as usize).clamp(1, in_channels - 1);
                    let p = cpu_channels as f64 / in_channels as f64;
                    let t_c = cpu_spec
                        .kernel_time_us(&crate::runtime::scale_desc_input(&desc, p), &cpu_corun)
                        * ema_cpu;
                    let t_g = gpu_spec.kernel_time_us(
                        &crate::runtime::scale_desc_input(&desc, 1.0 - p),
                        &gpu_corun,
                    ) * ema_gpu;
                    let t = t_c.max(t_g) + merge_full + config.sync_overhead_us;
                    if best.as_ref().is_none_or(|b| t < b.t_total_us) {
                        best = Some(SplitCandidate {
                            cpu_fraction: p,
                            t_total_us: t,
                            alloc: AllocStrategy::Explicit,
                            by_input: true,
                        });
                    }
                }
            }
            let eq = EqInputs {
                t_cpu_corun_us: t_cpu_co,
                t_gpu_corun_us: t_gpu_co,
                output_bytes: v_o,
                copy_rate_gbps: memory.copy_bw_gbps,
                sync_overhead_us: config.sync_overhead_us,
            };
            (best, Some(eq))
        } else {
            (None, None)
        };

        let input_bytes = desc.bytes_in;
        Ok(NodeCandidates {
            t_gpu_us: t_gpu,
            t_cpu_us: t_cpu,
            split,
            eq,
            input_bytes,
        })
    }

    /// Assigns a whole chain with a dynamic program over per-node states
    /// {GPU, CPU, Split}, charging a cross-processor handoff whenever the
    /// data's residency changes between consecutive layers. Returns the
    /// DP's predicted cost for the chain (us), which the fork-join logic
    /// compares against the inter-kernel alternative.
    ///
    /// The paper's greedy per-layer rule (Eq. 4) ignores handoffs; the DP
    /// generalizes it and collapses to it when handoffs are free.
    fn decide_chain(
        &self,
        graph: &Graph,
        runtime: &Runtime<'_>,
        config: &ExecutionConfig,
        chain: &[NodeId],
        start: ChainStart,
        nodes: &mut [NodePlan],
    ) -> Result<f64> {
        const GPU: usize = 0;
        const CPU: usize = 1;
        // State 2 is the intra-kernel split.

        let memory = &runtime.platform().memory;
        let handoff = |bytes: u64| -> f64 {
            match config.memory_policy {
                MemoryPolicy::AllExplicit => memory.copy_time_us(bytes),
                _ => memory.migration_time_us(bytes, false),
            }
        };
        // Location after each state: GPU -> device, CPU -> host, Split -> both.
        let needs_handoff = |prev_state: usize, state: usize| -> bool {
            matches!((prev_state, state), (GPU, CPU) | (CPU, GPU))
        };

        // Collect decidable nodes (skip the input pseudo-node).
        let ids: Vec<NodeId> = chain
            .iter()
            .copied()
            .filter(|id| {
                graph
                    .node(*id)
                    .is_ok_and(|n| n.layer().class() != LayerClass::Input)
            })
            .collect();
        if ids.is_empty() {
            return Ok(0.0);
        }
        let candidates: Vec<NodeCandidates> = ids
            .iter()
            .map(|id| self.node_candidates(graph, runtime, config, *id))
            .collect::<Result<_>>()?;

        // Objective weighting: under TuneObjective::Energy a state's cost
        // is time x (base + the marginal power of the processors it
        // occupies); under Latency the weights are all 1.
        let power = runtime.platform().power;
        let weight = |state: usize| -> f64 {
            match config.objective {
                TuneObjective::Latency => 1.0,
                TuneObjective::Energy => match state {
                    GPU => power.base_w + power.gpu_dynamic_w,
                    CPU => power.base_w + power.cpu_dynamic_w,
                    _ => power.base_w + power.cpu_dynamic_w + power.gpu_dynamic_w,
                },
            }
        };
        let bus_weight = match config.objective {
            TuneObjective::Latency => 1.0,
            TuneObjective::Energy => power.base_w,
        };

        let inf = f64::INFINITY;
        let mut cost = vec![[inf; 3]; ids.len()];
        let mut back = vec![[0usize; 3]; ids.len()];
        for (i, cand) in candidates.iter().enumerate() {
            let node_cost = [
                cand.t_gpu_us * weight(GPU),
                cand.t_cpu_us * weight(CPU),
                cand.split
                    .as_ref()
                    .map_or(inf, |s| s.t_total_us * weight(2)),
            ];
            for state in 0..3 {
                if node_cost[state].is_infinite() {
                    continue;
                }
                if i == 0 {
                    // Entering the chain: the input resides per `start`.
                    let entry = match (start, state) {
                        (ChainStart::Host, GPU) => handoff(candidates[0].input_bytes),
                        (ChainStart::Host, _) => 0.0,
                        (ChainStart::Synced, _) => 0.0,
                    };
                    cost[0][state] = node_cost[state] + entry * bus_weight;
                } else {
                    for prev in 0..3 {
                        if cost[i - 1][prev].is_infinite() {
                            continue;
                        }
                        let mut t = cost[i - 1][prev] + node_cost[state];
                        if needs_handoff(prev, state) {
                            t += handoff(cand.input_bytes) * bus_weight;
                        }
                        if t < cost[i][state] {
                            cost[i][state] = t;
                            back[i][state] = prev;
                        }
                    }
                }
            }
        }

        // Backtrack from the cheapest terminal state (prefer the GPU on
        // ties: the chain's consumer usually lives there).
        let last = ids.len() - 1;
        let mut state = (0..3)
            .min_by(|&a, &b| cost[last][a].partial_cmp(&cost[last][b]).unwrap())
            .unwrap_or(GPU);
        let chain_cost = cost[last][state];
        for i in (0..ids.len()).rev() {
            let idx = ids[i].index();
            match state {
                GPU => nodes[idx].assignment = Assignment::Gpu,
                CPU => nodes[idx].assignment = Assignment::Cpu,
                _ => {
                    let split = candidates[i]
                        .split
                        .as_ref()
                        .expect("split state implies candidate");
                    nodes[idx].assignment = if split.by_input {
                        Assignment::SplitInput {
                            cpu_fraction: split.cpu_fraction,
                        }
                    } else {
                        Assignment::Split {
                            cpu_fraction: split.cpu_fraction,
                        }
                    };
                    if config.memory_policy == MemoryPolicy::SemanticAware {
                        nodes[idx].output_alloc = split.alloc;
                    }
                }
            }
            if i > 0 {
                state = back[i][state];
            }
        }
        Ok(chain_cost)
    }

    /// Inter-kernel decision for one fork-join region. Returns the
    /// predicted region cost (us).
    fn decide_branches(
        &self,
        graph: &Graph,
        config: &ExecutionConfig,
        branches: &[Vec<NodeId>],
        nodes: &mut [NodePlan],
        platform: &edgenn_sim::Platform,
    ) -> f64 {
        let costs: Vec<BranchCost> = branches
            .iter()
            .map(|branch| {
                let t_cpu: f64 = branch
                    .iter()
                    .map(|id| self.stats[id.index()].t_cpu_us)
                    .sum();
                let t_gpu: f64 = branch
                    .iter()
                    .map(|id| self.stats[id.index()].t_gpu_us)
                    .sum();
                let output_bytes = branch.last().map_or(0, |id| {
                    graph
                        .node(*id)
                        .map_or(0, |n| (n.output_shape().num_elements() * 4) as u64)
                });
                BranchCost {
                    t_cpu_us: t_cpu,
                    t_gpu_us: t_gpu,
                    output_bytes,
                }
            })
            .collect();

        // Merge-cost model for the CPU branch's output at the join: an
        // explicit copy under the naive policy, a zero-copy coherence
        // handoff (no data movement on the integrated SoC) otherwise.
        let (merge_rate_gbps, merge_fixed_us) = match config.memory_policy {
            MemoryPolicy::AllExplicit => (
                platform.memory.copy_bw_gbps,
                platform.memory.copy_latency_us,
            ),
            _ => (
                1e3 / platform.memory.page_migration_us_per_mb.max(1e-3),
                platform.memory.page_fault_overhead_us,
            ),
        };
        let decision = match config.objective {
            TuneObjective::Latency => optimal_assignment(
                &costs,
                merge_rate_gbps,
                merge_fixed_us,
                config.sync_overhead_us,
            ),
            TuneObjective::Energy => {
                // Energy-weight the branch times so the enumeration
                // minimizes energy: a co-run region draws both processors'
                // power for its makespan.
                let p = platform.power;
                let weighted: Vec<BranchCost> = costs
                    .iter()
                    .map(|c| BranchCost {
                        t_cpu_us: c.t_cpu_us * (p.base_w + p.cpu_dynamic_w),
                        t_gpu_us: c.t_gpu_us * (p.base_w + p.gpu_dynamic_w),
                        output_bytes: c.output_bytes,
                    })
                    .collect();
                optimal_assignment(
                    &weighted,
                    merge_rate_gbps,
                    merge_fixed_us * p.base_w,
                    config.sync_overhead_us * p.base_w,
                )
            }
        };
        match decision.assignment {
            BranchAssignment::AllGpu => {}
            BranchAssignment::AllCpu => {
                for &id in branches.iter().flatten() {
                    nodes[id.index()].assignment = Assignment::Cpu;
                }
            }
            BranchAssignment::Split { cpu_branch } => {
                for &id in &branches[cpu_branch] {
                    nodes[id.index()].assignment = Assignment::Cpu;
                }
            }
        }
        decision.t_total_us
    }

    /// Semantic memory decisions (with cost refinement) for every node.
    fn decide_memory(
        &self,
        graph: &Graph,
        runtime: &Runtime<'_>,
        structure: &edgenn_nn::graph::Structure,
        nodes: &mut [NodePlan],
    ) -> Result<()> {
        // Branch-boundary nodes: last node of each non-empty branch.
        let mut branch_tail = vec![false; graph.len()];
        for segment in structure.segments() {
            if let Segment::Parallel { branches, .. } = segment {
                for branch in branches {
                    if let Some(&tail) = branch.last() {
                        branch_tail[tail.index()] = true;
                    }
                }
            }
        }

        let gpu_bw = runtime
            .platform()
            .gpu
            .as_ref()
            .map_or(runtime.platform().cpu.mem_bw_gbps, |g| g.mem_bw_gbps);

        for id in graph.topo_order() {
            let node = graph.node(id)?;
            let idx = id.index();
            let role = if node.layer().class() == LayerClass::Input {
                ArrayRole::NetworkInput
            } else if nodes[idx].assignment.is_corun() {
                // Already decided by the partition candidate comparison.
                continue;
            } else if id == graph.output_id() {
                ArrayRole::NetworkOutput
            } else if branch_tail[idx] {
                ArrayRole::BranchBoundary
            } else {
                ArrayRole::ChainActivation
            };
            let base = decide(role);
            let refined = if node.layer().class() == LayerClass::Input {
                base
            } else {
                let desc = kernel_desc(graph, id)?;
                let kernel_memory_us = desc.total_bytes() as f64 / (gpu_bw * 1e3);
                refine_by_cost(
                    base,
                    &runtime.platform().memory,
                    kernel_memory_us,
                    desc.bytes_out,
                    node.layer().class(),
                )
            };
            nodes[idx].output_alloc = refined.strategy;
            nodes[idx].prefetch_inputs = refined.prefetch;
        }
        Ok(())
    }
}

/// One-line justification for a node's assignment given the candidate
/// costs the planner weighed.
fn rationale_line(
    assignment: Assignment,
    t_cpu_us: f64,
    t_gpu_us: f64,
    split: Option<&SplitCandidate>,
    alloc: AllocStrategy,
) -> String {
    match assignment {
        Assignment::Cpu => {
            if t_cpu_us <= t_gpu_us {
                format!("CPU solo {t_cpu_us:.1} us beats GPU {t_gpu_us:.1} us; output {alloc}")
            } else {
                format!(
                    "on the CPU by a region decision (branch overlap or handoff avoidance) \
                     despite GPU solo {t_gpu_us:.1} us < CPU {t_cpu_us:.1} us; output {alloc}"
                )
            }
        }
        Assignment::Gpu => {
            let split_note = match split {
                Some(s) => format!("; split rejected at {:.1} us", s.t_total_us),
                None => "; no viable split".to_string(),
            };
            if t_gpu_us <= t_cpu_us {
                format!(
                    "GPU solo {t_gpu_us:.1} us beats CPU {t_cpu_us:.1} us{split_note}; \
                     output {alloc}"
                )
            } else {
                format!(
                    "kept on the GPU by a region decision despite CPU solo {t_cpu_us:.1} us \
                     < GPU {t_gpu_us:.1} us; output {alloc}"
                )
            }
        }
        Assignment::Split { cpu_fraction } | Assignment::SplitInput { cpu_fraction } => {
            let kind = if matches!(assignment, Assignment::SplitInput { .. }) {
                "input-channel"
            } else {
                "output"
            };
            match split {
                Some(s) => format!(
                    "co-run ({kind} split, {:.0}% cpu) predicted {:.1} us beats \
                     GPU {t_gpu_us:.1} us and CPU {t_cpu_us:.1} us; output {alloc}",
                    cpu_fraction * 100.0,
                    s.t_total_us
                ),
                None => format!(
                    "co-run ({kind} split, {:.0}% cpu) chosen over GPU {t_gpu_us:.1} us \
                     and CPU {t_cpu_us:.1} us; output {alloc}",
                    cpu_fraction * 100.0
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::{jetson_agx_xavier, raspberry_pi_4};

    fn setup(kind: ModelKind) -> (Graph, edgenn_sim::Platform) {
        (build(kind, ModelScale::Paper), jetson_agx_xavier())
    }

    #[test]
    fn edgenn_plan_uses_both_processors_and_zero_copy() {
        let (graph, platform) = setup(ModelKind::AlexNet);
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        assert!(plan.corun_count() > 0, "AlexNet fc layers should co-run");
        assert!(
            plan.managed_count() > plan.nodes.len() / 2,
            "most arrays zero-copy"
        );
    }

    #[test]
    fn fc_layers_corun_but_large_convs_do_not() {
        // Table I's headline: AlexNet fc layers benefit from hybrid
        // execution; AlexNet conv layers do not.
        let (graph, platform) = setup(ModelKind::AlexNet);
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        for (idx, node) in graph.nodes().iter().enumerate() {
            match node.layer().class() {
                LayerClass::Fc => assert!(
                    plan.nodes[idx].assignment.is_corun(),
                    "{} should co-run",
                    node.layer().name()
                ),
                LayerClass::Conv => assert!(
                    !matches!(plan.nodes[idx].assignment, Assignment::Cpu),
                    "{} should not move wholly to the CPU",
                    node.layer().name()
                ),
                _ => {}
            }
        }
    }

    #[test]
    fn gpu_only_config_never_corun() {
        let (graph, platform) = setup(ModelKind::SqueezeNet);
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::baseline_gpu())
            .unwrap();
        assert_eq!(plan.corun_count(), 0);
        assert!(plan
            .nodes
            .iter()
            .all(|n| !matches!(n.assignment, Assignment::Cpu)));
        assert_eq!(plan.managed_count(), 0, "baseline is all-explicit");
    }

    #[test]
    fn inter_kernel_only_moves_whole_branches() {
        let (graph, platform) = setup(ModelKind::SqueezeNet);
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::inter_kernel_only())
            .unwrap();
        assert_eq!(plan.corun_count(), 0, "no intra-kernel splits allowed");
        // Some branch moved to the CPU.
        let cpu_nodes = plan
            .nodes
            .iter()
            .filter(|n| matches!(n.assignment, Assignment::Cpu))
            .count();
        assert!(cpu_nodes > 0, "fire-module branches should use the CPU");
    }

    #[test]
    fn cpu_only_platform_plans_cpu_everywhere() {
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let platform = raspberry_pi_4();
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::cpu_only())
            .unwrap();
        assert!(plan
            .nodes
            .iter()
            .all(|n| matches!(n.assignment, Assignment::Cpu)));
        let report = runtime.simulate(&graph, &plan).unwrap();
        assert!(report.total_us > 0.0);
    }

    #[test]
    fn observe_updates_statistics() {
        let (graph, platform) = setup(ModelKind::LeNet);
        let runtime = Runtime::new(&platform);
        let mut tuner = Tuner::new(&graph, &runtime).unwrap();
        let before = tuner.stats()[1];
        tuner.observe(&graph, &runtime, 0.3, 42).unwrap();
        let after = tuner.stats()[1];
        assert_eq!(after.samples, before.samples + 1);
        assert_ne!(
            after.t_cpu_us, before.t_cpu_us,
            "jittered observation shifts the EMA"
        );
    }

    #[test]
    fn adaptive_loop_converges_under_noise() {
        let (graph, platform) = setup(ModelKind::AlexNet);
        let runtime = Runtime::new(&platform);
        let mut tuner = Tuner::new(&graph, &runtime).unwrap();
        let (plan, history) = tuner
            .adapt(&graph, &runtime, ExecutionConfig::edgenn(), 6, 0.15)
            .unwrap();
        assert_eq!(history.len(), 6);
        // Re-planning from the converged stats yields the same plan.
        let replanned = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        assert_eq!(replanned.corun_count(), plan.corun_count());
    }

    #[test]
    fn explanations_cover_every_layer_and_match_the_plan() {
        let (graph, platform) = setup(ModelKind::AlexNet);
        let runtime = Runtime::new(&platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        let rows = tuner.explain(&graph, &runtime, &plan).unwrap();
        assert_eq!(rows.len(), graph.len() - 1);
        for row in &rows {
            assert!(row.t_cpu_us > 0.0 && row.t_gpu_us > 0.0, "{}", row.name);
            assert_eq!(row.assignment, plan.nodes[row.node].assignment);
            assert!(!row.rationale.is_empty(), "{} lacks a rationale", row.name);
            assert!(
                row.candidates.len() >= 2,
                "{} lists too few candidates",
                row.name
            );
            assert!(
                row.candidates.iter().filter(|c| c.chosen).count() <= 1,
                "{} marks several candidates chosen",
                row.name
            );
            assert!(row.predicted_us > 0.0, "{}", row.name);
        }
        // Every co-run fc layer is visible in the explanation, carries the
        // Eq. (1)-(4) inputs, and shows the rejected solo candidates.
        let corun: Vec<_> = rows
            .iter()
            .filter(|r| r.class == "fc" && r.assignment.is_corun())
            .collect();
        assert!(
            !corun.is_empty(),
            "AlexNet's fc layers should show as co-run"
        );
        for row in corun {
            let eq = row.eq_inputs.expect("splittable layer records Eq. inputs");
            assert!(eq.t_cpu_corun_us > 0.0 && eq.t_gpu_corun_us > 0.0);
            let rejected: Vec<_> = row.candidates.iter().filter(|c| !c.chosen).collect();
            assert!(
                rejected.len() >= 2,
                "{} should show rejected solo costs",
                row.name
            );
            assert!(row.rationale.contains("co-run"), "{}", row.rationale);
        }
        // A plan from another graph is rejected.
        let other = build(ModelKind::LeNet, ModelScale::Paper);
        assert!(tuner.explain(&other, &runtime, &plan).is_err());
    }

    #[test]
    fn observe_and_adapt_emit_provenance_events() {
        use edgenn_obs::Recorder;
        use std::sync::Arc;

        let (graph, platform) = setup(ModelKind::AlexNet);
        let recorder = Recorder::new();
        let runtime = Runtime::with_observer(&platform, Arc::new(recorder.clone()));
        let mut tuner = Tuner::new(&graph, &runtime).unwrap();
        tuner
            .adapt(&graph, &runtime, ExecutionConfig::edgenn(), 3, 0.1)
            .unwrap();

        // EMA evolution: one counter track per layer and processor, one
        // sample per observed round.
        let samples = recorder.counter_samples();
        let ema_tracks: std::collections::BTreeSet<_> = samples
            .iter()
            .filter(|s| s.track.starts_with("ema_"))
            .map(|s| s.track.clone())
            .collect();
        assert_eq!(
            ema_tracks.len(),
            2 * (graph.len() - 1),
            "cpu+gpu track per layer"
        );
        let fc_cpu: Vec<_> = samples
            .iter()
            .filter(|s| s.track.starts_with("ema_cpu_us/fc"))
            .collect();
        assert!(fc_cpu.len() >= 3, "one EMA sample per adaptation round");

        // Plan regenerations are marked.
        let regen = recorder
            .metrics()
            .counter_value("edgenn_plan_events_total")
            .unwrap_or(0.0);
        assert_eq!(regen, 3.0, "one plan-regeneration marker per round");
    }

    #[test]
    fn stats_round_trip_preserves_plans() {
        let (graph, platform) = setup(ModelKind::SqueezeNet);
        let runtime = Runtime::new(&platform);
        let mut tuner = Tuner::new(&graph, &runtime).unwrap();
        tuner.observe(&graph, &runtime, 0.1, 5).unwrap();
        let original = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();

        // Persist and restore the statistics (e.g. across a device reboot).
        let json = serde_json::to_string(tuner.stats()).unwrap();
        let stats: Vec<NodeStats> = serde_json::from_str(&json).unwrap();
        let restored = Tuner::from_stats(&graph, stats).unwrap();
        let replanned = restored
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        assert_eq!(
            replanned, original,
            "restored stats must reproduce the plan"
        );

        // Mismatched statistics are rejected.
        let other = build(ModelKind::LeNet, ModelScale::Paper);
        assert!(Tuner::from_stats(&other, tuner.stats().to_vec()).is_err());
    }

    #[test]
    fn energy_objective_trades_latency_for_energy() {
        // Energy-aware tuning must never burn more energy than the
        // latency-optimal plan; it may be slower.
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let mut better_somewhere = false;
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Paper);
            let tuner = Tuner::new(&graph, &runtime).unwrap();
            let fast = runtime
                .simulate(
                    &graph,
                    &tuner
                        .plan(&graph, &runtime, ExecutionConfig::edgenn())
                        .unwrap(),
                )
                .unwrap();
            let frugal = runtime
                .simulate(
                    &graph,
                    &tuner
                        .plan(&graph, &runtime, ExecutionConfig::edgenn_energy_aware())
                        .unwrap(),
                )
                .unwrap();
            assert!(
                frugal.energy.energy_mj <= fast.energy.energy_mj * 1.02,
                "{kind}: energy plan used more energy ({} vs {} mJ)",
                frugal.energy.energy_mj,
                fast.energy.energy_mj
            );
            if frugal.energy.energy_mj < fast.energy.energy_mj * 0.98 {
                better_somewhere = true;
            }
        }
        assert!(
            better_somewhere,
            "the energy objective should matter on some network"
        );
    }

    #[test]
    fn plans_validate_for_all_models_and_configs() {
        let platform = jetson_agx_xavier();
        let runtime = Runtime::new(&platform);
        let configs = [
            ExecutionConfig::edgenn(),
            ExecutionConfig::baseline_gpu(),
            ExecutionConfig::memory_only(),
            ExecutionConfig::hybrid_only(),
            ExecutionConfig::inter_kernel_only(),
        ];
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Paper);
            let tuner = Tuner::new(&graph, &runtime).unwrap();
            for config in configs {
                let plan = tuner.plan(&graph, &runtime, config).unwrap();
                plan.validate(&graph).unwrap();
                let report = runtime.simulate(&graph, &plan).unwrap();
                assert!(report.total_us > 0.0, "{kind} {config:?}");
            }
        }
    }
}
