//! Error type for EdgeNN planning and execution.

use std::fmt;

use edgenn_nn::NnError;
use edgenn_tensor::TensorError;

/// Errors from planning, simulation, or functional execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A network-level operation failed.
    Nn(NnError),
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A plan does not match the graph it is applied to.
    PlanMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The requested execution needs a GPU but the platform has none.
    NoGpu {
        /// The platform's name.
        platform: String,
    },
    /// An internal invariant was violated (a bug, surfaced as an error so
    /// library users never see a panic).
    Internal {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Nn(e) => write!(f, "network error: {e}"),
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::PlanMismatch { reason } => write!(f, "plan mismatch: {reason}"),
            Self::NoGpu { platform } => {
                write!(
                    f,
                    "platform '{platform}' has no GPU for the requested execution"
                )
            }
            Self::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Nn(e) => Some(e),
            Self::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        Self::Nn(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = NnError::UnknownNode { id: 3 }.into();
        assert!(e.to_string().contains("unknown graph node id 3"));
        let e: CoreError = TensorError::EmptyRange { start: 0, end: 0 }.into();
        assert!(matches!(e, CoreError::Tensor(_)));
        let e = CoreError::NoGpu {
            platform: "Raspberry Pi 4B".into(),
        };
        assert!(e.to_string().contains("Raspberry Pi 4B"));
        assert!(
            std::error::Error::source(&CoreError::Nn(NnError::UnknownNode { id: 0 })).is_some()
        );
    }
}
