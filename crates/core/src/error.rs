//! Error type for EdgeNN planning and execution, plus the typed fault /
//! recovery surface of the resilience layer.

use std::fmt;

use edgenn_nn::NnError;
use edgenn_tensor::TensorError;
use serde::Serialize;

pub use edgenn_sim::FaultKind;

/// What the resilience layer did in response to a fault or a burning
/// deadline budget (see `docs/resilience.md` for the state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RecoveryAction {
    /// Re-launch the failed kernel after an exponential backoff.
    Retry,
    /// Re-execute the failed partial on the CPU and re-tune the remaining
    /// suffix of the plan.
    FallbackToCpu,
    /// Switch the rest of the inference to a single-processor plan
    /// because the deadline budget is burning.
    DegradeToSingleProcessor,
    /// Convert explicit two-copy arrays to managed single-copy arrays so
    /// the plan fits a squeezed DRAM budget.
    ShrinkFootprint,
    /// No recovery was possible; the inference failed.
    Abandon,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Retry => "retry",
            Self::FallbackToCpu => "fallback-to-cpu",
            Self::DegradeToSingleProcessor => "degrade-to-single-processor",
            Self::ShrinkFootprint => "shrink-footprint",
            Self::Abandon => "abandon",
        })
    }
}

/// What triggered a [`RecoveryAction`]: a subset of the injected
/// [`FaultKind`]s that demand an explicit response (bandwidth, thermal,
/// and stall windows merely slow execution down), plus the runtime's own
/// deadline monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RecoveryCause {
    /// A kernel launch failed but the kernel is expected to come back.
    TransientKernel,
    /// A kernel launch failed permanently (the GPU is lost for this
    /// node and every node after it).
    PermanentKernel,
    /// The plan's footprint no longer fits the squeezed DRAM budget.
    OomPressure,
    /// The per-inference deadline budget is burning.
    DeadlineOverrun,
}

impl fmt::Display for RecoveryCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::TransientKernel => "transient-kernel",
            Self::PermanentKernel => "permanent-kernel",
            Self::OomPressure => "oom-pressure",
            Self::DeadlineOverrun => "deadline-overrun",
        })
    }
}

/// Errors from planning, simulation, or functional execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A network-level operation failed.
    Nn(NnError),
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A plan does not match the graph it is applied to.
    PlanMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The requested execution needs a GPU but the platform has none.
    NoGpu {
        /// The platform's name.
        platform: String,
    },
    /// An internal invariant was violated (a bug, surfaced as an error so
    /// library users never see a panic).
    Internal {
        /// Explanation.
        reason: String,
    },
    /// An injected fault defeated every recovery path (no CPU fallback
    /// available, or the footprint cannot shrink under the OOM budget).
    Unrecoverable {
        /// Graph node the failure anchors to.
        node: usize,
        /// The fault that defeated recovery.
        kind: FaultKind,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Nn(e) => write!(f, "network error: {e}"),
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::PlanMismatch { reason } => write!(f, "plan mismatch: {reason}"),
            Self::NoGpu { platform } => {
                write!(
                    f,
                    "platform '{platform}' has no GPU for the requested execution"
                )
            }
            Self::Internal { reason } => write!(f, "internal error: {reason}"),
            Self::Unrecoverable { node, kind } => {
                write!(f, "unrecoverable {kind} fault at node {node}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Nn(e) => Some(e),
            Self::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        Self::Nn(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = NnError::UnknownNode { id: 3 }.into();
        assert!(e.to_string().contains("unknown graph node id 3"));
        let e: CoreError = TensorError::EmptyRange { start: 0, end: 0 }.into();
        assert!(matches!(e, CoreError::Tensor(_)));
        let e = CoreError::NoGpu {
            platform: "Raspberry Pi 4B".into(),
        };
        assert!(e.to_string().contains("Raspberry Pi 4B"));
        assert!(
            std::error::Error::source(&CoreError::Nn(NnError::UnknownNode { id: 0 })).is_some()
        );
    }
}
