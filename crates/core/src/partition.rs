//! Intra-kernel partitioning math — the paper's Equations (1)-(4).
//!
//! For one layer co-run by both processors with CPU proportion
//! `p_cpu ∈ [0, 1]`:
//!
//! - Eq. (1): `t_co = max(t_cpu * p_cpu, t_gpu * (1 - p_cpu))` — the
//!   processors compute simultaneously, so collaboration time is the max.
//! - Eq. (2): `t_data = p_cpu * v_o / s` — the CPU-computed part of the
//!   output must be merged through memory at copy rate `s`.
//! - Eq. (3): `t_total = t_co + t_data`.
//! - Eq. (4): the closed-form optimum:
//!   `p_op = 0` when `v_o / s >= t_gpu` (merging costs more than the GPU
//!   finishing alone), else `p_op = t_gpu / (t_cpu + t_gpu)`.

use serde::{Deserialize, Serialize};

/// Inputs to the partition decision for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionInputs {
    /// Time for the CPU to compute the whole layer (us).
    pub t_cpu_us: f64,
    /// Time for the GPU to compute the whole layer (us).
    pub t_gpu_us: f64,
    /// Output data volume of the layer in bytes (`v_o`).
    pub output_bytes: u64,
    /// Memory copy rate between the processors in GB/s (`s`).
    pub copy_rate_gbps: f64,
    /// Fixed synchronization cost of any co-run (kernel completion wait +
    /// thread join). Not in the paper's idealized Eq. (3); modelled
    /// explicitly so that co-running tiny layers is correctly unprofitable.
    pub sync_overhead_us: f64,
}

/// The tuner's decision for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionDecision {
    /// Optimal CPU proportion `p_op` (0 disables co-running).
    pub p_cpu: f64,
    /// Predicted total time at `p_cpu` (us).
    pub t_total_us: f64,
    /// Predicted total time at `p_cpu = 0` (GPU alone, us).
    pub t_gpu_only_us: f64,
}

impl PartitionDecision {
    /// Predicted relative improvement over GPU-only execution, in [0, 1).
    pub fn improvement(&self) -> f64 {
        if self.t_gpu_only_us <= 0.0 {
            return 0.0;
        }
        ((self.t_gpu_only_us - self.t_total_us) / self.t_gpu_only_us).max(0.0)
    }
}

/// Eq. (2)'s merge-rate term: seconds (us) to merge the CPU part.
fn t_data_us(p_cpu: f64, output_bytes: u64, copy_rate_gbps: f64) -> f64 {
    if copy_rate_gbps <= 0.0 {
        return f64::INFINITY;
    }
    p_cpu * output_bytes as f64 / (copy_rate_gbps * 1e3)
}

/// Evaluates Eq. (3) at a given `p_cpu` (plus the sync overhead whenever
/// both processors participate).
pub fn t_total_us(inputs: &PartitionInputs, p_cpu: f64) -> f64 {
    let p = p_cpu.clamp(0.0, 1.0);
    let t_co = (inputs.t_cpu_us * p).max(inputs.t_gpu_us * (1.0 - p));
    let mut total = t_co + t_data_us(p, inputs.output_bytes, inputs.copy_rate_gbps);
    if p > 0.0 && p < 1.0 {
        total += inputs.sync_overhead_us;
    }
    total
}

/// Applies Eq. (4) and returns the decision.
///
/// The closed form is evaluated first; because our model adds a fixed sync
/// overhead that the paper's idealized equations omit, the candidate is
/// then compared against the pure GPU-only and CPU-only endpoints and the
/// cheapest wins — this is the "fine-grained adaptive" refinement the
/// tuner performs on top of the analytic optimum.
pub fn optimal_partition(inputs: &PartitionInputs) -> PartitionDecision {
    let t_gpu_only = t_total_us(inputs, 0.0);
    let v_over_s = t_data_us(1.0, inputs.output_bytes, inputs.copy_rate_gbps);

    // Eq. (4): p_op = 0 when v_o/s >= t_gpu, else t_gpu / (t_cpu + t_gpu).
    let p_closed_form = if v_over_s >= inputs.t_gpu_us || inputs.t_cpu_us + inputs.t_gpu_us <= 0.0 {
        0.0
    } else {
        inputs.t_gpu_us / (inputs.t_cpu_us + inputs.t_gpu_us)
    };

    let candidates = [p_closed_form, 0.0, 1.0];
    let mut best = PartitionDecision {
        p_cpu: 0.0,
        t_total_us: t_gpu_only,
        t_gpu_only_us: t_gpu_only,
    };
    for &p in &candidates {
        let t = t_total_us(inputs, p);
        if t < best.t_total_us {
            best = PartitionDecision {
                p_cpu: p,
                t_total_us: t,
                t_gpu_only_us: t_gpu_only,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(t_cpu: f64, t_gpu: f64, v_o: u64, s: f64) -> PartitionInputs {
        PartitionInputs {
            t_cpu_us: t_cpu,
            t_gpu_us: t_gpu,
            output_bytes: v_o,
            copy_rate_gbps: s,
            sync_overhead_us: 0.0,
        }
    }

    #[test]
    fn equation1_collaboration_is_max() {
        let i = inputs(100.0, 100.0, 0, 10.0);
        // Equal speeds, p = 0.5: both take 50us.
        assert!((t_total_us(&i, 0.5) - 50.0).abs() < 1e-9);
        // p = 0.25: GPU side dominates with 75us.
        assert!((t_total_us(&i, 0.25) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn equation2_data_term_linear_in_p() {
        let i = inputs(0.0, 1000.0, 1_000_000, 10.0); // 1 MB at 10 GB/s = 100 us
        let t1 = t_total_us(&i, 1.0); // all CPU: t_co = 0, t_data = 100
        assert!((t1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn equation4_balanced_processors_split_by_speed_ratio() {
        // t_cpu = 300, t_gpu = 100 => p_op = 100/400 = 0.25.
        let i = inputs(300.0, 100.0, 0, 10.0);
        let d = optimal_partition(&i);
        assert!((d.p_cpu - 0.25).abs() < 1e-9);
        // Both sides finish at 75us: a 25% improvement.
        assert!((d.t_total_us - 75.0).abs() < 1e-9);
        assert!((d.improvement() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn equation4_expensive_merge_disables_corunning() {
        // v_o/s = 1 MB / 0.001 GB/s = 1e6 us >> t_gpu.
        let i = inputs(300.0, 100.0, 1_000_000, 0.001);
        let d = optimal_partition(&i);
        assert_eq!(d.p_cpu, 0.0);
        assert_eq!(d.t_total_us, d.t_gpu_only_us);
        assert_eq!(d.improvement(), 0.0);
    }

    #[test]
    fn closed_form_optimum_beats_sampled_alternatives() {
        // Property: t_total(p_op) <= t_total(p) for any p (sync = 0,
        // matching the paper's idealized setting).
        let cases = [
            inputs(300.0, 100.0, 100_000, 10.0),
            inputs(50.0, 200.0, 1_000_000, 5.0),
            inputs(1000.0, 10.0, 10_000, 20.0),
            inputs(80.0, 80.0, 0, 1.0),
        ];
        for (ci, i) in cases.iter().enumerate() {
            let d = optimal_partition(i);
            for k in 0..=100 {
                let p = k as f64 / 100.0;
                assert!(
                    d.t_total_us <= t_total_us(i, p) + 1e-6,
                    "case {ci}: p_op={} worse than p={p}",
                    d.p_cpu
                );
            }
        }
    }

    #[test]
    fn sync_overhead_kills_tiny_layer_corunning() {
        // A 20us layer cannot profit from co-running when sync costs 15us.
        let i = PartitionInputs {
            t_cpu_us: 40.0,
            t_gpu_us: 20.0,
            output_bytes: 1000,
            copy_rate_gbps: 10.0,
            sync_overhead_us: 15.0,
        };
        let d = optimal_partition(&i);
        assert_eq!(d.p_cpu, 0.0, "sync overhead makes splitting unprofitable");
    }

    #[test]
    fn cpu_only_endpoint_wins_when_cpu_is_faster() {
        // Tiny kernels where the GPU's launch overhead dominates: with a
        // realistic sync overhead, splitting cannot pay for itself and the
        // whole layer moves to the CPU (LeNet case).
        let i = PartitionInputs {
            sync_overhead_us: 2.0,
            ..inputs(5.0, 50.0, 100, 10.0)
        };
        let d = optimal_partition(&i);
        assert_eq!(d.p_cpu, 1.0);
        assert!(d.t_total_us < d.t_gpu_only_us);
        // Without any sync cost, the idealized Eq. (4) split is optimal.
        let ideal = optimal_partition(&inputs(5.0, 50.0, 100, 10.0));
        assert!((ideal.p_cpu - 50.0 / 55.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_zero_times() {
        let d = optimal_partition(&inputs(0.0, 0.0, 0, 10.0));
        assert_eq!(d.p_cpu, 0.0);
        assert_eq!(d.t_total_us, 0.0);
        assert_eq!(d.improvement(), 0.0);
    }
}
