//! Inference reports: timing breakdowns, utilization, energy, and the
//! derived metrics the paper's figures plot.

use edgenn_nn::layer::LayerClass;
use edgenn_obs::{EventSink, SinkEvent};
use edgenn_sim::trace::TraceSummary;
use edgenn_sim::{EnergyReport, Platform, ProcessorKind, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::plan::Assignment;
use crate::tuner::NodeExplanation;

/// Timing of one layer within an inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Node id in the graph.
    pub node: usize,
    /// Layer name.
    pub name: String,
    /// Layer class tag ("conv", "fc", ...).
    pub class_tag: String,
    /// Where the layer ran.
    pub assignment: Assignment,
    /// When its computation became ready to start (us).
    pub start_us: f64,
    /// When its output (including merges) was available (us).
    pub end_us: f64,
    /// Pure kernel time, excluding copies/merges attributed to the layer.
    pub kernel_us: f64,
    /// Memory-management time attributed to the layer (copies, migrations,
    /// thrash, merge).
    pub memory_us: f64,
}

impl LayerTiming {
    /// Total wall time attributed to the layer.
    pub fn total_us(&self) -> f64 {
        self.end_us - self.start_us
    }

    /// True for classes the paper's layer-wise analysis tracks.
    pub fn is_class(&self, class: LayerClass) -> bool {
        self.class_tag == class.tag()
    }
}

/// Full result of one simulated inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// End-to-end latency (us).
    pub total_us: f64,
    /// Aggregate event buckets.
    pub summary: TraceSummary,
    /// Energy accounting.
    pub energy: EnergyReport,
    /// Per-layer timings in execution order.
    pub layers: Vec<LayerTiming>,
    /// Raw trace events.
    pub events: Vec<TraceEvent>,
    /// Tuner decision provenance (empty when the plan was hand-written
    /// rather than produced by [`crate::tuner::Tuner`]).
    pub decisions: Vec<NodeExplanation>,
}

impl InferenceReport {
    /// Attaches tuner decision provenance to the report.
    pub fn with_decisions(mut self, decisions: Vec<NodeExplanation>) -> Self {
        self.decisions = decisions;
        self
    }

    /// Fraction of end-to-end time spent on CPU<->GPU memory management
    /// (explicit copies + migrations + thrash) — the quantity Figure 9
    /// plots for the explicit baseline. Unclamped: a value past 1.0 is an
    /// accounting violation, and `edgenn check` reports it as `EC030`
    /// instead of this method hiding it. Plotting pipelines that prefer a
    /// bounded axis call [`Self::copy_proportion_clamped`].
    pub fn copy_proportion(&self) -> f64 {
        self.copy_proportion_raw()
    }

    /// The unclamped memory proportion: exceeds 1.0 when per-layer
    /// attribution double-counts co-run overlap and the summed memory
    /// time outruns the wall clock.
    pub fn copy_proportion_raw(&self) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        self.summary.memory_us() / self.total_us
    }

    /// [`Self::copy_proportion`] clamped into `[0, 1]` — the lenient
    /// plotting variant (`edgenn check --lenient` downgrades the matching
    /// `EC030` diagnostic to a warning for the same reason).
    pub fn copy_proportion_clamped(&self) -> f64 {
        self.copy_proportion_raw().clamp(0.0, 1.0)
    }

    /// Checks the report's accounting invariants, emitting one
    /// [`SinkEvent::Warning`] per violation into `sink`. Returns the
    /// number of warnings raised (0 for a clean report).
    pub fn audit(&self, sink: &dyn EventSink) -> usize {
        let mut raised = 0;
        let raw = self.copy_proportion_raw();
        if raw > 1.0 {
            sink.emit(SinkEvent::Warning {
                source: "metrics",
                message: format!(
                    "{}: memory time {:.1} us exceeds end-to-end {:.1} us \
                     (raw copy_proportion {:.3}; checker code EC030)",
                    self.model,
                    self.summary.memory_us(),
                    self.total_us,
                    raw
                ),
            });
            raised += 1;
        }
        if self.summary.busy_us > self.total_us + 1e-6 {
            sink.emit(SinkEvent::Warning {
                source: "metrics",
                message: format!(
                    "{}: busy time {:.1} us exceeds end-to-end {:.1} us",
                    self.model, self.summary.busy_us, self.total_us
                ),
            });
            raised += 1;
        }
        raised
    }

    /// Inferences per second.
    pub fn throughput(&self) -> f64 {
        if self.total_us <= 0.0 {
            0.0
        } else {
            1e6 / self.total_us
        }
    }

    /// Performance per watt (inferences per joule), Figure 7(a)/13(a).
    pub fn perf_per_watt(&self) -> f64 {
        self.energy.perf_per_watt()
    }

    /// Performance per dollar (inferences per second per USD),
    /// Figure 7(b)/13(b).
    pub fn perf_per_price(&self, platform: &Platform) -> f64 {
        if platform.price_usd <= 0.0 {
            0.0
        } else {
            self.throughput() / platform.price_usd
        }
    }

    /// Relative improvement of this report over `baseline` (positive when
    /// this run is faster), as the paper reports percentages.
    pub fn improvement_over(&self, baseline: &InferenceReport) -> f64 {
        if baseline.total_us <= 0.0 {
            return 0.0;
        }
        (baseline.total_us - self.total_us) / baseline.total_us
    }

    /// Speedup of this run relative to `other` (>1 when this run is faster).
    pub fn speedup_over(&self, other: &InferenceReport) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        other.total_us / self.total_us
    }

    /// Utilization of one processor during the run.
    pub fn utilization(&self, proc: ProcessorKind) -> f64 {
        match proc {
            ProcessorKind::Cpu => self.energy.cpu_utilization,
            ProcessorKind::Gpu => self.energy.gpu_utilization,
        }
    }

    /// Layer timings of one class (paper Table I groups by conv/fc).
    pub fn layers_of_class(&self, class: LayerClass) -> Vec<&LayerTiming> {
        self.layers.iter().filter(|l| l.is_class(class)).collect()
    }
}

/// Geometric mean of a positive series (the paper summarizes ratio metrics
/// geometrically, e.g. the 29.14x of Figure 7(a)).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (used where the paper reports plain averages).
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: f64, copy: f64) -> InferenceReport {
        InferenceReport {
            model: "m".into(),
            platform: "p".into(),
            total_us: total,
            summary: TraceSummary {
                copy_us: copy,
                ..Default::default()
            },
            energy: EnergyReport {
                duration_us: total,
                avg_power_w: 10.0,
                energy_mj: total * 10.0 / 1000.0,
                cpu_utilization: 0.5,
                gpu_utilization: 0.9,
            },
            layers: vec![],
            events: vec![],
            decisions: vec![],
        }
    }

    #[test]
    fn copy_proportion_and_throughput() {
        let r = report(1000.0, 150.0);
        assert!((r.copy_proportion() - 0.15).abs() < 1e-9);
        assert!((r.throughput() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn raw_copy_proportion_exceeds_one_and_audit_warns() {
        use edgenn_obs::Recorder;
        // Co-run double counting: 150 us of attributed memory time in a
        // 100 us run. The default accessor reports the violation as-is;
        // only the explicit clamped variant bounds it for plotting.
        let r = report(100.0, 150.0);
        assert!(
            (r.copy_proportion() - 1.5).abs() < 1e-9,
            "default accessor is unclamped"
        );
        assert!(
            (r.copy_proportion_clamped() - 1.0).abs() < 1e-9,
            "clamped variant bounds the plot axis"
        );
        assert!(
            (r.copy_proportion_raw() - 1.5).abs() < 1e-9,
            "raw value unclamped"
        );
        let rec = Recorder::new();
        assert_eq!(r.audit(&rec), 1);
        assert_eq!(
            rec.metrics().counter_value("edgenn_warnings_total"),
            Some(1.0)
        );
        assert!(rec.warnings()[0].contains("EC030"), "{:?}", rec.warnings());

        // A clean report raises nothing.
        let clean = report(1000.0, 150.0);
        let rec = Recorder::new();
        assert_eq!(clean.audit(&rec), 0);
        assert!(rec.warnings().is_empty());
    }

    #[test]
    fn improvement_and_speedup_relations() {
        let fast = report(800.0, 0.0);
        let slow = report(1000.0, 0.0);
        assert!((fast.improvement_over(&slow) - 0.2).abs() < 1e-9);
        assert!((fast.speedup_over(&slow) - 1.25).abs() < 1e-9);
        assert!(
            slow.improvement_over(&fast) < 0.0,
            "regressions are negative"
        );
    }

    #[test]
    fn perf_per_price_scales_inversely_with_price() {
        let r = report(1000.0, 0.0);
        let mut cheap = edgenn_sim::platforms::raspberry_pi_4();
        cheap.price_usd = 100.0;
        let mut pricey = cheap.clone();
        pricey.price_usd = 1000.0;
        assert!((r.perf_per_price(&cheap) / r.perf_per_price(&pricey) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn means() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((arithmetic_mean(&[1.0, 4.0]) - 2.5).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    #[test]
    fn layer_class_filter_and_total() {
        use crate::plan::Assignment;
        let mut r = report(100.0, 0.0);
        r.layers = vec![
            LayerTiming {
                node: 1,
                name: "conv1".into(),
                class_tag: "conv".into(),
                assignment: Assignment::Gpu,
                start_us: 0.0,
                end_us: 30.0,
                kernel_us: 25.0,
                memory_us: 5.0,
            },
            LayerTiming {
                node: 2,
                name: "fc1".into(),
                class_tag: "fc".into(),
                assignment: Assignment::Split { cpu_fraction: 0.4 },
                start_us: 30.0,
                end_us: 90.0,
                kernel_us: 50.0,
                memory_us: 10.0,
            },
        ];
        use edgenn_nn::layer::LayerClass;
        assert_eq!(r.layers_of_class(LayerClass::Conv).len(), 1);
        assert_eq!(r.layers_of_class(LayerClass::Fc).len(), 1);
        assert_eq!(r.layers_of_class(LayerClass::Pool).len(), 0);
        assert_eq!(r.layers[1].total_us(), 60.0);
        assert!(r.layers[0].is_class(LayerClass::Conv));
        assert!(!r.layers[0].is_class(LayerClass::Fc));
    }

    #[test]
    fn utilization_accessor() {
        let r = report(100.0, 0.0);
        assert_eq!(r.utilization(ProcessorKind::Cpu), 0.5);
        assert_eq!(r.utilization(ProcessorKind::Gpu), 0.9);
    }
}
