//! High-level execution strategies: EdgeNN and the comparison points the
//! paper evaluates against (Sections V-B through V-F).

use edgenn_nn::graph::Graph;
use edgenn_sim::{CloudLink, Platform};
use serde::{Deserialize, Serialize};

use crate::metrics::InferenceReport;
use crate::plan::{ExecutionConfig, ExecutionPlan};
use crate::runtime::Runtime;
use crate::tuner::Tuner;
use crate::Result;

/// Shared implementation: tune a plan under `config`, simulate it, and
/// attach the tuner's decision provenance to the report.
fn run(platform: &Platform, graph: &Graph, config: ExecutionConfig) -> Result<InferenceReport> {
    let runtime = Runtime::new(platform);
    let tuner = Tuner::new(graph, &runtime)?;
    let plan = tuner.plan(graph, &runtime, config)?;
    let decisions = tuner.explain(graph, &runtime, &plan)?;
    Ok(runtime.simulate(graph, &plan)?.with_decisions(decisions))
}

/// Full EdgeNN: semantic-aware memory + inter/intra-kernel hybrid
/// execution + adaptive tuning.
pub struct EdgeNn<'p> {
    platform: &'p Platform,
    config: ExecutionConfig,
}

impl<'p> EdgeNn<'p> {
    /// EdgeNN on `platform` with the default configuration.
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            config: ExecutionConfig::edgenn(),
        }
    }

    /// Overrides the configuration (ablations).
    pub fn with_config(platform: &'p Platform, config: ExecutionConfig) -> Self {
        Self { platform, config }
    }

    /// Runs one tuned inference.
    ///
    /// # Errors
    /// Propagates planning/simulation failures.
    pub fn infer(&self, graph: &Graph) -> Result<InferenceReport> {
        run(self.platform, graph, self.config)
    }

    /// Runs the adaptive loop for `iterations` rounds under measurement
    /// noise `jitter`, then reports the final tuned inference.
    ///
    /// # Errors
    /// Propagates planning/simulation failures.
    pub fn infer_adaptive(
        &self,
        graph: &Graph,
        iterations: usize,
        jitter: f64,
    ) -> Result<(InferenceReport, Vec<f64>)> {
        let runtime = Runtime::new(self.platform);
        let mut tuner = Tuner::new(graph, &runtime)?;
        let (plan, history) = tuner.adapt(graph, &runtime, self.config, iterations, jitter)?;
        let decisions = tuner.explain(graph, &runtime, &plan)?;
        let report = runtime.simulate(graph, &plan)?.with_decisions(decisions);
        Ok((report, history))
    }

    /// The tuned plan itself (for inspection and functional execution).
    ///
    /// # Errors
    /// Propagates planning failures.
    pub fn plan(&self, graph: &Graph) -> Result<ExecutionPlan> {
        let runtime = Runtime::new(self.platform);
        let tuner = Tuner::new(graph, &runtime)?;
        tuner.plan(graph, &runtime, self.config)
    }
}

/// GPU-only execution of the original (naive, explicit-copy) programs —
/// the paper's "direct execution" baseline for Figure 8.
pub struct GpuOnly<'p> {
    platform: &'p Platform,
}

impl<'p> GpuOnly<'p> {
    /// GPU-only baseline on `platform`.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform }
    }

    /// Runs one inference.
    ///
    /// # Errors
    /// Fails on CPU-only platforms.
    pub fn infer(&self, graph: &Graph) -> Result<InferenceReport> {
        run(self.platform, graph, ExecutionConfig::baseline_gpu())
    }
}

/// CPU-only execution — the edge-CPU baselines of Figure 6.
pub struct CpuOnly<'p> {
    platform: &'p Platform,
}

impl<'p> CpuOnly<'p> {
    /// CPU-only execution on `platform`.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform }
    }

    /// Runs one inference.
    ///
    /// # Errors
    /// Propagates planning/simulation failures.
    pub fn infer(&self, graph: &Graph) -> Result<InferenceReport> {
        run(self.platform, graph, ExecutionConfig::cpu_only())
    }
}

/// The Section V-F state-of-the-art comparator: fine-grained hybrid
/// execution that supports only inter-kernel co-running
/// (FineStream-style, the paper's reference \[96\]).
pub struct InterKernelOnly<'p> {
    platform: &'p Platform,
}

impl<'p> InterKernelOnly<'p> {
    /// Inter-kernel-only co-running on `platform`.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform }
    }

    /// Runs one inference.
    ///
    /// # Errors
    /// Propagates planning/simulation failures.
    pub fn infer(&self, graph: &Graph) -> Result<InferenceReport> {
        run(self.platform, graph, ExecutionConfig::inter_kernel_only())
    }
}

/// Result of a cloud-offloaded inference (Figure 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CloudReport {
    /// Time to upload the input (us).
    pub upload_us: f64,
    /// Cloud-side delay (us).
    pub cloud_delay_us: f64,
    /// Remote compute time (us) — the "on-cloud (computing only)" bars.
    pub compute_us: f64,
    /// End-to-end offload latency (us) — the "on-cloud" bars.
    pub total_us: f64,
}

/// Cloud offload: ship the input over the paper's measured link and run
/// on a discrete-GPU server.
pub struct CloudOffload<'p> {
    server: &'p Platform,
    link: CloudLink,
    /// Compressed input size in bytes (the paper uses a ~400 KB image).
    input_bytes: u64,
}

impl<'p> CloudOffload<'p> {
    /// Offload to `server` over the paper's measured link conditions with
    /// the paper's 400 KB compressed input.
    pub fn new(server: &'p Platform) -> Self {
        Self {
            server,
            link: CloudLink::paper_measured(),
            input_bytes: 400_000,
        }
    }

    /// Overrides the link model.
    pub fn with_link(mut self, link: CloudLink) -> Self {
        self.link = link;
        self
    }

    /// Overrides the compressed input size.
    pub fn with_input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }

    /// Runs one offloaded inference.
    ///
    /// # Errors
    /// Propagates remote planning/simulation failures.
    pub fn infer(&self, graph: &Graph) -> Result<CloudReport> {
        let remote = GpuOnly::new(self.server).infer(graph)?;
        let upload_us = self.link.upload_time_us(self.input_bytes);
        Ok(CloudReport {
            upload_us,
            cloud_delay_us: self.link.cloud_delay_us,
            compute_us: remote.total_us,
            total_us: self.link.offload_time_us(self.input_bytes, remote.total_us),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_nn::models::{build, ModelKind, ModelScale};
    use edgenn_sim::platforms::{jetson_agx_xavier, raspberry_pi_4, rtx_2080ti_server};

    #[test]
    fn edgenn_beats_gpu_only_on_every_benchmark() {
        // Figure 8's headline: EdgeNN improves on direct GPU execution for
        // all six networks.
        let platform = jetson_agx_xavier();
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Paper);
            let edgenn = EdgeNn::new(&platform).infer(&graph).unwrap();
            let baseline = GpuOnly::new(&platform).infer(&graph).unwrap();
            assert!(
                edgenn.total_us < baseline.total_us,
                "{kind}: edgenn {} vs baseline {}",
                edgenn.total_us,
                baseline.total_us
            );
        }
    }

    #[test]
    fn edgenn_beats_every_edge_cpu() {
        // Figure 6's headline.
        let jetson = jetson_agx_xavier();
        let rpi = raspberry_pi_4();
        for kind in ModelKind::ALL {
            let graph = build(kind, ModelScale::Paper);
            let edgenn = EdgeNn::new(&jetson).infer(&graph).unwrap();
            let jetson_cpu = CpuOnly::new(&jetson).infer(&graph).unwrap();
            let rpi_cpu = CpuOnly::new(&rpi).infer(&graph).unwrap();
            assert!(edgenn.speedup_over(&jetson_cpu) > 1.0, "{kind}");
            assert!(
                edgenn.speedup_over(&rpi_cpu) > edgenn.speedup_over(&jetson_cpu),
                "{kind}: the RPi should trail the Jetson CPU"
            );
        }
    }

    #[test]
    fn discrete_gpu_computes_faster_but_offload_usually_loses() {
        // Figure 12: the 2080 Ti computes faster than the edge device, but
        // network + cloud delay usually flips the comparison.
        let jetson = jetson_agx_xavier();
        let server = rtx_2080ti_server();
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let edgenn = EdgeNn::new(&jetson).infer(&graph).unwrap();
        let cloud = CloudOffload::new(&server).infer(&graph).unwrap();
        assert!(
            cloud.compute_us < edgenn.total_us,
            "server compute is faster"
        );
        assert!(cloud.total_us > edgenn.total_us, "offload total is slower");
        assert!(cloud.total_us >= cloud.upload_us + cloud.cloud_delay_us);
    }

    #[test]
    fn inter_kernel_only_helps_branchy_nets_most() {
        // Section V-F: inter-kernel co-running only helps networks with
        // independent branches (SqueezeNet/ResNet).
        let platform = jetson_agx_xavier();
        let chain = build(ModelKind::AlexNet, ModelScale::Paper);
        let branchy = build(ModelKind::SqueezeNet, ModelScale::Paper);

        let chain_base = GpuOnly::new(&platform).infer(&chain).unwrap();
        let chain_inter = InterKernelOnly::new(&platform).infer(&chain).unwrap();
        let branchy_base = GpuOnly::new(&platform).infer(&branchy).unwrap();
        let branchy_inter = InterKernelOnly::new(&platform).infer(&branchy).unwrap();

        let chain_gain = chain_inter.improvement_over(&chain_base);
        let branchy_gain = branchy_inter.improvement_over(&branchy_base);
        assert!(
            branchy_gain > chain_gain,
            "inter-kernel gain should concentrate on branchy nets: {branchy_gain} vs {chain_gain}"
        );
    }

    #[test]
    fn adaptive_inference_returns_history() {
        let platform = jetson_agx_xavier();
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let (report, history) = EdgeNn::new(&platform)
            .infer_adaptive(&graph, 4, 0.1)
            .unwrap();
        assert_eq!(history.len(), 4);
        assert!(report.total_us > 0.0);
    }

    #[test]
    fn cloud_report_components_sum() {
        let server = rtx_2080ti_server();
        let graph = build(ModelKind::LeNet, ModelScale::Paper);
        let cloud = CloudOffload::new(&server)
            .with_link(CloudLink {
                uplink_mbps: 2.0,
                cloud_delay_us: 50_000.0,
            })
            .with_input_bytes(200_000)
            .infer(&graph)
            .unwrap();
        assert!((cloud.upload_us - 100_000.0).abs() < 1e-6);
        assert!(
            (cloud.total_us - (cloud.upload_us + cloud.cloud_delay_us + cloud.compute_us)).abs()
                < 1e-6
        );
    }
}
