//! Stress tests: the full EdgeNN pipeline over generated networks the
//! planner has never seen — structural fuzzing beyond the six benchmarks.

use edgenn_core::prelude::*;
use edgenn_core::runtime::{functional, Runtime};
use edgenn_nn::models::synthetic::{random_cnn, SyntheticSpec};
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;

#[test]
fn edgenn_never_loses_on_random_networks() {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    for seed in 0..20 {
        let graph = random_cnn(seed, SyntheticSpec::default()).unwrap();
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let baseline_plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::baseline_gpu())
            .unwrap();
        let edgenn_plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        edgenn_plan.validate(&graph).unwrap();
        let baseline = runtime.simulate(&graph, &baseline_plan).unwrap();
        let edgenn = runtime.simulate(&graph, &edgenn_plan).unwrap();
        assert!(
            edgenn.total_us <= baseline.total_us * 1.001,
            "seed {seed}: EdgeNN {} vs baseline {}",
            edgenn.total_us,
            baseline.total_us
        );
    }
}

#[test]
fn tuned_plans_execute_losslessly_on_random_networks() {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let spec = SyntheticSpec {
        stages: 4,
        resolution: 16,
        ..SyntheticSpec::default()
    };
    for seed in 100..112 {
        let graph = random_cnn(seed, spec).unwrap();
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        let input = Tensor::random(graph.input_shape().dims(), 1.0, seed);
        let reference = graph.forward(&input).unwrap();
        let outcome = functional::execute(&graph, &plan, &input).unwrap();
        assert!(
            outcome.output.approx_eq(&reference, 1e-4),
            "seed {seed}: diverged by {}",
            outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
        );
    }
}

#[test]
fn all_configs_plan_and_simulate_on_random_networks() {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let configs = [
        ExecutionConfig::edgenn(),
        ExecutionConfig::baseline_gpu(),
        ExecutionConfig::memory_only(),
        ExecutionConfig::hybrid_only(),
        ExecutionConfig::inter_kernel_only(),
        ExecutionConfig::edgenn_energy_aware(),
        ExecutionConfig::cpu_only(),
    ];
    for seed in 200..210 {
        let graph = random_cnn(seed, SyntheticSpec::default()).unwrap();
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        for config in configs {
            let plan = tuner.plan(&graph, &runtime, config).unwrap();
            let report = runtime.simulate(&graph, &plan).unwrap();
            assert!(report.total_us > 0.0, "seed {seed} {config:?}");
            assert!(report.energy.energy_mj > 0.0, "seed {seed} {config:?}");
        }
    }
}

#[test]
fn deep_networks_stay_plannable() {
    // A 20-stage generated network exercises long DP chains and many
    // fork-join regions at once.
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let graph = random_cnn(
        7,
        SyntheticSpec {
            stages: 20,
            resolution: 64,
            base_channels: 16,
            classes: 100,
        },
    )
    .unwrap();
    assert!(graph.len() > 40);
    let tuner = Tuner::new(&graph, &runtime).unwrap();
    let plan = tuner
        .plan(&graph, &runtime, ExecutionConfig::edgenn())
        .unwrap();
    let baseline = tuner
        .plan(&graph, &runtime, ExecutionConfig::baseline_gpu())
        .unwrap();
    let fast = runtime.simulate(&graph, &plan).unwrap();
    let slow = runtime.simulate(&graph, &baseline).unwrap();
    assert!(fast.total_us <= slow.total_us);
}
