//! Randomized (seeded, deterministic) tests for EdgeNN's planning math and
//! plan/runtime consistency.
//!
//! These were originally property-based tests; they now draw cases from a
//! fixed-seed RNG so the suite is reproducible and dependency-free.

use edgenn_core::assign::{optimal_assignment, BranchCost};
use edgenn_core::partition::{optimal_partition, t_total_us, PartitionInputs};
use edgenn_core::plan::{Assignment, ExecutionConfig, ExecutionPlan, NodePlan};
use edgenn_core::prelude::*;
use edgenn_core::runtime::{functional, Runtime};
use edgenn_nn::graph::{compile, CompileOptions};
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn arb_partition_inputs(rng: &mut rand::rngs::StdRng) -> PartitionInputs {
    PartitionInputs {
        t_cpu_us: rng.gen_range(0.1f64..10_000.0),
        t_gpu_us: rng.gen_range(0.1f64..10_000.0),
        output_bytes: rng.gen_range(0u64..50_000_000),
        copy_rate_gbps: rng.gen_range(0.1f64..50.0),
        sync_overhead_us: rng.gen_range(0.0f64..50.0),
    }
}

#[test]
fn partition_decision_never_loses_to_endpoints() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0001);
    for _ in 0..CASES {
        let inputs = arb_partition_inputs(&mut rng);
        let d = optimal_partition(&inputs);
        assert!(
            d.t_total_us <= t_total_us(&inputs, 0.0) + 1e-9,
            "vs GPU-only"
        );
        assert!(
            d.t_total_us <= t_total_us(&inputs, 1.0) + 1e-9,
            "vs CPU-only"
        );
        assert!((0.0..=1.0).contains(&d.p_cpu));
        assert!(d.improvement() >= 0.0);
    }
}

#[test]
fn partition_closed_form_is_global_optimum_without_sync() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0002);
    for _ in 0..CASES {
        // In the paper's idealized setting (no fixed sync cost), Eq. (4)
        // must beat every sampled p.
        let inputs = PartitionInputs {
            sync_overhead_us: 0.0,
            ..arb_partition_inputs(&mut rng)
        };
        let d = optimal_partition(&inputs);
        for k in 0..=200 {
            let p = k as f64 / 200.0;
            assert!(
                d.t_total_us <= t_total_us(&inputs, p) + 1e-6,
                "p_op {} beaten at p = {p}",
                d.p_cpu
            );
        }
    }
}

#[test]
fn partition_decision_monotone_in_merge_cost() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0003);
    for _ in 0..CASES {
        let inputs = arb_partition_inputs(&mut rng);
        let slower = rng.gen_range(1.5f64..20.0);
        // A slower merge rate can only reduce the attractiveness of
        // splitting: the decision time never improves.
        let worse = PartitionInputs {
            copy_rate_gbps: inputs.copy_rate_gbps / slower,
            ..inputs
        };
        let d1 = optimal_partition(&inputs);
        let d2 = optimal_partition(&worse);
        assert!(d2.t_total_us >= d1.t_total_us - 1e-9);
    }
}

#[test]
fn assignment_never_loses_to_all_gpu() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0004);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..5);
        let costs: Vec<BranchCost> = (0..n)
            .map(|_| BranchCost {
                t_cpu_us: rng.gen_range(0.1f64..5000.0),
                t_gpu_us: rng.gen_range(0.1f64..5000.0),
                output_bytes: rng.gen_range(0u64..10_000_000),
            })
            .collect();
        let rate = rng.gen_range(0.1f64..50.0);
        let fixed = rng.gen_range(0.0f64..30.0);
        let sync = rng.gen_range(0.0f64..30.0);
        let all_gpu: f64 = costs.iter().map(|b| b.t_gpu_us).sum();
        let d = optimal_assignment(&costs, rate, fixed, sync);
        assert!(d.t_total_us <= all_gpu + 1e-9);
        assert!(d.t_gpu_only_us == all_gpu);
        assert!(d.improvement() >= 0.0);
    }
}

#[test]
fn random_plans_execute_losslessly() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0005);
    for _ in 0..16 {
        let assignments: Vec<usize> = (0..32).map(|_| rng.gen_range(0usize..3)).collect();
        let fractions: Vec<f64> = (0..32).map(|_| rng.gen_range(0.05f64..0.95)).collect();
        let seed = rng.gen_range(0u64..200);
        // Any structurally valid plan — random processor choices and split
        // fractions — must produce exactly the reference output.
        let graph = build(ModelKind::LeNet, ModelScale::Tiny);
        let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
        for id in graph.topo_order() {
            let node = graph.node(id).unwrap();
            let shapes: Vec<_> = node
                .inputs()
                .iter()
                .map(|i| graph.node(*i).unwrap().output_shape())
                .collect();
            let i = id.index();
            let choice = assignments[i % assignments.len()];
            let units = node.layer().partition_units(&shapes).unwrap_or(1);
            nodes[i].assignment = match choice {
                0 => Assignment::Gpu,
                1 => Assignment::Cpu,
                _ if node.layer().partitionable() && units >= 2 => Assignment::Split {
                    cpu_fraction: fractions[i % fractions.len()],
                },
                _ => Assignment::Gpu,
            };
        }
        let plan = ExecutionPlan {
            config: ExecutionConfig::edgenn(),
            nodes,
        };
        let input = Tensor::random(graph.input_shape().dims(), 1.0, seed);
        let reference = graph.forward(&input).unwrap();
        let outcome = functional::execute(&graph, &plan, &input).unwrap();
        assert!(outcome.output.approx_eq(&reference, 1e-4));
    }
}

#[test]
fn simulation_time_positive_and_layers_ordered() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0006);
    for _ in 0..8 {
        let seed = rng.gen_range(0u64..100);
        let jetson = platforms::jetson_agx_xavier();
        let runtime = Runtime::new(&jetson);
        let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let mut config = ExecutionConfig::edgenn();
        config.jitter = 0.1;
        config.jitter_seed = seed;
        let plan = tuner.plan(&graph, &runtime, config).unwrap();
        let report = runtime.simulate(&graph, &plan).unwrap();
        assert!(report.total_us > 0.0);
        for layer in &report.layers {
            assert!(layer.end_us >= layer.start_us);
            assert!(layer.end_us <= report.total_us + 1e-6);
        }
        // Events are consistent: no event ends after the reported total,
        // and no processor ever runs two activities at once.
        for event in &report.events {
            assert!(event.end_us <= report.total_us + 1e-6);
            assert!(event.duration_us() >= -1e-9);
        }
        assert!(
            edgenn_sim::trace::validate_events(&report.events).is_ok(),
            "{:?}",
            edgenn_sim::trace::validate_events(&report.events)
        );
    }
}

#[test]
fn jitter_bounds_total_time() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0007);
    for _ in 0..6 {
        let seed = rng.gen_range(0u64..50);
        // With jitter amplitude a, the total must stay within the
        // [1-a, 1+a]-scaled envelope of the jitter-free run (all kernel
        // durations scale by at most that factor; fixed costs don't grow).
        let jetson = platforms::jetson_agx_xavier();
        let runtime = Runtime::new(&jetson);
        let graph = build(ModelKind::AlexNet, ModelScale::Paper);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let clean_plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::baseline_gpu())
            .unwrap();
        let clean = runtime.simulate(&graph, &clean_plan).unwrap();
        let mut config = ExecutionConfig::baseline_gpu();
        config.jitter = 0.2;
        config.jitter_seed = seed;
        let jittered_plan = tuner.plan(&graph, &runtime, config).unwrap();
        let jittered = runtime.simulate(&graph, &jittered_plan).unwrap();
        assert!(jittered.total_us >= clean.total_us * 0.8 - 1.0);
        assert!(jittered.total_us <= clean.total_us * 1.2 + 1.0);
    }
}

#[test]
fn batch_execute_matches_forward_under_random_plans() {
    // Differential test for the pooled session: random assignment plans
    // over random models, executed as a batch through one Executor, must
    // match the single-threaded reference on every input.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0008);
    for _ in 0..12 {
        let kind = ModelKind::ALL[rng.gen_range(0..ModelKind::ALL.len())];
        let graph = build(kind, ModelScale::Tiny);
        let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
        for id in graph.topo_order() {
            let node = graph.node(id).unwrap();
            let shapes: Vec<_> = node
                .inputs()
                .iter()
                .map(|i| graph.node(*i).unwrap().output_shape())
                .collect();
            let units = node.layer().partition_units(&shapes).unwrap_or(1);
            let channels = node.layer().input_channels(&shapes).unwrap_or(1);
            nodes[id.index()].assignment = match rng.gen_range(0u8..4) {
                0 => Assignment::Gpu,
                1 => Assignment::Cpu,
                2 if node.layer().partitionable() && units >= 2 => Assignment::Split {
                    cpu_fraction: rng.gen_range(0.05f64..0.95),
                },
                3 if node.layer().input_split_supported() && channels >= 2 => {
                    Assignment::SplitInput {
                        cpu_fraction: rng.gen_range(0.05f64..0.95),
                    }
                }
                _ => Assignment::Gpu,
            };
        }
        let plan = ExecutionPlan {
            config: ExecutionConfig::edgenn(),
            nodes,
        };
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::random(graph.input_shape().dims(), 1.0, rng.gen_range(0u64..1000)))
            .collect();
        let executor = functional::Executor::new(&graph).unwrap();
        let outcomes = executor.batch_execute(&plan, &inputs).unwrap();
        for (input, outcome) in inputs.iter().zip(&outcomes) {
            let reference = graph.forward(input).unwrap();
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: pooled batch diverged from reference"
            );
        }
    }
}

#[test]
fn compiled_graphs_execute_losslessly_under_random_split_plans() {
    // The executor runs the *compiled* graph (fused epilogues, folded
    // constants, prepacked weights) under random processor choices and
    // split fractions; the reference is the raw, uncompiled graph. The
    // f32 path must match to merge tolerance, and the int8 path must
    // stay within the quantization bound — on every bundled model.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC04E_0009);
    for kind in ModelKind::ALL {
        let raw = build(kind, ModelScale::Tiny);
        let (graph, report) = compile(&raw, &CompileOptions::int8()).unwrap();
        assert!(graph.len() < raw.len(), "{kind}: compiler removed nothing");
        assert!(report.prepacked_nodes > 0, "{kind}: nothing prepacked");
        for _ in 0..3 {
            let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
            for id in graph.topo_order() {
                let node = graph.node(id).unwrap();
                let shapes: Vec<_> = node
                    .inputs()
                    .iter()
                    .map(|i| graph.node(*i).unwrap().output_shape())
                    .collect();
                let units = node.layer().partition_units(&shapes).unwrap_or(1);
                let channels = node.layer().input_channels(&shapes).unwrap_or(1);
                nodes[id.index()].assignment = match rng.gen_range(0u8..4) {
                    0 => Assignment::Gpu,
                    1 => Assignment::Cpu,
                    2 if node.layer().partitionable() && units >= 2 => Assignment::Split {
                        cpu_fraction: rng.gen_range(0.05f64..0.95),
                    },
                    3 if node.layer().input_split_supported() && channels >= 2 => {
                        Assignment::SplitInput {
                            cpu_fraction: rng.gen_range(0.05f64..0.95),
                        }
                    }
                    _ => Assignment::Gpu,
                };
            }
            let input = Tensor::random(graph.input_shape().dims(), 1.0, rng.gen_range(0u64..1000));
            let reference = raw.forward(&input).unwrap();

            let plan = ExecutionPlan {
                config: ExecutionConfig::edgenn(),
                nodes: nodes.clone(),
            };
            let outcome = functional::execute(&graph, &plan, &input).unwrap();
            assert!(
                outcome.output.approx_eq(&reference, 1e-4),
                "{kind}: compiled f32 execution diverged from raw reference"
            );

            let qplan = ExecutionPlan {
                config: ExecutionConfig::edgenn_int8(),
                nodes,
            };
            let qoutcome = functional::execute(&graph, &qplan, &input).unwrap();
            assert!(
                qoutcome.output.approx_eq(&reference, 0.05),
                "{kind}: compiled int8 execution outside the quantization bound"
            );
        }
    }
}
