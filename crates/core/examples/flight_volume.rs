//! Diagnostic: prints flight-record volume per model run, broken down by
//! kind, plus the cost of the per-request summarization (drain + causal
//! slice + profile build).

use std::collections::BTreeMap;
use std::time::Instant;

use edgenn_core::plan::ExecutionConfig;
use edgenn_core::prelude::*;
use edgenn_obs::{flight, ProfileSummary};
use edgenn_sim::platforms::jetson_agx_xavier;
use edgenn_tensor::Tensor;

fn main() {
    let platform = jetson_agx_xavier();
    let runtime = Runtime::new(&platform);
    for kind in [
        ModelKind::Fcnn,
        ModelKind::LeNet,
        ModelKind::AlexNet,
        ModelKind::Vgg16,
        ModelKind::SqueezeNet,
        ModelKind::ResNet18,
    ] {
        let graph = build(kind, ModelScale::Tiny);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let plan = tuner
            .plan(&graph, &runtime, ExecutionConfig::edgenn())
            .unwrap();
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
        edgenn_core::runtime::functional::execute(&graph, &plan, &input).unwrap();
        flight::enable();
        let marker = flight::mark();
        edgenn_core::runtime::functional::execute(&graph, &plan, &input).unwrap();
        let records = flight::drain_since(&marker);
        flight::disable();
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for r in &records {
            *by_kind.entry(format!("{:?}", r.kind)).or_default() += 1;
        }
        let root = records
            .iter()
            .find(|r| r.kind == flight::SpanKind::Request)
            .map_or(0, |r| r.id);
        let n = 2000;
        let t = Instant::now();
        for _ in 0..n {
            let slice = flight::causal_slice(&records, root);
            let p = ProfileSummary::build(&slice, 0);
            std::hint::black_box(p);
        }
        let slice_build_ns = t.elapsed().as_nanos() as f64 / f64::from(n);
        flight::enable();
        let t = Instant::now();
        for _ in 0..n {
            let marker = flight::mark();
            std::hint::black_box(flight::drain_since(&marker).len());
        }
        let drain_ns = t.elapsed().as_nanos() as f64 / f64::from(n);
        flight::disable();
        let iters = 60;
        let mut off = f64::INFINITY;
        let mut on = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            edgenn_core::runtime::functional::execute(&graph, &plan, &input).unwrap();
            off = off.min(t.elapsed().as_secs_f64() * 1e9);
            flight::enable();
            let t = Instant::now();
            edgenn_core::runtime::functional::execute(&graph, &plan, &input).unwrap();
            on = on.min(t.elapsed().as_secs_f64() * 1e9);
            flight::disable();
        }
        println!(
            "{kind:?}: total {} records  drain(empty) {drain_ns:.0} ns  slice+build {slice_build_ns:.0} ns  off {off:.0} on {on:.0} tax {:.0} ns ({:.1}%)  {:?}",
            records.len(),
            on - off,
            (on / off - 1.0) * 100.0,
            by_kind
        );
    }
}
