//! The metrics registry: counters, gauges, log-bucketed histograms.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde_json::{Map, Value};

/// A sorted label set (`model`, `platform`, `policy`, ...).
///
/// Labels sort by key so that `Labels::new().with("a", 1).with("b", 2)`
/// and the reverse insertion order address the same time series.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    pairs: Vec<(String, String)>,
}

impl Labels {
    /// An empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) one label.
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        let key = key.into();
        self.pairs.retain(|(k, _)| *k != key);
        self.pairs.push((key, value.to_string()));
        self.pairs.sort();
        self
    }

    /// Merges `other` over `self` (other wins on key collisions).
    pub fn merged_with(&self, other: &Labels) -> Labels {
        let mut out = self.clone();
        for (k, v) in &other.pairs {
            out = out.with(k.clone(), v);
        }
        out
    }

    /// True when no labels are set.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Prometheus-style rendering: `{k="v",k2="v2"}` or `""` when empty.
    fn prometheus(&self) -> String {
        if self.pairs.is_empty() {
            return String::new();
        }
        let body: Vec<String> = self
            .pairs
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    fn to_json(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in &self.pairs {
            map.insert(k.clone(), Value::String(v.clone()));
        }
        Value::Object(map)
    }
}

/// Number of log buckets; bucket `i` spans `(2^(i-11), 2^(i-10)]`, so the
/// histogram covers ~0.0005 up to ~9e15 — microseconds from sub-ns noise
/// to hours, or byte counts up to petabytes.
const BUCKETS: usize = 64;

/// Upper edge of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    2f64.powi(i as i32 - 10)
}

/// Bucket index for a value.
fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    let idx = v.log2().ceil() + 10.0;
    idx.clamp(0.0, (BUCKETS - 1) as f64) as usize
}

/// A log-bucketed histogram.
#[derive(Debug, Clone)]
struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, v: f64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Approximate quantile by linear interpolation inside the bucket
    /// that crosses rank `q * count`.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if (next as f64) >= rank {
                let lower = if i == 0 { 0.0 } else { bucket_upper(i - 1) };
                let upper = bucket_upper(i).min(self.max);
                let within = (rank - cumulative as f64) / c as f64;
                return (lower + (upper - lower) * within).clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

type SeriesKey = (String, Labels);

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<SeriesKey, f64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

/// A thread-safe metrics registry with base labels applied to every
/// series (typically `model`/`platform`/`policy`).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    base: Labels,
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry with no base labels.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry whose series all carry `base` labels.
    pub fn with_labels(base: Labels) -> Self {
        Self {
            base,
            inner: Mutex::default(),
        }
    }

    /// The base labels.
    pub fn base_labels(&self) -> &Labels {
        &self.base
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A poisoned lock only happens if a panicking thread died mid-
        // update; metrics are best-effort, so keep serving.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `by` to a counter (creates it at 0 first).
    pub fn inc_counter(&self, name: &str, by: f64) {
        self.inc_counter_with(name, &Labels::new(), by);
    }

    /// Adds `by` to a counter with extra labels on top of the base set.
    pub fn inc_counter_with(&self, name: &str, extra: &Labels, by: f64) {
        let key = (name.to_string(), self.base.merged_with(extra));
        *self.lock().counters.entry(key).or_insert(0.0) += by;
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.set_gauge_with(name, &Labels::new(), value);
    }

    /// Sets a gauge with extra labels on top of the base set.
    pub fn set_gauge_with(&self, name: &str, extra: &Labels, value: f64) {
        let key = (name.to_string(), self.base.merged_with(extra));
        self.lock().gauges.insert(key, value);
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, &Labels::new(), value);
    }

    /// Records one histogram observation with extra labels.
    pub fn observe_with(&self, name: &str, extra: &Labels, value: f64) {
        let key = (name.to_string(), self.base.merged_with(extra));
        self.lock()
            .histograms
            .entry(key)
            .or_default()
            .observe(value);
    }

    /// Reads a counter back (None when never incremented).
    pub fn counter_value(&self, name: &str) -> Option<f64> {
        let key = (name.to_string(), self.base.clone());
        self.lock().counters.get(&key).copied()
    }

    /// Reads a gauge back.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let key = (name.to_string(), self.base.clone());
        self.lock().gauges.get(&key).copied()
    }

    /// Summarizes a histogram (None when it has no observations).
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let key = (name.to_string(), self.base.clone());
        self.lock().histograms.get(&key).map(Histogram::snapshot)
    }

    /// Full JSON exposition: base labels plus every series.
    ///
    /// Histograms carry `count/sum/min/max/p50/p95/p99` and their
    /// non-empty log buckets as `{le, count}` pairs.
    pub fn to_json(&self) -> Value {
        let inner = self.lock();
        let mut root = Map::new();
        root.insert("labels".to_string(), self.base.to_json());

        let mut counters = Vec::new();
        for ((name, labels), value) in &inner.counters {
            let mut entry = Map::new();
            entry.insert("name".to_string(), Value::String(name.clone()));
            entry.insert("labels".to_string(), labels.to_json());
            entry.insert("value".to_string(), Value::Number(*value));
            counters.push(Value::Object(entry));
        }
        root.insert("counters".to_string(), Value::Array(counters));

        let mut gauges = Vec::new();
        for ((name, labels), value) in &inner.gauges {
            let mut entry = Map::new();
            entry.insert("name".to_string(), Value::String(name.clone()));
            entry.insert("labels".to_string(), labels.to_json());
            entry.insert("value".to_string(), Value::Number(*value));
            gauges.push(Value::Object(entry));
        }
        root.insert("gauges".to_string(), Value::Array(gauges));

        let mut histograms = Vec::new();
        for ((name, labels), hist) in &inner.histograms {
            let snap = hist.snapshot();
            let mut entry = Map::new();
            entry.insert("name".to_string(), Value::String(name.clone()));
            entry.insert("labels".to_string(), labels.to_json());
            entry.insert("count".to_string(), Value::Number(snap.count as f64));
            entry.insert("sum".to_string(), Value::Number(snap.sum));
            entry.insert("min".to_string(), Value::Number(snap.min));
            entry.insert("max".to_string(), Value::Number(snap.max));
            entry.insert("p50".to_string(), Value::Number(snap.p50));
            entry.insert("p95".to_string(), Value::Number(snap.p95));
            entry.insert("p99".to_string(), Value::Number(snap.p99));
            let mut buckets = Vec::new();
            for (i, &count) in hist.counts.iter().enumerate() {
                if count > 0 {
                    let mut b = Map::new();
                    b.insert("le".to_string(), Value::Number(bucket_upper(i)));
                    b.insert("count".to_string(), Value::Number(count as f64));
                    buckets.push(Value::Object(b));
                }
            }
            entry.insert("buckets".to_string(), Value::Array(buckets));
            histograms.push(Value::Object(entry));
        }
        root.insert("histograms".to_string(), Value::Array(histograms));
        Value::Object(root)
    }

    /// Prometheus text exposition (histograms as cumulative `_bucket`
    /// series plus `_sum`/`_count`).
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.lock();
        let mut out = String::new();
        let mut last_name = String::new();
        for ((name, labels), value) in &inner.counters {
            if *name != last_name {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_name = name.clone();
            }
            let _ = writeln!(out, "{name}{} {value}", labels.prometheus());
        }
        last_name.clear();
        for ((name, labels), value) in &inner.gauges {
            if *name != last_name {
                let _ = writeln!(out, "# TYPE {name} gauge");
                last_name = name.clone();
            }
            let _ = writeln!(out, "{name}{} {value}", labels.prometheus());
        }
        last_name.clear();
        for ((name, labels), hist) in &inner.histograms {
            if *name != last_name {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_name = name.clone();
            }
            let mut cumulative = 0u64;
            for (i, &count) in hist.counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let le = labels.merged_with(&Labels::new().with("le", bucket_upper(i)));
                let _ = writeln!(out, "{name}_bucket{} {cumulative}", le.prometheus());
            }
            let inf = labels.merged_with(&Labels::new().with("le", "+Inf"));
            let _ = writeln!(out, "{name}_bucket{} {}", inf.prometheus(), hist.count);
            let _ = writeln!(out, "{name}_sum{} {}", labels.prometheus(), hist.sum);
            let _ = writeln!(out, "{name}_count{} {}", labels.prometheus(), hist.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_under_labels() {
        let reg = MetricsRegistry::with_labels(Labels::new().with("model", "lenet"));
        reg.inc_counter("edgenn_kernels_total", 3.0);
        reg.inc_counter("edgenn_kernels_total", 2.0);
        assert_eq!(reg.counter_value("edgenn_kernels_total"), Some(5.0));
        let json = reg.to_json();
        assert_eq!(json["counters"][0]["labels"]["model"], "lenet");
        assert_eq!(json["counters"][0]["value"], 5);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("depth", 3.0);
        reg.set_gauge("depth", 1.5);
        assert_eq!(reg.gauge_value("depth"), Some(1.5));
    }

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded() {
        let reg = MetricsRegistry::new();
        for i in 1..=1000 {
            reg.observe("latency_us", f64::from(i));
        }
        let snap = reg.histogram_snapshot("latency_us").unwrap();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 1000.0);
        assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
        assert!(snap.p50 >= snap.min && snap.p99 <= snap.max);
        // Log buckets are coarse, but the median of 1..=1000 must land
        // in the same power-of-two bucket as 500.
        assert!((256.0..=1000.0).contains(&snap.p50), "p50 = {}", snap.p50);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zeros() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0.0);
        assert_eq!(snap.min, 0.0, "empty min must not leak +inf");
        assert_eq!(snap.max, 0.0);
        assert_eq!(snap.p50, 0.0);
        assert_eq!(snap.p95, 0.0);
        assert_eq!(snap.p99, 0.0);
    }

    #[test]
    fn single_sample_collapses_every_percentile_to_it() {
        // One observation sits alone in its bucket; interpolation must
        // clamp every quantile to the sample itself, even when the
        // sample sits exactly on a bucket's upper edge (a power of two).
        for v in [37.5, 64.0, 1.0, 0.25] {
            let mut h = Histogram::default();
            h.observe(v);
            let snap = h.snapshot();
            assert_eq!(snap.count, 1);
            assert_eq!(snap.min, v);
            assert_eq!(snap.max, v);
            assert_eq!(snap.p50, v, "p50 of single sample {v}");
            assert_eq!(snap.p95, v, "p95 of single sample {v}");
            assert_eq!(snap.p99, v, "p99 of single sample {v}");
        }
    }

    #[test]
    fn all_samples_in_one_bucket_stay_inside_it() {
        // 100 identical values: every percentile must equal the value,
        // not interpolate across the bucket's full [lower, upper) span.
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(300.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50, 300.0);
        assert_eq!(snap.p99, 300.0);

        // Distinct values confined to one bucket (256, 512]: percentiles
        // must stay within the observed [min, max], never the bucket
        // edges outside it.
        let mut h = Histogram::default();
        for v in [260.0, 300.0, 400.0, 500.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert!(snap.p50 >= 260.0 && snap.p50 <= 500.0, "p50 = {}", snap.p50);
        assert!(snap.p99 >= 260.0 && snap.p99 <= 500.0, "p99 = {}", snap.p99);
        assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
    }

    #[test]
    fn zero_and_negative_values_land_in_the_first_bucket() {
        let mut h = Histogram::default();
        h.observe(0.0);
        h.observe(-5.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, -5.0);
        // Quantiles clamp to the observed range.
        assert!(snap.p50 >= snap.min && snap.p99 <= snap.max);
    }

    #[test]
    fn histogram_handles_tiny_and_huge_values() {
        let reg = MetricsRegistry::new();
        reg.observe("wide", 1e-9);
        reg.observe("wide", 1e15);
        let snap = reg.histogram_snapshot("wide").unwrap();
        assert_eq!(snap.count, 2);
        assert!(snap.p99 <= snap.max);
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let reg = MetricsRegistry::with_labels(Labels::new().with("model", "alexnet"));
        reg.observe("edgenn_request_latency_us", 100.0);
        reg.observe("edgenn_request_latency_us", 200.0);
        reg.inc_counter("edgenn_copies_total", 1.0);
        let text = reg.to_prometheus_text();
        assert!(text.contains("# TYPE edgenn_request_latency_us histogram"));
        assert!(text.contains("edgenn_request_latency_us_count{model=\"alexnet\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("# TYPE edgenn_copies_total counter"));
    }

    #[test]
    fn label_order_does_not_matter() {
        let a = Labels::new().with("a", 1).with("b", 2);
        let b = Labels::new().with("b", 2).with("a", 1);
        assert_eq!(a, b);
    }
}
