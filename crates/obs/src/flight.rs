//! The flight recorder: an always-on, lock-free continuous profiler for
//! the functional execution engine.
//!
//! The [`Recorder`](crate::Recorder) keeps a rich, heap-allocated event
//! stream behind a mutex — perfect for simulator traces, far too heavy
//! for the real execution hot path, where a conv layer's GEMM runs in
//! tens of microseconds and a mutexed `String`-carrying event would cost
//! more than the work it describes. This module is the complementary
//! substrate:
//!
//! * **Fixed-size records.** One span is seven `u64` words: a seqlock
//!   word, start/end monotonic nanoseconds, span id, causal parent id,
//!   packed kind/worker/node, and a free argument (byte count, attempt
//!   number). No allocation ever happens on the record path.
//! * **Per-worker rings.** Records land in one of a set of ring
//!   buffers, selected by a thread-local ordinal. Slots are claimed with
//!   a single `fetch_add`; wrap-around silently overwrites the oldest
//!   record and counts it as dropped — flight-recorder semantics: the
//!   last *N* records always survive, and loss is observable, never
//!   silent. Ring capacity is sized from the workload via [`reserve`]
//!   (the engine passes a node-count-derived estimate at executor
//!   construction), so one request's window fits even on deep models.
//! * **Seqlock slots.** Every slot carries a sequence word so the
//!   drain-side reader can detect a record that was overwritten while
//!   being read and skip it instead of reporting a torn span. All slot
//!   accesses are atomic, so this is safe Rust end to end.
//! * **Causal parents.** Span ids are process-unique; each record names
//!   its parent, threaded across worker threads via an explicit
//!   thread-local ([`with_parent`]) that pooled task closures restore on
//!   the worker. The drain side can therefore rebuild a per-request tree
//!   even when several requests interleave on the same pool.
//!
//! On top of the raw rings sit the drain/merge layer
//! ([`mark`]/[`drain_since`]/[`causal_slice`]), the per-request
//! [`ProfileSummary`] and per-node attribution ([`node_profiles`]), the
//! fault black box ([`blackbox_dump`]), and Chrome/Perfetto trace export
//! ([`chrome_entries`]).
//!
//! The recorder is process-global and disabled by default; when
//! disabled, an instrumentation site costs one relaxed atomic load.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde_json::{Map, Value};

/// Number of independent ring buffers. Threads hash onto rings by a
/// monotonically assigned ordinal, so up to this many threads record
/// with zero contention; beyond it, threads share rings (still correct —
/// slot claims are atomic — just occasionally contended).
const RINGS: usize = 8;

/// Base records retained per ring (generation 0). Each ring generation
/// doubles this, so capacity adapts to the graph being profiled (see
/// [`reserve`]) instead of silently dropping most of a deep model's
/// request window.
const BASE_RING_RECORDS: usize = 4096;

/// Maximum number of ring generations. Capacity doubles per generation,
/// so the deepest configuration retains `4096 << 7` = 512 Ki records
/// per ring — far beyond any single request.
const GENERATIONS: usize = 8;

/// Records retained per ring in generation `gen`.
fn ring_capacity(gen: usize) -> usize {
    BASE_RING_RECORDS << gen
}

/// `u64` words per slot: seq + start + end + id + parent + meta + arg.
const WORDS: usize = 7;

/// What a span measured. Stored in the low byte of the meta word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One end-to-end request through the functional engine (root span).
    Request,
    /// One graph node's forward execution (wall time, all phases).
    Node,
    /// Data layout phase: im2col unfold or GEMM B-panel packing.
    Pack,
    /// Arithmetic phase: the GEMM/matvec inner loops.
    Compute,
    /// Output stitching: merging split-execution partial results.
    Merge,
    /// Time a pooled task spent queued before a worker picked it up.
    QueueWait,
    /// A pooled task body running on a worker (or inline on the driver).
    TaskRun,
    /// Instant: a scratch-arena acquisition served from reused capacity.
    ArenaHit,
    /// Instant: a scratch-arena acquisition that had to grow (allocate).
    ArenaMiss,
    /// Instant: the resilience layer retried a faulted kernel.
    Retry,
    /// Instant: the resilience layer fell back to the reference path.
    Fallback,
    /// Instant: the pool lost a worker mid-run.
    WorkerLoss,
    /// Instant: an admission-control decision on an incoming serve
    /// request (`arg` = 1 admitted, 0 rejected).
    Admission,
    /// Dynamic-batcher coalescing window: from the moment a batch's
    /// first request becomes eligible to the batch dispatch (`arg` =
    /// batch size).
    BatchForm,
    /// Instant: the SLO guard degraded a request's plan
    /// (hybrid→single-processor or f32→int8) to protect its deadline.
    Degrade,
    /// Instant: the SLO guard shed a request that degradation could
    /// not save.
    Shed,
}

impl SpanKind {
    /// Every kind, in code order (used by docs-sync and exhaustive tests).
    pub const ALL: [SpanKind; 16] = [
        SpanKind::Request,
        SpanKind::Node,
        SpanKind::Pack,
        SpanKind::Compute,
        SpanKind::Merge,
        SpanKind::QueueWait,
        SpanKind::TaskRun,
        SpanKind::ArenaHit,
        SpanKind::ArenaMiss,
        SpanKind::Retry,
        SpanKind::Fallback,
        SpanKind::WorkerLoss,
        SpanKind::Admission,
        SpanKind::BatchForm,
        SpanKind::Degrade,
        SpanKind::Shed,
    ];

    /// Stable wire code (1-based; 0 means "empty slot").
    fn code(self) -> u64 {
        match self {
            SpanKind::Request => 1,
            SpanKind::Node => 2,
            SpanKind::Pack => 3,
            SpanKind::Compute => 4,
            SpanKind::Merge => 5,
            SpanKind::QueueWait => 6,
            SpanKind::TaskRun => 7,
            SpanKind::ArenaHit => 8,
            SpanKind::ArenaMiss => 9,
            SpanKind::Retry => 10,
            SpanKind::Fallback => 11,
            SpanKind::WorkerLoss => 12,
            SpanKind::Admission => 13,
            SpanKind::BatchForm => 14,
            SpanKind::Degrade => 15,
            SpanKind::Shed => 16,
        }
    }

    fn from_code(code: u64) -> Option<SpanKind> {
        SpanKind::ALL.get(code.wrapping_sub(1) as usize).copied()
    }

    /// Snake-case stage name, used in profiles, JSON, and trace export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Node => "node",
            SpanKind::Pack => "pack",
            SpanKind::Compute => "compute",
            SpanKind::Merge => "merge",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::TaskRun => "task_run",
            SpanKind::ArenaHit => "arena_hit",
            SpanKind::ArenaMiss => "arena_miss",
            SpanKind::Retry => "retry",
            SpanKind::Fallback => "fallback",
            SpanKind::WorkerLoss => "worker_loss",
            SpanKind::Admission => "admission",
            SpanKind::BatchForm => "batch_form",
            SpanKind::Degrade => "degrade",
            SpanKind::Shed => "shed",
        }
    }

    /// True for point-in-time markers (zero-duration by construction).
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            SpanKind::ArenaHit
                | SpanKind::ArenaMiss
                | SpanKind::Retry
                | SpanKind::Fallback
                | SpanKind::WorkerLoss
                | SpanKind::Admission
                | SpanKind::Degrade
                | SpanKind::Shed
        )
    }
}

/// One decoded flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Causal parent span id (0 = no parent / root).
    pub parent: u64,
    /// What the span measured.
    pub kind: SpanKind,
    /// Graph node id the span belongs to (`u32::MAX` = not node-scoped).
    pub node: u32,
    /// Recording thread's worker ordinal (0 = driver / first thread).
    pub worker: u16,
    /// Start, monotonic nanoseconds since the process flight epoch.
    pub start_ns: u64,
    /// End, monotonic nanoseconds (equal to `start_ns` for instants).
    pub end_ns: u64,
    /// Kind-specific argument: bytes for pack/arena spans, attempt
    /// number for retries, task sequence for pool spans, 0 otherwise.
    pub arg: u64,
}

/// Node id used when a span is not attributed to a graph node.
pub const NO_NODE: u32 = u32::MAX;

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 / 1e3
    }

    /// JSON form (used by `edgenn profile --json` and black-box dumps).
    pub fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("id".to_string(), Value::Number(self.id as f64));
        map.insert("parent".to_string(), Value::Number(self.parent as f64));
        map.insert(
            "kind".to_string(),
            Value::String(self.kind.name().to_string()),
        );
        map.insert("node".to_string(), Value::Number(f64::from(self.node)));
        map.insert("worker".to_string(), Value::Number(f64::from(self.worker)));
        map.insert("start_ns".to_string(), Value::Number(self.start_ns as f64));
        map.insert("end_ns".to_string(), Value::Number(self.end_ns as f64));
        map.insert("arg".to_string(), Value::Number(self.arg as f64));
        Value::Object(map)
    }
}

/// One ring of seqlock-guarded slots.
struct Ring {
    /// Claim cursor: total records ever claimed in this ring.
    cursor: AtomicU64,
    /// Records this ring retains (fixed for the ring's lifetime).
    records: usize,
    /// `records * WORDS` atomic words.
    slots: Vec<AtomicU64>,
}

impl Ring {
    fn new(records: usize) -> Ring {
        let mut slots = Vec::with_capacity(records * WORDS);
        slots.resize_with(records * WORDS, || AtomicU64::new(0));
        Ring {
            cursor: AtomicU64::new(0),
            records,
            slots,
        }
    }

    /// Writes one record. Lock-free: one `fetch_add` to claim a slot,
    /// then plain atomic stores guarded by the slot's sequence word.
    fn write(&self, rec: &SpanRecord) {
        let claim = self.cursor.fetch_add(1, Ordering::Relaxed);
        let base = (claim as usize % self.records) * WORDS;
        let seq = &self.slots[base];
        // Mark the slot as in-flight so a concurrent drain skips it.
        seq.store(0, Ordering::Release);
        fence(Ordering::Release);
        let meta = rec.kind.code() | (u64::from(rec.worker) << 8) | (u64::from(rec.node) << 24);
        self.slots[base + 1].store(rec.start_ns, Ordering::Relaxed);
        self.slots[base + 2].store(rec.end_ns, Ordering::Relaxed);
        self.slots[base + 3].store(rec.id, Ordering::Relaxed);
        self.slots[base + 4].store(rec.parent, Ordering::Relaxed);
        self.slots[base + 5].store(meta, Ordering::Relaxed);
        self.slots[base + 6].store(rec.arg, Ordering::Relaxed);
        // Publish: sequence = claim + 1 (nonzero, identifies the claim).
        seq.store(claim + 1, Ordering::Release);
    }

    /// Reads the record at `claim` if it is still intact (not overwritten
    /// or mid-write). Seqlock read: sequence must match before and after.
    fn read(&self, claim: u64) -> Option<SpanRecord> {
        let base = (claim as usize % self.records) * WORDS;
        let seq = &self.slots[base];
        if seq.load(Ordering::Acquire) != claim + 1 {
            return None;
        }
        let start_ns = self.slots[base + 1].load(Ordering::Relaxed);
        let end_ns = self.slots[base + 2].load(Ordering::Relaxed);
        let id = self.slots[base + 3].load(Ordering::Relaxed);
        let parent = self.slots[base + 4].load(Ordering::Relaxed);
        let meta = self.slots[base + 5].load(Ordering::Relaxed);
        let arg = self.slots[base + 6].load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if seq.load(Ordering::Acquire) != claim + 1 {
            return None;
        }
        let kind = SpanKind::from_code(meta & 0xff)?;
        Some(SpanRecord {
            id,
            parent,
            kind,
            node: (meta >> 24) as u32,
            worker: ((meta >> 8) & 0xffff) as u16,
            start_ns,
            end_ns,
            arg,
        })
    }
}

/// A black-box snapshot taken when something went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackBox {
    /// Why the dump was taken ("fault: conv3", "deadline-miss", ...).
    pub reason: String,
    /// When it was taken (monotonic ns since the flight epoch).
    pub captured_ns: u64,
    /// The surviving records, causally ordered (oldest first).
    pub records: Vec<SpanRecord>,
}

impl BlackBox {
    /// JSON form for dump files and `edgenn profile --json`.
    pub fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("reason".to_string(), Value::String(self.reason.clone()));
        map.insert(
            "captured_ns".to_string(),
            Value::Number(self.captured_ns as f64),
        );
        map.insert(
            "records".to_string(),
            Value::Array(self.records.iter().map(SpanRecord::to_value).collect()),
        );
        Value::Object(map)
    }
}

/// The process-global recorder state.
///
/// Rings live in **generations**: fixed-size ring sets whose capacity
/// doubles per generation. [`reserve`] publishes a larger generation
/// when a caller (the execution engine, sized from its graph) needs a
/// bigger retained window; writers pick up the current generation with
/// one extra atomic load, so the record path stays lock-free. Old
/// generations stop receiving writes but stay drainable, so markers
/// taken before a growth still resolve.
struct Flight {
    generations: [OnceLock<Vec<Ring>>; GENERATIONS],
    current_gen: AtomicUsize,
    /// Serializes [`reserve`] growth decisions (not the record path).
    grow: Mutex<()>,
    next_id: AtomicU64,
    epoch: Instant,
    blackbox: Mutex<Option<BlackBox>>,
}

/// Fast-path gate, separate from the lazily built [`Flight`] so a
/// disabled instrumentation site is a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

static FLIGHT: OnceLock<Flight> = OnceLock::new();

/// Next thread ordinal; the first thread to record becomes worker 0.
static NEXT_ORDINAL: AtomicUsize = AtomicUsize::new(0);

/// Span ids are handed out to threads in blocks of this size, so the
/// hot path pays a thread-local bump instead of a contended global
/// `fetch_add`. Ids stay unique and are monotonic *per thread*; across
/// threads numeric order no longer implies allocation order.
const ID_BLOCK: u64 = 256;

thread_local! {
    /// Lazily assigned per-thread ordinal (ring selector + worker id).
    static ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Causal parent for spans begun on this thread.
    static PARENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's `(next, limit)` window into the global id space.
    static ID_CACHE: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Allocates a span id from the thread's block, refilling from the
/// global counter once per [`ID_BLOCK`] spans.
fn next_span_id() -> u64 {
    ID_CACHE.with(|c| {
        let (next, limit) = c.get();
        if next < limit {
            c.set((next + 1, limit));
            next
        } else {
            let start = flight().next_id.fetch_add(ID_BLOCK, Ordering::Relaxed);
            c.set((start + 1, start + ID_BLOCK));
            start
        }
    })
}

fn flight() -> &'static Flight {
    FLIGHT.get_or_init(|| Flight {
        generations: std::array::from_fn(|_| OnceLock::new()),
        current_gen: AtomicUsize::new(0),
        grow: Mutex::new(()),
        next_id: AtomicU64::new(1),
        epoch: Instant::now(),
        blackbox: Mutex::new(None),
    })
}

/// Builds the ring set of one generation.
fn make_rings(gen: usize) -> Vec<Ring> {
    (0..RINGS).map(|_| Ring::new(ring_capacity(gen))).collect()
}

/// The currently published generation and its rings.
fn current_rings(f: &'static Flight) -> (usize, &'static [Ring]) {
    let gen = f.current_gen.load(Ordering::Acquire);
    (gen, f.generations[gen].get_or_init(|| make_rings(gen)))
}

/// Rings of generation `gen`, if that generation was ever allocated.
fn gen_rings(f: &'static Flight, gen: usize) -> Option<&'static [Ring]> {
    f.generations.get(gen)?.get().map(Vec::as_slice)
}

/// Records retained per ring in the currently published generation.
/// Each thread's records land in one ring, so this is also the longest
/// single-threaded record window guaranteed to survive a drain.
pub fn retained_records_per_ring() -> usize {
    ring_capacity(flight().current_gen.load(Ordering::Acquire))
}

/// Ensures every ring retains at least `min_records` records, growing
/// to a larger ring generation when needed. The engine calls this once
/// per executor with an estimate derived from its graph's node count,
/// so a deep model's per-request profile window survives intact
/// instead of losing its oldest spans to wrap-around.
///
/// Growth publishes a fresh (empty) ring set: records already written
/// stay drainable through markers taken before the growth, but a
/// marker taken afterwards only sees post-growth records. Callers
/// should therefore reserve *before* the window they care about —
/// which is exactly what sizing at executor construction does.
pub fn reserve(min_records: usize) {
    let f = flight();
    let _guard = f
        .grow
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let current = f.current_gen.load(Ordering::Acquire);
    if ring_capacity(current) >= min_records {
        return;
    }
    let mut target = current;
    while target + 1 < GENERATIONS && ring_capacity(target) < min_records {
        target += 1;
    }
    // Allocate before publishing so writers never observe an empty slot.
    f.generations[target].get_or_init(|| make_rings(target));
    f.current_gen.store(target, Ordering::Release);
}

fn ordinal() -> usize {
    ORDINAL.with(|o| {
        let v = o.get();
        if v != usize::MAX {
            return v;
        }
        let assigned = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
        o.set(assigned);
        assigned
    })
}

/// Is the flight recorder currently recording?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on (idempotent). The rings are allocated on first
/// use and kept for the life of the process.
pub fn enable() {
    flight();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording. Already-written records stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Monotonic nanoseconds since the recorder epoch (first use).
pub fn now_ns() -> u64 {
    u64::try_from(flight().epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The calling thread's current causal parent span id (0 = none).
pub fn current_parent() -> u64 {
    PARENT.with(Cell::get)
}

/// Runs `f` with `parent` as the thread's causal parent, restoring the
/// previous parent afterwards. Pool task closures use this to carry the
/// submitting span's identity onto the worker thread.
pub fn with_parent<R>(parent: u64, f: impl FnOnce() -> R) -> R {
    let prev = PARENT.with(|p| p.replace(parent));
    let result = f();
    PARENT.with(|p| p.set(prev));
    result
}

/// An open span: identity captured at [`begin`], recorded at [`end`].
/// `Copy` so it can ride through closures without borrow gymnastics.
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    id: u64,
    parent: u64,
    kind: SpanKind,
    node: u32,
    start_ns: u64,
}

impl OpenSpan {
    /// The span's id, for use as a causal parent of child spans.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A disabled placeholder (recording it is a no-op).
    pub fn disabled() -> OpenSpan {
        OpenSpan {
            id: 0,
            parent: 0,
            kind: SpanKind::Node,
            node: NO_NODE,
            start_ns: 0,
        }
    }
}

/// Opens a span of `kind` on `node`, parented to the thread's current
/// causal parent. Returns a disabled no-op span when recording is off.
#[inline]
pub fn begin(kind: SpanKind, node: u32) -> OpenSpan {
    if !enabled() {
        return OpenSpan::disabled();
    }
    OpenSpan {
        id: next_span_id(),
        parent: current_parent(),
        kind,
        node,
        start_ns: now_ns(),
    }
}

/// Closes and records `span`. Returns the span id (0 when disabled).
#[inline]
pub fn end(span: OpenSpan) -> u64 {
    end_with(span, 0)
}

/// Closes and records `span` with a kind-specific argument.
pub fn end_with(span: OpenSpan, arg: u64) -> u64 {
    if span.id == 0 || !enabled() {
        return 0;
    }
    let rec = SpanRecord {
        id: span.id,
        parent: span.parent,
        kind: span.kind,
        node: span.node,
        worker: worker_ordinal(),
        start_ns: span.start_ns,
        end_ns: now_ns(),
        arg,
    };
    write_record(&rec);
    rec.id
}

/// Records a zero-duration marker. Returns the span id (0 when disabled).
pub fn instant(kind: SpanKind, node: u32, arg: u64) -> u64 {
    if !enabled() {
        return 0;
    }
    let t = now_ns();
    let rec = SpanRecord {
        id: next_span_id(),
        parent: current_parent(),
        kind,
        node,
        worker: worker_ordinal(),
        start_ns: t,
        end_ns: t,
        arg,
    };
    write_record(&rec);
    rec.id
}

/// Records a span with explicit timestamps and parent. Used for spans
/// whose start predates the recording thread (queue-wait: claimed when
/// the task was submitted, recorded when a worker picks it up) and for
/// synthesized phase attribution (aggregate pack time inside one GEMM).
/// Returns the span id (0 when disabled).
pub fn record_manual(
    kind: SpanKind,
    node: u32,
    parent: u64,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) -> u64 {
    if !enabled() {
        return 0;
    }
    let rec = SpanRecord {
        id: next_span_id(),
        parent,
        kind,
        node,
        worker: worker_ordinal(),
        start_ns,
        end_ns: end_ns.max(start_ns),
        arg,
    };
    write_record(&rec);
    rec.id
}

/// Routes by `rec.worker` (already the thread's ordinal, resolved once
/// by the caller) instead of re-reading the thread-local.
fn write_record(rec: &SpanRecord) {
    let (_, rings) = current_rings(flight());
    rings[usize::from(rec.worker) % RINGS].write(rec);
}

/// The calling thread's worker ordinal (assigned on first record).
pub fn worker_ordinal() -> u16 {
    (ordinal() % usize::from(u16::MAX)) as u16
}

/// A drain position: the ring generation and its per-ring cursors at
/// the time of [`mark`]. A marker taken before a [`reserve`] growth
/// still drains correctly — the drain walks every generation from the
/// marker's up to the current one.
#[derive(Debug, Clone, Copy)]
pub struct Marker {
    gen: usize,
    cursors: [u64; RINGS],
}

/// Snapshots the current ring cursors so a later [`drain_since`] returns
/// only records written after this point. Allocation-free: the engine
/// calls this once per request.
pub fn mark() -> Marker {
    let (gen, rings) = current_rings(flight());
    let mut cursors = [0u64; RINGS];
    for (slot, ring) in cursors.iter_mut().zip(rings.iter()) {
        *slot = ring.cursor.load(Ordering::Acquire);
    }
    Marker { gen, cursors }
}

/// Drains every intact record written since `marker`, across all rings,
/// sorted by start time (ties broken by span id). Records overwritten by
/// ring wrap-around are skipped — they are visible in
/// [`dropped_records`], never silently absent.
pub fn drain_since(marker: &Marker) -> Vec<SpanRecord> {
    let mut out = drain_since_unsorted(marker);
    out.sort_by_key(|r| (r.start_ns, r.id));
    out
}

/// [`drain_since`] without the start-time sort — ring order. The sort
/// only matters for human-ordered output (trace export, black box);
/// summarization does not need it.
fn drain_since_unsorted(marker: &Marker) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    drain_since_into(marker, &mut out);
    out
}

/// Appends every intact record written since `marker` to `out`, in
/// ring order, walking every generation from the marker's to the
/// current one (the marker's cursors gate only its own generation;
/// later generations start empty, so they drain from zero).
fn drain_since_into(marker: &Marker, out: &mut Vec<SpanRecord>) {
    let f = flight();
    let current = f.current_gen.load(Ordering::Acquire);
    for gen in marker.gen..=current {
        let Some(rings) = gen_rings(f, gen) else {
            continue;
        };
        for (idx, ring) in rings.iter().enumerate() {
            let since = if gen == marker.gen {
                marker.cursors[idx]
            } else {
                0
            };
            let hi = ring.cursor.load(Ordering::Acquire);
            let lo = since.max(hi.saturating_sub(ring.records as u64));
            for claim in lo..hi {
                if let Some(rec) = ring.read(claim) {
                    out.push(rec);
                }
            }
        }
    }
}

/// Drains the window opened by `marker` and summarizes the request
/// rooted at span `root` in one pass: the engine's per-request hot
/// path. Skips the start-time sort, never materializes the causal
/// slice (both only matter for trace export, not for stage buckets),
/// and reuses a per-thread drain buffer so the steady state allocates
/// nothing for the record window itself.
pub fn profile_since(marker: &Marker, root: u64, dropped: u64) -> ProfileSummary {
    use std::cell::RefCell;
    thread_local! {
        static DRAIN: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
    }
    DRAIN.with(|buf| {
        let Ok(mut records) = buf.try_borrow_mut() else {
            // Re-entrant call (a sink callback profiling itself):
            // fall back to a fresh buffer.
            let records = drain_since_unsorted(marker);
            let keep = causal_mask(&records, root);
            return ProfileSummary::build_masked(&records, Some(&keep), dropped);
        };
        records.clear();
        drain_since_into(marker, &mut records);
        let keep = causal_mask(&records, root);
        ProfileSummary::build_masked(&records, Some(&keep), dropped)
    })
}

/// Drains the most recent surviving records from every ring (the "last
/// N" view the black box snapshots), across all generations.
pub fn drain_all() -> Vec<SpanRecord> {
    drain_since(&Marker {
        gen: 0,
        cursors: [0; RINGS],
    })
}

/// Folds `f` over every ring of every allocated generation.
fn fold_rings(f: impl Fn(&Ring) -> u64) -> u64 {
    let flight = flight();
    (0..GENERATIONS)
        .filter_map(|gen| gen_rings(flight, gen))
        .flat_map(|rings| rings.iter().map(&f))
        .sum()
}

/// Total records overwritten by ring wrap-around since process start.
pub fn dropped_records() -> u64 {
    fold_rings(|r| {
        r.cursor
            .load(Ordering::Relaxed)
            .saturating_sub(r.records as u64)
    })
}

/// Total records ever written since process start.
pub fn total_records() -> u64 {
    fold_rings(|r| r.cursor.load(Ordering::Relaxed))
}

/// Restricts `records` to the causal tree rooted at span `root`: the
/// root itself plus every record whose parent chain reaches it. This is
/// how a per-request profile stays clean when several requests (or
/// other test threads) interleave on the same rings.
pub fn causal_slice(records: &[SpanRecord], root: u64) -> Vec<SpanRecord> {
    let keep = causal_mask(records, root);
    records
        .iter()
        .zip(keep)
        .filter_map(|(r, kept)| kept.then_some(*r))
        .collect()
}

/// Membership mask for [`causal_slice`]: `mask[i]` is true when
/// `records[i]` is the root or transitively parented to it. BFS over a
/// parent-sorted index instead of a hash-set fixpoint — this runs once
/// per request inside the engine, so it has to stay a few microseconds
/// even for hundred-span windows.
fn causal_mask(records: &[SpanRecord], root: u64) -> Vec<bool> {
    let mut by_parent: Vec<(u64, usize)> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.parent, i))
        .collect();
    by_parent.sort_unstable_by_key(|&(parent, _)| parent);
    let mut keep = vec![false; records.len()];
    for (i, r) in records.iter().enumerate() {
        if r.id == root {
            keep[i] = true;
        }
    }
    let mut frontier = vec![root];
    while let Some(id) = frontier.pop() {
        let first = by_parent.partition_point(|&(parent, _)| parent < id);
        for &(parent, i) in &by_parent[first..] {
            if parent != id {
                break;
            }
            if !keep[i] {
                keep[i] = true;
                frontier.push(records[i].id);
            }
        }
    }
    keep
}

/// Snapshots the last-N record window as a [`BlackBox`] and stores it as
/// the process's most recent dump. Returns `None` when recording is off.
pub fn blackbox_dump(reason: &str) -> Option<BlackBox> {
    if !enabled() {
        return None;
    }
    let f = flight();
    let dump = BlackBox {
        reason: reason.to_string(),
        captured_ns: now_ns(),
        records: drain_all(),
    };
    *f.blackbox
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(dump.clone());
    Some(dump)
}

/// The most recent black-box dump, if any fault has triggered one.
pub fn last_blackbox() -> Option<BlackBox> {
    flight()
        .blackbox
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Clears the stored black-box dump (tests and multi-run CLI sessions).
pub fn clear_blackbox() {
    *flight()
        .blackbox
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Per-stage latency summary over one set of records.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Stage name ([`SpanKind::name`]).
    pub stage: &'static str,
    /// Number of spans of this stage.
    pub count: u64,
    /// Sum of span durations (us). Instants contribute count only.
    pub total_us: f64,
    /// Median span duration (us).
    pub p50_us: f64,
    /// 99th-percentile span duration (us).
    pub p99_us: f64,
    /// Largest span duration (us).
    pub max_us: f64,
}

impl StageStat {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("stage".to_string(), Value::String(self.stage.to_string()));
        map.insert("count".to_string(), Value::Number(self.count as f64));
        map.insert("total_us".to_string(), Value::Number(self.total_us));
        map.insert("p50_us".to_string(), Value::Number(self.p50_us));
        map.insert("p99_us".to_string(), Value::Number(self.p99_us));
        map.insert("max_us".to_string(), Value::Number(self.max_us));
        Value::Object(map)
    }
}

/// The continuous-profiler view of one record window: per-stage
/// count/total/p50/p99, plus how much the window lost to ring wrap.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileSummary {
    /// Records summarized.
    pub span_count: u64,
    /// Records lost to ring overwrite during the window.
    pub dropped: u64,
    /// Per-stage statistics, ordered by [`SpanKind::ALL`].
    pub stages: Vec<StageStat>,
}

/// Exact percentile of a sorted sample set (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

impl ProfileSummary {
    /// Builds the summary from drained records. `dropped` is the delta
    /// of [`dropped_records`] over the window being summarized.
    pub fn build(records: &[SpanRecord], dropped: u64) -> ProfileSummary {
        Self::build_masked(records, None, dropped)
    }

    /// [`build`] restricted to records whose mask entry is true (the
    /// fused path of [`profile_since`], which avoids materializing a
    /// causal slice just to summarize it).
    fn build_masked(records: &[SpanRecord], keep: Option<&[bool]>, dropped: u64) -> ProfileSummary {
        // One pass to bucket durations by kind (instead of one scan per
        // kind): this runs per request inside the engine's hot loop.
        const KINDS: usize = SpanKind::ALL.len();
        let mut buckets: [Vec<f64>; KINDS] = std::array::from_fn(|_| Vec::new());
        let mut span_count = 0u64;
        for (i, r) in records.iter().enumerate() {
            if keep.is_some_and(|k| !k[i]) {
                continue;
            }
            span_count += 1;
            buckets[r.kind as usize].push(r.duration_us());
        }
        let mut stages = Vec::new();
        for (kind, durations) in SpanKind::ALL.iter().zip(&mut buckets) {
            if durations.is_empty() {
                continue;
            }
            durations.sort_by(f64::total_cmp);
            stages.push(StageStat {
                stage: kind.name(),
                count: durations.len() as u64,
                total_us: durations.iter().sum(),
                p50_us: percentile(durations, 0.50),
                p99_us: percentile(durations, 0.99),
                max_us: *durations.last().unwrap_or(&0.0),
            });
        }
        ProfileSummary {
            span_count,
            dropped,
            stages,
        }
    }

    /// Looks up one stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// JSON form.
    pub fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert(
            "span_count".to_string(),
            Value::Number(self.span_count as f64),
        );
        map.insert("dropped".to_string(), Value::Number(self.dropped as f64));
        map.insert(
            "stages".to_string(),
            Value::Array(self.stages.iter().map(StageStat::to_value).collect()),
        );
        Value::Object(map)
    }
}

/// Per-node attribution reconstructed from one request's records.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeProfile {
    /// Graph node id.
    pub node: u32,
    /// Node wall time: the node span's own duration (us).
    pub wall_us: f64,
    /// Time in pack phases (im2col + B-panel packing) under this node.
    pub pack_us: f64,
    /// Time in compute phases (GEMM/matvec inner loops) under this node.
    pub compute_us: f64,
    /// Time merging split partial outputs for this node.
    pub merge_us: f64,
    /// Time this node's pooled tasks waited in the queue.
    pub queue_wait_us: f64,
    /// Arena acquisitions served from reused capacity.
    pub arena_hits: u64,
    /// Arena acquisitions that had to allocate.
    pub arena_misses: u64,
    /// Resilience retries attributed to this node.
    pub retries: u64,
    /// Resilience fallbacks attributed to this node.
    pub fallbacks: u64,
}

impl NodeProfile {
    /// JSON form.
    pub fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("node".to_string(), Value::Number(f64::from(self.node)));
        map.insert("wall_us".to_string(), Value::Number(self.wall_us));
        map.insert("pack_us".to_string(), Value::Number(self.pack_us));
        map.insert("compute_us".to_string(), Value::Number(self.compute_us));
        map.insert("merge_us".to_string(), Value::Number(self.merge_us));
        map.insert(
            "queue_wait_us".to_string(),
            Value::Number(self.queue_wait_us),
        );
        map.insert(
            "arena_hits".to_string(),
            Value::Number(self.arena_hits as f64),
        );
        map.insert(
            "arena_misses".to_string(),
            Value::Number(self.arena_misses as f64),
        );
        map.insert("retries".to_string(), Value::Number(self.retries as f64));
        map.insert(
            "fallbacks".to_string(),
            Value::Number(self.fallbacks as f64),
        );
        Value::Object(map)
    }
}

/// Reconstructs per-node attribution from a drained record set. Node
/// wall time comes from [`SpanKind::Node`] spans; phase and resilience
/// records attach to the node id they recorded, or — for kernel-level
/// records emitted below node granularity (tensor pack/compute/arena
/// spans carry [`NO_NODE`]) — to the nearest ancestor span that names a
/// node. Sorted by node id.
pub fn node_profiles(records: &[SpanRecord]) -> Vec<NodeProfile> {
    use std::collections::BTreeMap;
    use std::collections::HashMap;
    let by_id: HashMap<u64, (u32, u64)> =
        records.iter().map(|r| (r.id, (r.node, r.parent))).collect();
    let resolve = |rec: &SpanRecord| -> u32 {
        let mut node = rec.node;
        let mut parent = rec.parent;
        let mut hops = 0;
        while node == NO_NODE && parent != 0 && hops < 64 {
            let Some(&(pn, pp)) = by_id.get(&parent) else {
                break;
            };
            node = pn;
            parent = pp;
            hops += 1;
        }
        node
    };
    let mut by_node: BTreeMap<u32, NodeProfile> = BTreeMap::new();
    for rec in records {
        let node = resolve(rec);
        if node == NO_NODE {
            continue;
        }
        let entry = by_node.entry(node).or_insert(NodeProfile {
            node,
            ..NodeProfile::default()
        });
        match rec.kind {
            SpanKind::Node => entry.wall_us += rec.duration_us(),
            SpanKind::Pack => entry.pack_us += rec.duration_us(),
            SpanKind::Compute => entry.compute_us += rec.duration_us(),
            SpanKind::Merge => entry.merge_us += rec.duration_us(),
            SpanKind::QueueWait => entry.queue_wait_us += rec.duration_us(),
            SpanKind::ArenaHit => entry.arena_hits += 1,
            SpanKind::ArenaMiss => entry.arena_misses += 1,
            SpanKind::Retry => entry.retries += 1,
            SpanKind::Fallback => entry.fallbacks += 1,
            SpanKind::Request
            | SpanKind::TaskRun
            | SpanKind::WorkerLoss
            | SpanKind::Admission
            | SpanKind::BatchForm
            | SpanKind::Degrade
            | SpanKind::Shed => {}
        }
    }
    by_node.into_values().collect()
}

/// Renders records as Chrome-trace entries (`"ph":"X"` for spans,
/// `"ph":"i"` for instants) on process id `pid`, one thread row per
/// worker ordinal. `name_of` maps node ids to display names (the CLI
/// passes layer names; pass `|n| format!("n{n}")` when unknown).
/// Timestamps are shifted so `t0_ns` becomes 0 and converted to
/// microseconds, matching the simulator's trace clock.
pub fn chrome_entries(
    records: &[SpanRecord],
    pid: u64,
    t0_ns: u64,
    name_of: &dyn Fn(u32) -> String,
) -> Vec<Value> {
    let mut out = Vec::with_capacity(records.len());
    for rec in records {
        let mut entry = Map::new();
        let label = if rec.node == NO_NODE {
            rec.kind.name().to_string()
        } else {
            format!("{} {}", rec.kind.name(), name_of(rec.node))
        };
        entry.insert("name".to_string(), Value::String(label));
        entry.insert(
            "cat".to_string(),
            Value::String(rec.kind.name().to_string()),
        );
        entry.insert("pid".to_string(), Value::Number(pid as f64));
        entry.insert("tid".to_string(), Value::Number(f64::from(rec.worker)));
        let ts = rec.start_ns.saturating_sub(t0_ns) as f64 / 1e3;
        entry.insert("ts".to_string(), Value::Number(ts));
        if rec.kind.is_instant() {
            entry.insert("ph".to_string(), Value::String("i".to_string()));
            entry.insert("s".to_string(), Value::String("t".to_string()));
        } else {
            entry.insert("ph".to_string(), Value::String("X".to_string()));
            entry.insert(
                "dur".to_string(),
                Value::Number(rec.duration_us().max(0.001)),
            );
        }
        let mut args = Map::new();
        args.insert("id".to_string(), Value::Number(rec.id as f64));
        args.insert("parent".to_string(), Value::Number(rec.parent as f64));
        if rec.arg != 0 {
            args.insert("arg".to_string(), Value::Number(rec.arg as f64));
        }
        entry.insert("args".to_string(), Value::Object(args));
        out.push(Value::Object(entry));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every flight test shares the process-global recorder with every
    /// other test thread, so assertions work on deltas and on causal
    /// slices rooted at spans this test created.
    fn recording<R>(f: impl FnOnce() -> R) -> R {
        enable();
        f()
    }

    #[test]
    fn docs_list_every_stage() {
        // Same doc-sync contract as the diagnostics registry: the stage
        // table in docs/profiling.md must name every SpanKind, so a new
        // kind cannot land without its documentation row.
        let docs = include_str!("../../../docs/profiling.md");
        for kind in SpanKind::ALL {
            assert!(
                docs.contains(&format!("`{}`", kind.name())),
                "stage {:?} ({}) missing from docs/profiling.md",
                kind,
                kind.name()
            );
        }
    }

    #[test]
    fn span_kind_all_matches_discriminant_order() {
        // `ProfileSummary::build` buckets by `kind as usize` and labels
        // the bucket with `ALL[i]`; both must agree on the ordering.
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i, "SpanKind::ALL out of code order");
        }
    }

    #[test]
    fn disabled_recorder_records_nothing_through_open_spans() {
        // Spans opened while disabled stay no-ops even if another test
        // enables recording concurrently: the id is pinned to 0.
        let span = OpenSpan::disabled();
        assert_eq!(end(span), 0);
    }

    #[test]
    fn span_roundtrip_preserves_fields() {
        recording(|| {
            let marker = mark();
            let root = begin(SpanKind::Request, NO_NODE);
            let root_id = with_parent(root.id(), || {
                let child = begin(SpanKind::Node, 7);
                std::thread::sleep(std::time::Duration::from_micros(50));
                end_with(child, 42);
                root.id()
            });
            end(root);
            let records = causal_slice(&drain_since(&marker), root_id);
            let node = records
                .iter()
                .find(|r| r.kind == SpanKind::Node)
                .expect("node span drained");
            assert_eq!(node.node, 7);
            assert_eq!(node.parent, root_id);
            assert_eq!(node.arg, 42);
            assert!(node.end_ns > node.start_ns);
            let req = records
                .iter()
                .find(|r| r.kind == SpanKind::Request)
                .expect("request span drained");
            assert!(req.start_ns <= node.start_ns);
            assert!(req.end_ns >= node.end_ns);
        });
    }

    #[test]
    fn instants_have_zero_duration_and_inherit_parent() {
        recording(|| {
            let marker = mark();
            let root = begin(SpanKind::Request, NO_NODE);
            with_parent(root.id(), || {
                instant(SpanKind::ArenaMiss, 3, 4096);
            });
            let root_id = root.id();
            end(root);
            let records = causal_slice(&drain_since(&marker), root_id);
            let miss = records
                .iter()
                .find(|r| r.kind == SpanKind::ArenaMiss)
                .expect("instant drained");
            assert_eq!(miss.start_ns, miss.end_ns);
            assert_eq!(miss.duration_us(), 0.0);
            assert_eq!(miss.parent, root_id);
            assert_eq!(miss.arg, 4096);
        });
    }

    /// Capacity target shared by the tests that exercise wrap and
    /// growth: reserving first pins the generation, so the two tests
    /// cannot race each other's capacity observations.
    const TEST_RING_RECORDS: usize = 2 * BASE_RING_RECORDS;

    #[test]
    fn ring_wrap_counts_drops_instead_of_failing() {
        recording(|| {
            reserve(TEST_RING_RECORDS);
            let capacity = retained_records_per_ring() as u64;
            let dropped_before = dropped_records();
            let total_before = total_records();
            // One thread writes to one ring; exceed its capacity.
            let writes = capacity + 500;
            for i in 0..writes {
                instant(SpanKind::Retry, 1, i);
            }
            assert!(total_records() - total_before >= writes);
            assert!(
                dropped_records() - dropped_before >= 500,
                "wrap must surface as dropped records"
            );
        });
    }

    #[test]
    fn reserve_grows_rings_and_keeps_marker_windows_intact() {
        recording(|| {
            reserve(TEST_RING_RECORDS);
            assert!(retained_records_per_ring() >= TEST_RING_RECORDS);
            // Growth is monotone: asking for less never shrinks.
            let before = retained_records_per_ring();
            reserve(1);
            assert_eq!(retained_records_per_ring(), before);
            // A window larger than the base capacity survives a drain
            // whole: the VGG regression this sizing fixes showed up as
            // thousands of dropped records per request.
            let marker = mark();
            let dropped_before = dropped_records();
            let writes = (BASE_RING_RECORDS + 512) as u64;
            let first = instant(SpanKind::Retry, 42, 0);
            for i in 1..writes {
                instant(SpanKind::Retry, 42, i);
            }
            assert_eq!(
                dropped_records() - dropped_before,
                0,
                "reserved rings must hold the whole window"
            );
            let drained = drain_since(&marker);
            assert!(
                drained.iter().any(|r| r.id == first),
                "oldest record of the window survives"
            );
            assert!(
                drained.iter().filter(|r| r.node == 42).count() as u64 >= writes,
                "every record of the window survives"
            );
        });
    }

    #[test]
    fn drain_since_skips_records_before_the_marker() {
        recording(|| {
            let early = instant(SpanKind::Fallback, 9, 0);
            let marker = mark();
            let late = instant(SpanKind::Fallback, 10, 0);
            let drained = drain_since(&marker);
            assert!(drained.iter().any(|r| r.id == late));
            assert!(drained.iter().all(|r| r.id != early));
        });
    }

    #[test]
    fn causal_slice_follows_parent_chains_not_interleavings() {
        recording(|| {
            let marker = mark();
            let mine = begin(SpanKind::Request, NO_NODE);
            let mine_id = mine.id();
            let stranger = begin(SpanKind::Request, NO_NODE);
            with_parent(mine_id, || {
                let child = begin(SpanKind::Node, 1);
                with_parent(child.id(), || {
                    instant(SpanKind::Retry, 1, 1);
                });
                end(child);
            });
            with_parent(stranger.id(), || {
                instant(SpanKind::Retry, 2, 1);
            });
            end(stranger);
            end(mine);
            let slice = causal_slice(&drain_since(&marker), mine_id);
            assert_eq!(
                slice.iter().filter(|r| r.kind == SpanKind::Retry).count(),
                1
            );
            assert!(slice.iter().all(|r| r.node != 2));
            // Grandchild reached through the chain, not just direct kids.
            assert!(slice
                .iter()
                .any(|r| r.kind == SpanKind::Retry && r.node == 1));
        });
    }

    #[test]
    fn profile_summary_aggregates_per_stage() {
        let mk = |kind: SpanKind, start: u64, end: u64| SpanRecord {
            id: start,
            parent: 0,
            kind,
            node: 1,
            worker: 0,
            start_ns: start,
            end_ns: end,
            arg: 0,
        };
        let records = vec![
            mk(SpanKind::Node, 0, 10_000),
            mk(SpanKind::Node, 20_000, 26_000),
            mk(SpanKind::Pack, 1_000, 3_000),
        ];
        let profile = ProfileSummary::build(&records, 2);
        assert_eq!(profile.span_count, 3);
        assert_eq!(profile.dropped, 2);
        let node = profile.stage("node").unwrap();
        assert_eq!(node.count, 2);
        assert!((node.total_us - 16.0).abs() < 1e-9);
        assert!((node.p50_us - 6.0).abs() < 1e-9);
        assert!((node.max_us - 10.0).abs() < 1e-9);
        assert_eq!(profile.stage("pack").unwrap().count, 1);
        assert!(profile.stage("merge").is_none());
    }

    #[test]
    fn node_profiles_attribute_phases_and_instants() {
        let mk = |kind: SpanKind, node: u32, start: u64, end: u64| SpanRecord {
            id: start + u64::from(node),
            parent: 0,
            kind,
            node,
            worker: 0,
            start_ns: start,
            end_ns: end,
            arg: 0,
        };
        let records = vec![
            mk(SpanKind::Node, 1, 0, 10_000),
            mk(SpanKind::Pack, 1, 0, 2_000),
            mk(SpanKind::Compute, 1, 2_000, 9_000),
            mk(SpanKind::ArenaHit, 1, 100, 100),
            mk(SpanKind::Retry, 1, 200, 200),
            mk(SpanKind::Node, 2, 10_000, 12_000),
            mk(SpanKind::QueueWait, 2, 9_500, 10_000),
        ];
        let profiles = node_profiles(&records);
        assert_eq!(profiles.len(), 2);
        let n1 = &profiles[0];
        assert_eq!(n1.node, 1);
        assert!((n1.wall_us - 10.0).abs() < 1e-9);
        assert!((n1.pack_us - 2.0).abs() < 1e-9);
        assert!((n1.compute_us - 7.0).abs() < 1e-9);
        assert_eq!(n1.arena_hits, 1);
        assert_eq!(n1.retries, 1);
        let n2 = &profiles[1];
        assert!((n2.queue_wait_us - 0.5).abs() < 1e-9);
    }

    #[test]
    fn node_profiles_resolve_kernel_records_through_parents() {
        // A tensor-level pack span and arena instant carry NO_NODE; they
        // must attach to the node named by their ancestor chain.
        let records = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                kind: SpanKind::Node,
                node: 5,
                worker: 0,
                start_ns: 0,
                end_ns: 10_000,
                arg: 0,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                kind: SpanKind::Pack,
                node: NO_NODE,
                worker: 0,
                start_ns: 100,
                end_ns: 2_100,
                arg: 4096,
            },
            SpanRecord {
                id: 3,
                parent: 2,
                kind: SpanKind::ArenaMiss,
                node: NO_NODE,
                worker: 0,
                start_ns: 150,
                end_ns: 150,
                arg: 4096,
            },
        ];
        let profiles = node_profiles(&records);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].node, 5);
        assert!((profiles[0].pack_us - 2.0).abs() < 1e-9);
        assert_eq!(profiles[0].arena_misses, 1);
    }

    #[test]
    fn blackbox_snapshot_contains_recent_records() {
        recording(|| {
            let tagged = instant(SpanKind::Fallback, 77, 123);
            let dump = blackbox_dump("test-fault").expect("enabled");
            assert_eq!(dump.reason, "test-fault");
            assert!(dump.records.iter().any(|r| r.id == tagged));
            let stored = last_blackbox().expect("stored");
            assert_eq!(stored.reason, "test-fault");
            let json = dump.to_value();
            assert_eq!(json["reason"], "test-fault");
            assert!(json["records"].as_array().is_some_and(|a| !a.is_empty()));
        });
    }

    #[test]
    fn chrome_entries_render_spans_and_instants() {
        let records = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                kind: SpanKind::Node,
                node: 4,
                worker: 2,
                start_ns: 5_000,
                end_ns: 15_000,
                arg: 0,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                kind: SpanKind::ArenaMiss,
                node: 4,
                worker: 2,
                start_ns: 6_000,
                end_ns: 6_000,
                arg: 64,
            },
        ];
        let entries = chrome_entries(&records, 3, 5_000, &|n| format!("layer{n}"));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0]["ph"], "X");
        assert_eq!(entries[0]["name"], "node layer4");
        assert_eq!(entries[0]["pid"], 3);
        assert_eq!(entries[0]["tid"], 2);
        assert_eq!(entries[0]["ts"], 0);
        assert_eq!(entries[0]["dur"], 10);
        assert_eq!(entries[1]["ph"], "i");
        assert_eq!(entries[1]["args"]["arg"], 64);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.50), 2.0);
        assert_eq!(percentile(&sorted, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn every_span_kind_roundtrips_its_code() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_code(kind.code()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(SpanKind::from_code(0), None);
        assert_eq!(SpanKind::from_code(255), None);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_records() {
        recording(|| {
            let marker = mark();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    s.spawn(move || {
                        for i in 0..2_000u64 {
                            // Encode the writer id in both node and arg so
                            // a torn record (fields from two writers)
                            // is detectable.
                            let node = u32::try_from(t).unwrap() + 100;
                            instant(SpanKind::Retry, node, t * 10_000 + i);
                        }
                    });
                }
            });
            for rec in drain_since(&marker) {
                if rec.kind == SpanKind::Retry && rec.node >= 100 && rec.node < 104 {
                    let writer = u64::from(rec.node - 100);
                    assert_eq!(
                        rec.arg / 10_000,
                        writer,
                        "record mixes fields from two writers"
                    );
                }
            }
        });
    }
}
