//! The span/event sink: the trait instrumented components emit into,
//! plus the standard [`Recorder`] implementation.

use std::sync::{Arc, Mutex};

use crate::metrics::{Labels, MetricsRegistry};

/// One observation emitted by an instrumented component.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkEvent {
    /// A timed activity on a processor or bus track (kernel launch,
    /// copy, migration, thrash penalty, sync, contention stall).
    Span {
        /// Which track the span belongs to ("cpu", "gpu", "bus", ...).
        track: &'static str,
        /// Activity class ("kernel", "copy", "migration", "thrash",
        /// "sync", "stall", ...).
        category: &'static str,
        /// Human-readable label (usually the layer name).
        label: String,
        /// Start time (us, simulated clock).
        start_us: f64,
        /// End time (us, simulated clock).
        end_us: f64,
        /// Bytes moved, for memory traffic spans (0 when not applicable).
        bytes: u64,
    },
    /// A point-in-time marker (plan regeneration, pipeline cut chosen).
    Instant {
        /// Event class ("plan", "pipeline", ...).
        category: &'static str,
        /// Human-readable label.
        label: String,
        /// Timestamp (us where meaningful, otherwise a sequence number).
        t_us: f64,
    },
    /// One sample of a numeric counter track (EMA value, bandwidth,
    /// outstanding pages). Consecutive samples of one `track` form a
    /// Chrome-trace `"ph":"C"` counter series.
    Counter {
        /// Counter track name ("ema_cpu_us/conv1", "bus_gbps", ...).
        track: String,
        /// Sample time (us, or a round index for tuner-side tracks).
        t_us: f64,
        /// Sampled value.
        value: f64,
    },
    /// A non-fatal anomaly worth surfacing (accounting violations,
    /// rejected plans, fallbacks).
    Warning {
        /// Component that raised it ("metrics", "tuner", "runtime").
        source: &'static str,
        /// What happened.
        message: String,
    },
    /// One request finished end-to-end (serving/pipeline runs).
    Request {
        /// End-to-end latency of the request (us).
        latency_us: f64,
    },
    /// One engine-level counter from the functional execution core:
    /// worker-pool task accounting and scratch-arena allocation behaviour.
    /// Aggregated into `edgenn_engine_<name>_total` counters so traces
    /// and `explain` output show how much overhead the engine itself
    /// added to a run.
    EngineCounter {
        /// Counter name ("pool_tasks", "pool_inline_tasks",
        /// "pool_queue_wait_ns", "arena_fresh_bytes",
        /// "arena_reused_bytes").
        name: &'static str,
        /// Amount to add to the running total.
        value: f64,
    },
    /// One fault-injection or recovery occurrence from the resilience
    /// layer. Aggregated into `edgenn_<category>_total` counters
    /// (`faults_injected`, `retries`, `fallbacks`,
    /// `deadline_degradations`) so storm runs and recorded sessions
    /// expose exactly how often the stack had to save itself.
    Fault {
        /// Which resilience counter this increments: "faults_injected",
        /// "retries", "fallbacks", or "deadline_degradations".
        category: &'static str,
        /// The fault or cause ("transient-kernel", "deadline-overrun").
        kind: String,
        /// What it hit (layer name, or empty for run-wide faults).
        label: String,
        /// When it happened (us, simulated clock).
        t_us: f64,
    },
    /// One stage-duration sample from the flight recorder's drained
    /// profile (node wall time, pack/compute/merge phases, queue wait).
    /// The engine emits one sample per stage per request — the request's
    /// total time in that stage — aggregated into
    /// `edgenn_stage_<stage>_us` histograms so the continuous profiler's
    /// p50/p99 ride in the standard exposition.
    Stage {
        /// Stage name (a `flight::SpanKind::name()`).
        stage: &'static str,
        /// Time the request spent in this stage (us, wall clock).
        duration_us: f64,
    },
    /// One graph-compiler pass summary (`edgenn_nn::graph::compile`):
    /// how often the pass rewrote anything, how many nodes it removed,
    /// and how many weight bytes were prepacked at compile time.
    /// Aggregated into `edgenn_compiler_passes_applied_total`,
    /// `edgenn_compiler_nodes_eliminated_total`, and
    /// `edgenn_compiler_bytes_prepacked_total` so `explain` output and
    /// the Prometheus exposition show what compilation bought before
    /// the first inference ran.
    CompilerPass {
        /// Pass name ("identity-elim", "fuse-activations", ...), or
        /// "prepack" for the layout-selection stage.
        pass: &'static str,
        /// How many rewrites (or packed nodes) the pass performed.
        applied: u64,
        /// Net nodes removed by this pass across all iterations.
        nodes_eliminated: u64,
        /// Weight bytes packed into kernel-native layouts (prepack only).
        bytes_prepacked: u64,
    },
    /// One serving-layer decision from `edgenn-serve`: admission
    /// control, SLO degradation, load shedding, batch dispatch, or a
    /// completion. Aggregated into `edgenn_serve_<decision>_total`
    /// counters so overload behaviour rides in the standard exposition
    /// next to the engine and resilience counters.
    Serve {
        /// Decision name ("admitted", "rejected", "degraded", "shed",
        /// "batch_dispatched", "completed").
        decision: &'static str,
        /// Tenant ordinal the decision applies to.
        tenant: u32,
        /// When it happened (us; virtual clock under `edgenn siege`).
        t_us: f64,
    },
    /// One static-analysis finding from the `edgenn-check` verifier,
    /// mirrored into the session so recorded runs carry the checker's
    /// verdict next to the trace it judged.
    Diagnostic {
        /// Stable `EC0xx` code.
        code: String,
        /// `"error"` or `"warning"`.
        severity: String,
        /// Rendered source span (`n3`, `e3/e4`, `-`).
        span: String,
        /// Human-readable description.
        message: String,
    },
}

impl SinkEvent {
    /// Convenience constructor for [`SinkEvent::Span`].
    pub fn span(
        category: &'static str,
        track: &'static str,
        label: impl Into<String>,
        start_us: f64,
        end_us: f64,
        bytes: u64,
    ) -> Self {
        SinkEvent::Span {
            track,
            category,
            label: label.into(),
            start_us,
            end_us,
            bytes,
        }
    }
}

/// Anything that can receive [`SinkEvent`]s.
///
/// Takes `&self` so sinks can be shared across the stack (and across
/// threads — implementors use interior mutability).
pub trait EventSink: Send + Sync {
    /// Receives one event. Must be cheap and must not fail.
    fn emit(&self, event: SinkEvent);
}

/// A sink that drops everything (the default when observability is off).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: SinkEvent) {}
}

/// One sample of a counter track, extracted for trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter track name.
    pub track: String,
    /// Sample time.
    pub t_us: f64,
    /// Sampled value.
    pub value: f64,
}

/// Cap on retained raw events; metric aggregation continues past it and
/// the overflow is counted (never silently dropped).
const DEFAULT_EVENT_CAPACITY: usize = 1_000_000;

#[derive(Debug)]
struct RecorderState {
    events: Vec<SinkEvent>,
    dropped: u64,
    capacity: usize,
}

/// The standard sink: aggregates every event into a [`MetricsRegistry`]
/// and keeps the raw stream for trace export. Cheap to clone (all clones
/// share state), safe to use from scoped worker threads.
#[derive(Debug, Clone)]
pub struct Recorder {
    metrics: Arc<MetricsRegistry>,
    state: Arc<Mutex<RecorderState>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with no base labels.
    pub fn new() -> Self {
        Self::with_labels(Labels::new())
    }

    /// A recorder whose metrics all carry `labels`.
    pub fn with_labels(labels: Labels) -> Self {
        Self {
            metrics: Arc::new(MetricsRegistry::with_labels(labels)),
            state: Arc::new(Mutex::new(RecorderState {
                events: Vec::new(),
                dropped: 0,
                capacity: DEFAULT_EVENT_CAPACITY,
            })),
        }
    }

    /// Limits the retained raw-event buffer (metrics keep aggregating).
    pub fn with_event_capacity(self, capacity: usize) -> Self {
        self.lock().capacity = capacity;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The aggregated metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A copy of every retained event, in emission order.
    pub fn events(&self) -> Vec<SinkEvent> {
        self.lock().events.clone()
    }

    /// How many events were discarded after the capacity was reached.
    pub fn dropped_events(&self) -> u64 {
        self.lock().dropped
    }

    /// All counter samples, in emission order (for `"ph":"C"` export).
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.lock()
            .events
            .iter()
            .filter_map(|e| match e {
                SinkEvent::Counter { track, t_us, value } => Some(CounterSample {
                    track: track.clone(),
                    t_us: *t_us,
                    value: *value,
                }),
                _ => None,
            })
            .collect()
    }

    /// All warning messages, in emission order.
    pub fn warnings(&self) -> Vec<String> {
        self.lock()
            .events
            .iter()
            .filter_map(|e| match e {
                SinkEvent::Warning { source, message } => Some(format!("[{source}] {message}")),
                _ => None,
            })
            .collect()
    }

    /// Folds one event into the metrics registry.
    fn aggregate(&self, event: &SinkEvent) {
        match event {
            SinkEvent::Span {
                category,
                start_us,
                end_us,
                bytes,
                ..
            } => {
                let duration = (end_us - start_us).max(0.0);
                self.metrics
                    .inc_counter(&format!("edgenn_{category}_total"), 1.0);
                self.metrics
                    .inc_counter(&format!("edgenn_{category}_us_total"), duration);
                if *bytes > 0 {
                    self.metrics
                        .inc_counter(&format!("edgenn_{category}_bytes_total"), *bytes as f64);
                }
            }
            SinkEvent::Instant { category, .. } => {
                self.metrics
                    .inc_counter(&format!("edgenn_{category}_events_total"), 1.0);
            }
            SinkEvent::Counter { track, value, .. } => {
                self.metrics
                    .set_gauge(&format!("edgenn_track_{track}"), *value);
            }
            SinkEvent::Warning { .. } => {
                self.metrics.inc_counter("edgenn_warnings_total", 1.0);
            }
            SinkEvent::Request { latency_us } => {
                self.metrics.inc_counter("edgenn_requests_total", 1.0);
                self.metrics
                    .observe("edgenn_request_latency_us", *latency_us);
            }
            SinkEvent::EngineCounter { name, value } => {
                self.metrics
                    .inc_counter(&format!("edgenn_engine_{name}_total"), *value);
            }
            SinkEvent::Fault { category, .. } => {
                self.metrics
                    .inc_counter(&format!("edgenn_{category}_total"), 1.0);
            }
            SinkEvent::Stage { stage, duration_us } => {
                self.metrics
                    .observe(&format!("edgenn_stage_{stage}_us"), *duration_us);
            }
            SinkEvent::CompilerPass {
                applied,
                nodes_eliminated,
                bytes_prepacked,
                ..
            } => {
                self.metrics
                    .inc_counter("edgenn_compiler_passes_applied_total", *applied as f64);
                self.metrics.inc_counter(
                    "edgenn_compiler_nodes_eliminated_total",
                    *nodes_eliminated as f64,
                );
                self.metrics.inc_counter(
                    "edgenn_compiler_bytes_prepacked_total",
                    *bytes_prepacked as f64,
                );
            }
            SinkEvent::Serve { decision, .. } => {
                self.metrics
                    .inc_counter(&format!("edgenn_serve_{decision}_total"), 1.0);
            }
            SinkEvent::Diagnostic { severity, .. } => {
                self.metrics.inc_counter("edgenn_diagnostics_total", 1.0);
                self.metrics
                    .inc_counter(&format!("edgenn_diagnostics_{severity}_total"), 1.0);
            }
        }
    }
}

impl EventSink for Recorder {
    fn emit(&self, event: SinkEvent) {
        self.aggregate(&event);
        let dropped = {
            let mut state = self.lock();
            if state.events.len() < state.capacity {
                state.events.push(event);
                false
            } else {
                state.dropped += 1;
                true
            }
        };
        // Surface the drop in the exposition formats too (JSON and
        // Prometheus), not just the Rust-side accessor; a scraper must
        // be able to see that the raw stream is incomplete.
        if dropped {
            self.metrics
                .inc_counter("edgenn_recorder_dropped_events_total", 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_become_category_counters() {
        let rec = Recorder::new();
        rec.emit(SinkEvent::span("copy", "bus", "w1", 0.0, 10.0, 4096));
        rec.emit(SinkEvent::span("copy", "bus", "w2", 10.0, 15.0, 1024));
        let m = rec.metrics();
        assert_eq!(m.counter_value("edgenn_copy_total"), Some(2.0));
        assert_eq!(m.counter_value("edgenn_copy_us_total"), Some(15.0));
        assert_eq!(m.counter_value("edgenn_copy_bytes_total"), Some(5120.0));
    }

    #[test]
    fn requests_feed_the_latency_histogram() {
        let rec = Recorder::new();
        for latency in [100.0, 200.0, 400.0] {
            rec.emit(SinkEvent::Request {
                latency_us: latency,
            });
        }
        let snap = rec
            .metrics()
            .histogram_snapshot("edgenn_request_latency_us")
            .unwrap();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, 400.0);
    }

    #[test]
    fn counter_samples_are_extracted_in_order() {
        let rec = Recorder::new();
        rec.emit(SinkEvent::Counter {
            track: "ema/fc1".into(),
            t_us: 0.0,
            value: 10.0,
        });
        rec.emit(SinkEvent::Counter {
            track: "ema/fc1".into(),
            t_us: 1.0,
            value: 8.0,
        });
        let samples = rec.counter_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].value, 8.0);
    }

    #[test]
    fn warnings_count_and_render() {
        let rec = Recorder::new();
        rec.emit(SinkEvent::Warning {
            source: "metrics",
            message: "copy > total".into(),
        });
        assert_eq!(
            rec.metrics().counter_value("edgenn_warnings_total"),
            Some(1.0)
        );
        assert_eq!(rec.warnings(), vec!["[metrics] copy > total".to_string()]);
    }

    #[test]
    fn capacity_drops_are_counted_not_silent() {
        let rec = Recorder::new().with_event_capacity(2);
        for i in 0..5 {
            rec.emit(SinkEvent::Instant {
                category: "plan",
                label: format!("{i}"),
                t_us: 0.0,
            });
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped_events(), 3);
        // Metrics still saw all five.
        assert_eq!(
            rec.metrics().counter_value("edgenn_plan_events_total"),
            Some(5.0)
        );
    }

    #[test]
    fn dropped_events_surface_in_json_and_prometheus() {
        let rec = Recorder::new().with_event_capacity(1);
        // Below capacity: the drop counter must not exist yet.
        rec.emit(SinkEvent::Request { latency_us: 1.0 });
        assert_eq!(
            rec.metrics()
                .counter_value("edgenn_recorder_dropped_events_total"),
            None
        );
        for _ in 0..3 {
            rec.emit(SinkEvent::Request { latency_us: 1.0 });
        }
        assert_eq!(rec.dropped_events(), 3);
        assert_eq!(
            rec.metrics()
                .counter_value("edgenn_recorder_dropped_events_total"),
            Some(3.0)
        );
        let json = rec.metrics().to_json();
        let counters = json["counters"].as_array().unwrap();
        assert!(counters
            .iter()
            .any(|c| c["name"] == "edgenn_recorder_dropped_events_total" && c["value"] == 3));
        let text = rec.metrics().to_prometheus_text();
        assert!(text.contains("edgenn_recorder_dropped_events_total 3"));
    }

    #[test]
    fn stage_samples_feed_per_stage_histograms() {
        let rec = Recorder::new();
        for duration in [10.0, 20.0, 40.0] {
            rec.emit(SinkEvent::Stage {
                stage: "compute",
                duration_us: duration,
            });
        }
        let snap = rec
            .metrics()
            .histogram_snapshot("edgenn_stage_compute_us")
            .unwrap();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, 40.0);
    }

    #[test]
    fn engine_counters_accumulate() {
        let rec = Recorder::new();
        rec.emit(SinkEvent::EngineCounter {
            name: "pool_tasks",
            value: 3.0,
        });
        rec.emit(SinkEvent::EngineCounter {
            name: "pool_tasks",
            value: 2.0,
        });
        rec.emit(SinkEvent::EngineCounter {
            name: "arena_reused_bytes",
            value: 4096.0,
        });
        let m = rec.metrics();
        assert_eq!(m.counter_value("edgenn_engine_pool_tasks_total"), Some(5.0));
        assert_eq!(
            m.counter_value("edgenn_engine_arena_reused_bytes_total"),
            Some(4096.0)
        );
    }

    #[test]
    fn compiler_pass_events_feed_the_compiler_counters() {
        let rec = Recorder::new();
        rec.emit(SinkEvent::CompilerPass {
            pass: "fuse-activations",
            applied: 7,
            nodes_eliminated: 7,
            bytes_prepacked: 0,
        });
        rec.emit(SinkEvent::CompilerPass {
            pass: "prepack",
            applied: 5,
            nodes_eliminated: 0,
            bytes_prepacked: 96_256,
        });
        let m = rec.metrics();
        assert_eq!(
            m.counter_value("edgenn_compiler_passes_applied_total"),
            Some(12.0)
        );
        assert_eq!(
            m.counter_value("edgenn_compiler_nodes_eliminated_total"),
            Some(7.0)
        );
        assert_eq!(
            m.counter_value("edgenn_compiler_bytes_prepacked_total"),
            Some(96_256.0)
        );
        let text = rec.metrics().to_prometheus_text();
        assert!(text.contains("edgenn_compiler_bytes_prepacked_total 96256"));
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.emit(SinkEvent::Request { latency_us: 5.0 });
        assert_eq!(rec.events().len(), 1);
    }
}
