//! # edgenn-obs
//!
//! The observability layer shared by the whole EdgeNN stack. It answers
//! the questions the simulator and tuner otherwise leave implicit: *what
//! ran, where, for how long, moving how many bytes — and why did the
//! tuner decide that?*
//!
//! Three pieces:
//!
//! 1. [`MetricsRegistry`] — counters, gauges, and log-bucketed
//!    histograms (p50/p95/p99), labeled by model/platform/policy, with
//!    JSON and Prometheus-text exposition.
//! 2. [`EventSink`] — the span/event sink trait that `edgenn-sim`'s
//!    `Timeline` and `edgenn-core`'s `Runtime`/`Tuner`/`pipeline` emit
//!    into: kernel launches, copies/migrations with byte counts,
//!    contention stalls, EMA updates, plan regenerations, per-request
//!    latencies, and accounting warnings.
//! 3. [`Recorder`] — the standard sink: cheaply clonable, thread-safe,
//!    feeds every event into its registry and keeps the raw stream for
//!    trace export (counter samples become Chrome-trace `"ph":"C"`
//!    tracks).
//! 4. [`flight`] — the flight recorder: lock-free per-worker rings of
//!    fixed-size span records written from the functional engine's hot
//!    paths, with drain/merge into per-request profiles, fault black
//!    boxes, and Perfetto export (see `docs/profiling.md`).
//!
//! Zero external dependencies: std plus the workspace's vendored
//! `serde`/`serde_json` only, so offline builds keep working.
//!
//! ```
//! use edgenn_obs::{EventSink, Labels, Recorder, SinkEvent};
//!
//! let recorder = Recorder::with_labels(Labels::new().with("model", "alexnet"));
//! recorder.emit(SinkEvent::span("kernel", "gpu", "conv1", 0.0, 42.0, 0));
//! recorder.emit(SinkEvent::Counter { track: "ema/conv1".into(), t_us: 1.0, value: 42.0 });
//! assert_eq!(recorder.events().len(), 2);
//! let json = recorder.metrics().to_json();
//! assert!(json["counters"].as_array().is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flight;
mod metrics;
mod sink;

pub use flight::{
    BlackBox, NodeProfile, OpenSpan, ProfileSummary, SpanKind, SpanRecord, StageStat,
};
pub use metrics::{HistogramSnapshot, Labels, MetricsRegistry};
pub use sink::{CounterSample, EventSink, NullSink, Recorder, SinkEvent};
