fn main() {
    edgenn_obs::flight::enable();
    // warm
    for _ in 0..1000 {
        edgenn_obs::flight::instant(edgenn_obs::SpanKind::ArenaHit, 1, 0);
    }
    let n = 1_000_000u64;
    let t = std::time::Instant::now();
    for _ in 0..n {
        let s = edgenn_obs::flight::begin(edgenn_obs::SpanKind::Node, 1);
        edgenn_obs::flight::end(s);
    }
    let span_ns = t.elapsed().as_nanos() as f64 / n as f64;
    let t = std::time::Instant::now();
    for _ in 0..n {
        edgenn_obs::flight::instant(edgenn_obs::SpanKind::ArenaHit, 1, 0);
    }
    let inst_ns = t.elapsed().as_nanos() as f64 / n as f64;
    let t = std::time::Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc = acc.wrapping_add(edgenn_obs::flight::now_ns());
    }
    let now_ns = t.elapsed().as_nanos() as f64 / n as f64;
    println!(
        "begin+end {span_ns:.1} ns, instant {inst_ns:.1} ns, now_ns {now_ns:.1} ns (acc {acc})"
    );
}
