//! Calibrated presets for the paper's four evaluation platforms
//! (Section V-A).
//!
//! Every constant is anchored either to a public spec-sheet figure, to a
//! number stated in the paper, or to a calibration target (marked
//! `calibrated:`) tuned so that the reproduction's *relative* results
//! track the paper's. Absolute microsecond values are a model, not a
//! measurement.

use serde::{Deserialize, Serialize};

use crate::memory::{MemoryArchitecture, MemorySpec};
use crate::power::PowerModel;
use crate::processor::{EfficiencyTable, ProcessorKind, ProcessorSpec};

/// One evaluation platform: processors + memory system + power + price.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Platform name as used in the paper's figures.
    pub name: String,
    /// The CPU (every platform has one).
    pub cpu: ProcessorSpec,
    /// The GPU, when present.
    pub gpu: Option<ProcessorSpec>,
    /// Memory system.
    pub memory: MemorySpec,
    /// Power model.
    pub power: PowerModel,
    /// Installed DRAM capacity in bytes (host DRAM on discrete systems —
    /// the side that must hold the host copies of explicit arrays plus
    /// every managed page). Zero means "unknown"; capacity checks are
    /// skipped.
    pub dram_bytes: u64,
    /// Retail price in USD (performance/price figures).
    pub price_usd: f64,
}

impl Platform {
    /// True when the platform has an on-package GPU sharing DRAM with the
    /// CPU (the paper's "CPU-GPU integrated edge device").
    pub fn is_integrated(&self) -> bool {
        self.gpu.is_some() && self.memory.is_unified()
    }

    /// The GPU spec, or an error message for CPU-only platforms.
    ///
    /// # Panics
    /// Panics when the platform has no GPU; callers gate on
    /// [`Platform::has_gpu`] first.
    pub fn gpu(&self) -> &ProcessorSpec {
        self.gpu.as_ref().expect("platform has no GPU")
    }

    /// Whether the platform has a GPU.
    pub fn has_gpu(&self) -> bool {
        self.gpu.is_some()
    }
}

/// NVIDIA Jetson AGX Xavier — the paper's CPU-GPU integrated edge device.
///
/// Anchors:
/// - 512-core Volta iGPU (paper Section V-A); 1.377 GHz boost → 1.41
///   TFLOP/s peak fp32.
/// - 8-core Carmel ARMv8.2 CPU, max 2.26 GHz (paper Section IV-C); with
///   2x128-bit FMA pipes that is ~145 GFLOP/s peak fp32.
/// - 32 GB LPDDR4x at 137 GB/s shared by both processors (paper
///   Challenge 1). calibrated: the GPU's attainable share is ~100 GB/s,
///   the CPU's ~60 GB/s (STREAM-like efficiencies).
/// - Price $699 (paper Section V-A).
/// - Power: the paper reports 5.5 W at 72%/42% CPU/GPU utilization
///   (ResNet) and 7.9 W at 100%/100% (SqueezeNet); the linear model below
///   passes through both points.
/// - calibrated: per-class efficiencies model the artifact's hand-written
///   CUDA/OpenMP kernels (well below cuDNN), tuned so the Figure 6/8
///   speedup ratios land near the paper's.
pub fn jetson_agx_xavier() -> Platform {
    Platform {
        name: "Jetson AGX Xavier".to_string(),
        cpu: ProcessorSpec {
            name: "Carmel ARMv8.2 x8 @2.26GHz".to_string(),
            kind: ProcessorKind::Cpu,
            peak_gflops: 145.0,
            mem_bw_gbps: 60.0,
            launch_overhead_us: 20.0, // OpenMP parallel-for fork/join across 8 cores
            efficiency: EfficiencyTable {
                conv: 0.13, // calibrated: naive OpenMP conv loops (not a
                // blocked GEMM) — ~19 GFLOP/s effective
                fc: 0.40,
                pool: 0.45,
                activation: 0.50,
                norm: 0.30,
                combine: 0.50,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.70,
                fc: 0.80, // streaming weight reads vectorize well
                pool: 0.75,
                activation: 0.85,
                norm: 0.70,
                combine: 0.85,
            },
            saturation_parallelism: 0,
            cache_bytes: 4 << 20, // effective streaming share of L2+L3
            cache_thrash_floor: 0.30,
        },
        gpu: Some(ProcessorSpec {
            name: "Volta iGPU 512c @1.37GHz".to_string(),
            kind: ProcessorKind::Gpu,
            peak_gflops: 1410.0,
            mem_bw_gbps: 100.0,
            launch_overhead_us: 9.0, // CUDA launch on Tegra
            efficiency: EfficiencyTable {
                conv: 0.030, // calibrated: hand-written CUDA conv (no
                // shared-memory tiling). The paper's own
                // Figure 12 requires VGG-16 on the Xavier to
                // lose to a ~0.57 s cloud round trip, i.e.
                // ~42 GFLOP/s effective conv throughput
                fc: 0.45,
                pool: 0.50,
                activation: 0.55,
                norm: 0.20,
                combine: 0.55,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.85,
                fc: 0.42, // calibrated: naive mat-vec, poorly coalesced —
                // the reason Table I's fc layers gain ~50% from
                // CPU co-running
                pool: 0.60, // naive pooling kernel
                activation: 0.85,
                norm: 0.60,
                combine: 0.85,
            },
            saturation_parallelism: 16_384, // 512 cores x 32-deep pipelines
            cache_bytes: 0,
            cache_thrash_floor: 1.0,
        }),
        memory: MemorySpec {
            architecture: MemoryArchitecture::Unified,
            copy_bw_gbps: 6.0, // calibrated: cudaMemcpy on Tegra measures 5-8 GB/s
            copy_latency_us: 8.0, // cudaMemcpy dispatch on Tegra
            // GPU-side zero-copy access penalty (pinned/managed pages lose
            // some coalescing); the CPU reads the same DRAM either way.
            managed_bw_factor: 0.88,
            // On the integrated SoC both processors share one physical
            // DRAM: "migration" is a page-table/coherence flush, not a
            // data copy.
            page_migration_us_per_mb: 20.0,
            page_fault_overhead_us: 10.0,
            thrash_multiplier: 6.0, // coherence ping-pong on write-shared pages
            corun_contention_factor: 0.85, // calibrated: shared-controller loss
        },
        power: PowerModel {
            base_w: 2.0,
            cpu_dynamic_w: 3.4,
            gpu_dynamic_w: 2.5,
        },
        dram_bytes: 32 << 30,
        price_usd: 699.0,
    }
}

/// Jetson AGX Xavier power modes — "Jetson AGX Xavier provides three
/// power options of 10W, 15W, and 30W" (paper Section V-A).
///
/// Per NVIDIA's nvpmodel tables, the lower budgets cap core counts and
/// clocks; the presets scale peak throughput and dynamic power
/// accordingly (the evaluation runs in the 30 W mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JetsonPowerMode {
    /// 10 W: 2 CPU cores at 1.2 GHz, GPU at ~520 MHz.
    W10,
    /// 15 W: 4 CPU cores at 1.2 GHz, GPU at ~670 MHz.
    W15,
    /// 30 W / MAXN-like: all 8 cores up to 2.26 GHz, GPU at 1.37 GHz.
    W30,
}

/// The Xavier preset under a specific nvpmodel power budget.
pub fn jetson_agx_xavier_mode(mode: JetsonPowerMode) -> Platform {
    let mut platform = jetson_agx_xavier();
    let (cpu_scale, gpu_scale, power_scale, suffix): (f64, f64, f64, &str) = match mode {
        // 2 of 8 cores at 1.2/2.26 of the clock.
        JetsonPowerMode::W10 => (2.0 / 8.0 * (1.2 / 2.26), 520.0 / 1377.0, 10.0 / 30.0, "10W"),
        JetsonPowerMode::W15 => (4.0 / 8.0 * (1.2 / 2.26), 670.0 / 1377.0, 15.0 / 30.0, "15W"),
        JetsonPowerMode::W30 => (1.0, 1.0, 1.0, "30W"),
    };
    platform.name = format!("Jetson AGX Xavier ({suffix})");
    platform.cpu.peak_gflops *= cpu_scale;
    // Memory clocks also drop on the low-power profiles.
    platform.cpu.mem_bw_gbps *= 0.6 + 0.4 * cpu_scale;
    if let Some(gpu) = platform.gpu.as_mut() {
        gpu.peak_gflops *= gpu_scale;
        gpu.mem_bw_gbps *= 0.6 + 0.4 * gpu_scale;
    }
    platform.power.cpu_dynamic_w *= power_scale.max(0.4);
    platform.power.gpu_dynamic_w *= power_scale.max(0.4);
    platform
}

/// Raspberry Pi 4 Model B — the paper's CPU-only edge device.
///
/// Anchors:
/// - Quad Cortex-A72 @1.5 GHz (paper Section V-A): one 128-bit NEON FMA
///   pipe per core → ~48 GFLOP/s peak fp32.
/// - 8 GB LPDDR4; measured STREAM bandwidth on the Pi 4 is ~4 GB/s.
/// - 1 MB shared L2 (paper Section V-A).
/// - Max power 6.4 W, idle ~2.7 W (paper cites pidramble.com benchmarks).
/// - Price $75 (paper Section V-A).
pub fn raspberry_pi_4() -> Platform {
    Platform {
        name: "Raspberry Pi 4B".to_string(),
        cpu: ProcessorSpec {
            name: "Cortex-A72 x4 @1.5GHz".to_string(),
            kind: ProcessorKind::Cpu,
            peak_gflops: 48.0,
            mem_bw_gbps: 6.0,
            launch_overhead_us: 15.0,
            efficiency: EfficiencyTable {
                conv: 0.20,
                fc: 0.38,
                pool: 0.45,
                activation: 0.50,
                norm: 0.30,
                combine: 0.50,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.70,
                fc: 0.80,
                pool: 0.75,
                activation: 0.85,
                norm: 0.70,
                combine: 0.85,
            },
            saturation_parallelism: 0,
            cache_bytes: 1 << 20,
            cache_thrash_floor: 0.28,
        },
        gpu: None,
        memory: cpu_only_memory(),
        power: PowerModel {
            base_w: 2.7,
            cpu_dynamic_w: 3.7,
            gpu_dynamic_w: 0.0,
        },
        dram_bytes: 8 << 30,
        price_usd: 75.0,
    }
}

/// MediaTek Dimensity 8100 — the paper's mobile-phone CPU platform.
///
/// Anchors:
/// - 4x Cortex-A78 @2.85 GHz + 4x Cortex-A55 @2.0 GHz (paper Section
///   V-A). A78 has two 128-bit FMA pipes (16 flops/cycle): ~182 GFLOP/s
///   from the big cluster alone; the paper runs via Termux without
///   root, so calibrated: ~170 GFLOP/s usable peak.
/// - LPDDR5-6400 (paper Section V-A): ~25 GB/s attainable.
/// - 4 MB L3.
/// - The paper could not measure this platform's power; the model below
///   is a typical flagship-SoC envelope and is excluded from
///   power-efficiency figures, as in the paper.
pub fn dimensity_8100() -> Platform {
    Platform {
        name: "Dimensity 8100".to_string(),
        cpu: ProcessorSpec {
            name: "Cortex-A78 x4 @2.85GHz + A55 x4".to_string(),
            kind: ProcessorKind::Cpu,
            peak_gflops: 170.0,
            mem_bw_gbps: 25.0,
            launch_overhead_us: 10.0,
            efficiency: EfficiencyTable {
                conv: 0.17,
                fc: 0.42,
                pool: 0.48,
                activation: 0.52,
                norm: 0.32,
                combine: 0.52,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.70,
                fc: 0.80,
                pool: 0.75,
                activation: 0.85,
                norm: 0.70,
                combine: 0.85,
            },
            saturation_parallelism: 0,
            cache_bytes: 4 << 20,
            cache_thrash_floor: 0.30,
        },
        gpu: None,
        memory: cpu_only_memory(),
        power: PowerModel {
            base_w: 1.5,
            cpu_dynamic_w: 5.0,
            gpu_dynamic_w: 0.0,
        },
        dram_bytes: 8 << 30,
        price_usd: 349.0,
    }
}

/// NVIDIA GeForce RTX 2080 Ti server — the paper's cloud/discrete platform.
///
/// Anchors:
/// - 4352 CUDA cores (paper Challenge 2), 13.45 TFLOP/s peak fp32.
/// - 616 GB/s GDDR6 (paper Challenge 1); ~480 GB/s attainable.
/// - PCIe 3.0 x16: ~12 GB/s effective; the paper measures PCIe transfer
///   overhead reaching 36% of runtime (Section III-A).
/// - TDP 260 W, "almost nine times that of Jetson" (paper Section V-A).
/// - calibrated: price $3,999 models the card plus the host share a cloud
///   operator amortizes; Figure 13(b)'s 1.25x cost-effectiveness gap is
///   the calibration target.
pub fn rtx_2080ti_server() -> Platform {
    Platform {
        name: "RTX 2080 Ti server".to_string(),
        cpu: ProcessorSpec {
            name: "x86 host 16T".to_string(),
            kind: ProcessorKind::Cpu,
            peak_gflops: 450.0,
            mem_bw_gbps: 40.0,
            launch_overhead_us: 8.0,
            efficiency: EfficiencyTable {
                conv: 0.35,
                fc: 0.42,
                pool: 0.48,
                activation: 0.52,
                norm: 0.42,
                combine: 0.52,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.70,
                fc: 0.80,
                pool: 0.75,
                activation: 0.85,
                norm: 0.70,
                combine: 0.85,
            },
            saturation_parallelism: 0,
            cache_bytes: 20 << 20,
            cache_thrash_floor: 0.25,
        },
        gpu: Some(ProcessorSpec {
            name: "TU102 4352c @1.545GHz".to_string(),
            kind: ProcessorKind::Gpu,
            peak_gflops: 13_450.0,
            mem_bw_gbps: 480.0,
            launch_overhead_us: 6.0,
            efficiency: EfficiencyTable {
                conv: 0.030, // same hand-written kernels as the edge build
                fc: 0.45,
                pool: 0.50,
                activation: 0.55,
                norm: 0.20,
                combine: 0.55,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.85,
                fc: 0.42,
                pool: 0.60,
                activation: 0.85,
                norm: 0.60,
                combine: 0.85,
            },
            saturation_parallelism: 139_264, // 4352 cores x 32
            cache_bytes: 0,
            cache_thrash_floor: 1.0,
        }),
        memory: MemorySpec {
            architecture: MemoryArchitecture::Discrete {
                pcie_bw_gbps: 12.0,
                pcie_latency_us: 12.0,
            },
            copy_bw_gbps: 12.0,
            copy_latency_us: 12.0,
            // Managed memory on discrete GPUs pages over PCIe: the paper
            // notes unified memory "brings no benefit for the discrete
            // architecture" (Section IV-B).
            managed_bw_factor: 0.15,
            page_migration_us_per_mb: 420.0, // > 83 us/MB PCIe streaming rate
            page_fault_overhead_us: 25.0,
            thrash_multiplier: 8.0,
            corun_contention_factor: 1.0, // separate memories: no shared bus
        },
        power: PowerModel {
            base_w: 55.0,
            cpu_dynamic_w: 85.0,
            gpu_dynamic_w: 205.0,
        },
        dram_bytes: 64 << 30,
        price_usd: 3_999.0,
    }
}

/// AMD embedded APU — the paper's Section VI names "AMD's APU" as a
/// hybrid platform the EdgeNN idea transfers to (it also cites the 2nd
/// Gen AMD Embedded R-Series line).
///
/// Anchors:
/// - 4-core Zen @ ~3.0 GHz with 2x256-bit FMA: ~384 GFLOP/s peak fp32;
///   x86 AVX2 autovectorizes the naive loops better than NEON, hence the
///   higher conv efficiency than the ARM edge CPUs.
/// - Vega-class iGPU, ~1.8 TFLOP/s fp32, sharing dual-channel DDR4 at
///   ~35 GB/s usable with the CPU (a much tighter memory system than the
///   Xavier's LPDDR4x — co-run contention is correspondingly stronger).
/// - ~$400 board-level price, 25 W envelope.
pub fn amd_embedded_apu() -> Platform {
    Platform {
        name: "AMD Embedded APU".to_string(),
        cpu: ProcessorSpec {
            name: "Zen x4 @3.0GHz".to_string(),
            kind: ProcessorKind::Cpu,
            peak_gflops: 384.0,
            mem_bw_gbps: 28.0,
            launch_overhead_us: 10.0,
            efficiency: EfficiencyTable {
                conv: 0.15,
                fc: 0.42,
                pool: 0.48,
                activation: 0.52,
                norm: 0.32,
                combine: 0.52,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.70,
                fc: 0.80,
                pool: 0.75,
                activation: 0.85,
                norm: 0.70,
                combine: 0.85,
            },
            saturation_parallelism: 0,
            cache_bytes: 8 << 20,
            cache_thrash_floor: 0.30,
        },
        gpu: Some(ProcessorSpec {
            name: "Vega iGPU 8CU".to_string(),
            kind: ProcessorKind::Gpu,
            peak_gflops: 1_800.0,
            mem_bw_gbps: 30.0, // shares the same DDR4 channels as the CPU
            launch_overhead_us: 8.0,
            efficiency: EfficiencyTable {
                conv: 0.030, // same naive kernel family as the CUDA build
                fc: 0.45,
                pool: 0.50,
                activation: 0.55,
                norm: 0.20,
                combine: 0.55,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.85,
                fc: 0.42,
                pool: 0.60,
                activation: 0.85,
                norm: 0.60,
                combine: 0.85,
            },
            saturation_parallelism: 16_384,
            cache_bytes: 0,
            cache_thrash_floor: 1.0,
        }),
        memory: MemorySpec {
            architecture: MemoryArchitecture::Unified,
            copy_bw_gbps: 8.0,
            copy_latency_us: 6.0,
            managed_bw_factor: 0.90, // x86 iGPUs access shared pages near-natively
            page_migration_us_per_mb: 18.0,
            page_fault_overhead_us: 8.0,
            thrash_multiplier: 6.0,
            corun_contention_factor: 0.70, // a narrower bus than the Xavier's
        },
        power: PowerModel {
            base_w: 6.0,
            cpu_dynamic_w: 12.0,
            gpu_dynamic_w: 10.0,
        },
        dram_bytes: 8 << 30,
        price_usd: 399.0,
    }
}

/// Apple-Silicon-class SoC — the paper's Section VI names "Apple Silicon"
/// as the other hybrid platform the idea applies to.
///
/// Anchors (M1-generation public figures):
/// - 4 performance cores with wide NEON: ~400 GFLOP/s usable peak fp32.
/// - 8-core integrated GPU, ~2.6 TFLOP/s fp32.
/// - Unified memory at 68 GB/s shared by both processors; Apple's unified
///   memory has no managed-vs-explicit split at all, modelled as a
///   zero-penalty managed mode with cheap coherence.
/// - ~$699 (Mac mini-class), ~20 W package.
pub fn apple_silicon_m1() -> Platform {
    Platform {
        name: "Apple Silicon M1".to_string(),
        cpu: ProcessorSpec {
            name: "Firestorm x4 @3.2GHz".to_string(),
            kind: ProcessorKind::Cpu,
            peak_gflops: 400.0,
            mem_bw_gbps: 55.0,
            launch_overhead_us: 8.0,
            efficiency: EfficiencyTable {
                conv: 0.16,
                fc: 0.45,
                pool: 0.50,
                activation: 0.55,
                norm: 0.35,
                combine: 0.55,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.75,
                fc: 0.85,
                pool: 0.80,
                activation: 0.90,
                norm: 0.75,
                combine: 0.90,
            },
            saturation_parallelism: 0,
            cache_bytes: 12 << 20,
            cache_thrash_floor: 0.35,
        },
        gpu: Some(ProcessorSpec {
            name: "M1 iGPU 8c".to_string(),
            kind: ProcessorKind::Gpu,
            peak_gflops: 2_600.0,
            mem_bw_gbps: 60.0,
            launch_overhead_us: 7.0,
            efficiency: EfficiencyTable {
                conv: 0.035,
                fc: 0.48,
                pool: 0.52,
                activation: 0.58,
                norm: 0.22,
                combine: 0.58,
            },
            bw_efficiency: EfficiencyTable {
                conv: 0.88,
                fc: 0.45,
                pool: 0.65,
                activation: 0.88,
                norm: 0.62,
                combine: 0.88,
            },
            saturation_parallelism: 24_576,
            cache_bytes: 0,
            cache_thrash_floor: 1.0,
        }),
        memory: MemorySpec {
            architecture: MemoryArchitecture::Unified,
            copy_bw_gbps: 25.0,
            copy_latency_us: 4.0,
            managed_bw_factor: 0.97, // genuinely unified: near-zero penalty
            page_migration_us_per_mb: 8.0,
            page_fault_overhead_us: 4.0,
            thrash_multiplier: 4.0,
            corun_contention_factor: 0.85,
        },
        power: PowerModel {
            base_w: 4.0,
            cpu_dynamic_w: 9.0,
            gpu_dynamic_w: 8.0,
        },
        dram_bytes: 16 << 30,
        price_usd: 699.0,
    }
}

/// Memory spec stub for CPU-only platforms (no CPU<->GPU traffic exists).
fn cpu_only_memory() -> MemorySpec {
    MemorySpec {
        architecture: MemoryArchitecture::Unified,
        copy_bw_gbps: 4.0,
        copy_latency_us: 0.0,
        managed_bw_factor: 1.0,
        page_migration_us_per_mb: 0.0,
        page_fault_overhead_us: 0.0,
        thrash_multiplier: 1.0,
        corun_contention_factor: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::{ExecutionContext, KernelDesc, OpClass};

    #[test]
    fn platform_classification() {
        assert!(jetson_agx_xavier().is_integrated());
        assert!(!raspberry_pi_4().is_integrated());
        assert!(!dimensity_8100().has_gpu());
        let server = rtx_2080ti_server();
        assert!(server.has_gpu());
        assert!(!server.is_integrated(), "discrete memory => not integrated");
    }

    #[test]
    fn paper_anchored_spec_numbers() {
        let jetson = jetson_agx_xavier();
        assert_eq!(jetson.price_usd, 699.0);
        // "the memory bandwidth of NVIDIA Jetson is only 137 GB/s, while
        // that of NVIDIA 2080 Ti reaches 616 GB/s": attainable values must
        // stay below the spec numbers.
        assert!(jetson.gpu().mem_bw_gbps < 137.0);
        let server = rtx_2080ti_server();
        assert!(server.gpu().mem_bw_gbps < 616.0);
        assert!(server.gpu().peak_gflops / jetson.gpu().peak_gflops > 8.0);
        assert_eq!(raspberry_pi_4().price_usd, 75.0);
    }

    #[test]
    fn jetson_power_model_passes_through_paper_points() {
        // Paper Section V-B2: 72%/42% utilization -> 5.5 W (ResNet);
        // 100%/100% -> 7.9 W (SqueezeNet).
        let p = jetson_agx_xavier().power;
        assert!((p.power_w(0.72, 0.42) - 5.5).abs() < 0.2);
        assert!((p.power_w(1.0, 1.0) - 7.9).abs() < 0.2);
    }

    #[test]
    fn rpi_power_stays_within_published_max() {
        let p = raspberry_pi_4().power;
        assert!(p.power_w(1.0, 0.0) <= 6.4, "paper cites 6.4 W max");
    }

    #[test]
    fn discrete_gpu_is_much_faster_on_saturating_conv() {
        // Challenge 2: the 2080 Ti vastly outguns the integrated GPU on
        // big convolutions.
        let desc = KernelDesc {
            class: OpClass::Conv,
            flops: 2_000_000_000,
            bytes_in: 4_000_000,
            bytes_out: 4_000_000,
            weight_bytes: 4_000_000,
            parallelism: 1_000_000,
            working_set_bytes: 8_000_000,
        };
        let ctx = ExecutionContext::default();
        let jetson = jetson_agx_xavier().gpu().kernel_time_us(&desc, &ctx);
        let server = rtx_2080ti_server().gpu().kernel_time_us(&desc, &ctx);
        assert!(jetson / server > 5.0, "jetson {jetson} vs 2080ti {server}");
    }

    #[test]
    fn edge_cpu_ordering_matches_figure6_direction() {
        // Figure 6: speedups over Jetson CPU (3.97x), phone CPU (3.12x),
        // RPi (8.80x) -- so the phone CPU is the fastest edge CPU on this
        // workload mix and the RPi by far the slowest.
        let desc = KernelDesc {
            class: OpClass::Conv,
            flops: 500_000_000,
            bytes_in: 2_000_000,
            bytes_out: 2_000_000,
            weight_bytes: 1_000_000,
            parallelism: 100_000,
            working_set_bytes: 3_000_000,
        };
        let ctx = ExecutionContext::default();
        let jetson = jetson_agx_xavier().cpu.kernel_time_us(&desc, &ctx);
        let phone = dimensity_8100().cpu.kernel_time_us(&desc, &ctx);
        let rpi = raspberry_pi_4().cpu.kernel_time_us(&desc, &ctx);
        assert!(
            phone < jetson,
            "phone {phone} should beat jetson cpu {jetson}"
        );
        assert!(
            rpi > 2.0 * jetson,
            "rpi {rpi} should trail far behind {jetson}"
        );
    }

    #[test]
    fn power_modes_trade_speed_for_watts() {
        use crate::processor::{ExecutionContext, KernelDesc, OpClass};
        let desc = KernelDesc {
            class: OpClass::Conv,
            flops: 1_000_000_000,
            bytes_in: 1_000_000,
            bytes_out: 1_000_000,
            weight_bytes: 1_000_000,
            parallelism: 1_000_000,
            working_set_bytes: 2_000_000,
        };
        let ctx = ExecutionContext::default();
        let t30 = jetson_agx_xavier_mode(JetsonPowerMode::W30)
            .gpu()
            .kernel_time_us(&desc, &ctx);
        let t15 = jetson_agx_xavier_mode(JetsonPowerMode::W15)
            .gpu()
            .kernel_time_us(&desc, &ctx);
        let t10 = jetson_agx_xavier_mode(JetsonPowerMode::W10)
            .gpu()
            .kernel_time_us(&desc, &ctx);
        assert!(
            t10 > t15 && t15 > t30,
            "lower budgets must be slower: {t10} {t15} {t30}"
        );

        let p30 = jetson_agx_xavier_mode(JetsonPowerMode::W30)
            .power
            .power_w(1.0, 1.0);
        let p10 = jetson_agx_xavier_mode(JetsonPowerMode::W10)
            .power
            .power_w(1.0, 1.0);
        assert!(p10 < p30, "lower budgets must draw less: {p10} vs {p30}");
        // The 30 W preset is the evaluation default.
        assert_eq!(
            jetson_agx_xavier_mode(JetsonPowerMode::W30)
                .gpu()
                .peak_gflops,
            jetson_agx_xavier().gpu().peak_gflops
        );
    }

    #[test]
    fn section6_platforms_are_integrated() {
        // Section VI: "there are a bunch of hybrid platforms, and the idea
        // behind EdgeNN is applicable to similar platforms, such as AMD's
        // APU and Apple Silicon".
        for p in [amd_embedded_apu(), apple_silicon_m1()] {
            assert!(p.is_integrated(), "{}", p.name);
            assert!(p.memory.is_unified(), "{}", p.name);
            assert!(p.gpu().peak_gflops > p.cpu.peak_gflops, "{}", p.name);
        }
        // Apple's unified memory carries almost no zero-copy penalty.
        assert!(apple_silicon_m1().memory.managed_bw_factor > 0.95);
        // The APU's narrow DDR4 bus contends harder than the Xavier's.
        assert!(
            amd_embedded_apu().memory.corun_contention_factor
                < jetson_agx_xavier().memory.corun_contention_factor
        );
    }

    #[test]
    fn serialization_round_trip() {
        let p = jetson_agx_xavier();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, p.name);
        assert_eq!(back.price_usd, p.price_usd);
    }
}
