//! Deterministic, seed-driven fault injection (`edgenn-faults`).
//!
//! Real integrated SoCs misbehave in ways the calibrated platform models
//! of [`crate::platforms`] deliberately idealize away: kernels drop on a
//! driver hiccup, co-running apps steal DRAM bandwidth, thermal limits
//! clamp the rooflines, managed pages stall mid-migration, and co-tenant
//! processes squeeze the memory budget. This module describes those
//! disturbances as data — a [`FaultPlan`] — and hands the executing
//! timeline a [`FaultClock`] to consult, so a faulty run is exactly as
//! reproducible as a clean one: same seed, same faults, same trace.
//!
//! Five fault kinds are modeled ([`FaultKind`]):
//!
//! - **Transient kernel failure** — a kernel launch fails `fail_count`
//!   times before succeeding (`u32::MAX` = permanent). The runtime's
//!   resilience layer retries with backoff and, on exhaustion, re-places
//!   the work on the CPU.
//! - **DRAM bandwidth degradation** — a time window during which
//!   attainable memory bandwidth is multiplied by `factor < 1`
//!   (a co-running app streaming through the shared LPDDR4x).
//! - **Thermal throttling** — a window scaling the *compute* roofline
//!   (sustained clocks drop once the SoC heats up).
//! - **Migration stall** — a window multiplying managed-page migration
//!   time by `factor > 1` (page-walk contention).
//! - **OOM pressure** — a co-tenant reserves a fraction of
//!   [`crate::Platform::dram_bytes`]; plans whose footprint no longer
//!   fits must shrink (explicit two-copy arrays → single-copy managed).
//!
//! Plans come from a seed ([`FaultPlan::from_seed`]) for Monte-Carlo
//! storms, or from the human-writable spec grammar ([`FaultPlan::parse`])
//! for targeted reproduction of one scenario.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// The taxonomy of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FaultKind {
    /// A kernel launch fails and must be retried or re-placed.
    TransientKernel,
    /// Attainable DRAM bandwidth drops for a time window.
    BandwidthDegradation,
    /// The compute roofline drops for a time window (thermal clamp).
    ThermalThrottle,
    /// Managed-page migrations stall (page-walk contention window).
    MigrationStall,
    /// A co-tenant squeezes the DRAM budget below the plan's footprint.
    OomPressure,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::TransientKernel => "transient-kernel",
            Self::BandwidthDegradation => "bandwidth-degradation",
            Self::ThermalThrottle => "thermal-throttle",
            Self::MigrationStall => "migration-stall",
            Self::OomPressure => "oom-pressure",
        })
    }
}

/// A kernel-failure injection on one graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KernelFault {
    /// Target node index (the runtime injects when this node launches on
    /// the GPU).
    pub node: usize,
    /// How many consecutive launches fail before one succeeds;
    /// `u32::MAX` means the kernel never comes back (permanent loss).
    pub fail_count: u32,
}

/// A time window scaling one aspect of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultWindow {
    /// Window start (us, simulated clock).
    pub start_us: f64,
    /// Window end (us, simulated clock).
    pub end_us: f64,
    /// The multiplier applied while the window is active: `< 1` for
    /// bandwidth/thermal degradation, `> 1` for migration stalls.
    pub factor: f64,
}

impl FaultWindow {
    /// True when `t_us` falls inside the window.
    #[must_use]
    pub fn active(&self, t_us: f64) -> bool {
        t_us >= self.start_us && t_us < self.end_us
    }
}

/// A complete, declarative description of one run's disturbances.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Kernel-failure injections, at most one entry per node.
    pub kernel_faults: Vec<KernelFault>,
    /// DRAM bandwidth degradation windows (`factor < 1`).
    pub bandwidth_windows: Vec<FaultWindow>,
    /// Thermal throttle windows scaling the compute roofline
    /// (`factor < 1`).
    pub thermal_windows: Vec<FaultWindow>,
    /// Managed-page migration stall windows (`factor > 1`).
    pub stall_windows: Vec<FaultWindow>,
    /// Fraction of platform DRAM a co-tenant has reserved, in `[0, 1)`
    /// (`0` = no memory pressure).
    pub oom_reserve_fraction: f64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kernel_faults.is_empty()
            && self.bandwidth_windows.is_empty()
            && self.thermal_windows.is_empty()
            && self.stall_windows.is_empty()
            && self.oom_reserve_fraction <= 0.0
    }

    /// Generates a random-but-reproducible plan for a graph of `nodes`
    /// nodes: the Monte-Carlo draw behind `edgenn storm`. The same
    /// `(seed, nodes)` pair always yields the identical plan.
    #[must_use]
    pub fn from_seed(seed: u64, nodes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::default();

        // Transient kernel failures on 1-3 distinct non-input nodes.
        if nodes > 1 {
            let count = rng.gen_range(1..=3usize.min(nodes - 1));
            let mut targets: Vec<usize> = Vec::with_capacity(count);
            while targets.len() < count {
                let node = rng.gen_range(1..nodes);
                if !targets.contains(&node) {
                    targets.push(node);
                }
            }
            for node in targets {
                // Mostly one-shot transients; occasionally a permanent
                // loss that forces the CPU fallback path.
                let fail_count = match rng.gen_range(0..6u32) {
                    0 => u32::MAX,
                    1 | 2 => 2,
                    _ => 1,
                };
                plan.kernel_faults.push(KernelFault { node, fail_count });
            }
            plan.kernel_faults.sort_by_key(|f| f.node);
        }

        // Up to two bandwidth-degradation windows.
        for _ in 0..rng.gen_range(0..=2u32) {
            let start = rng.gen_range(0.0..4_000.0);
            plan.bandwidth_windows.push(FaultWindow {
                start_us: start,
                end_us: start + rng.gen_range(200.0..4_000.0),
                factor: rng.gen_range(0.3..0.9),
            });
        }
        // At most one thermal clamp.
        if rng.gen_bool(0.5) {
            let start = rng.gen_range(0.0..2_000.0);
            plan.thermal_windows.push(FaultWindow {
                start_us: start,
                end_us: start + rng.gen_range(500.0..8_000.0),
                factor: rng.gen_range(0.5..0.9),
            });
        }
        // At most one migration-stall window.
        if rng.gen_bool(0.4) {
            let start = rng.gen_range(0.0..3_000.0);
            plan.stall_windows.push(FaultWindow {
                start_us: start,
                end_us: start + rng.gen_range(200.0..3_000.0),
                factor: rng.gen_range(2.0..6.0),
            });
        }
        // Occasional co-tenant memory pressure.
        if rng.gen_bool(0.25) {
            plan.oom_reserve_fraction = rng.gen_range(0.5..0.95);
        }
        plan
    }

    /// Parses the `--faults` spec grammar: semicolon-separated clauses,
    /// each `kind:args`.
    ///
    /// ```text
    /// kernel:<node>x<count>        count = failures before success, or "inf"
    /// bw:<start>-<end>@<factor>    bandwidth window, factor in (0, 1)
    /// thermal:<start>-<end>@<factor>
    /// stall:<start>-<end>@<factor> factor > 1
    /// oom:<fraction>               reserved DRAM fraction in (0, 1)
    /// ```
    ///
    /// Example: `kernel:3x1;bw:0-500@0.5;oom:0.8`.
    ///
    /// # Errors
    /// Returns a human-readable message for any malformed clause.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut plan = Self::default();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (kind, args) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause '{clause}' lacks a 'kind:args' colon"))?;
            match kind {
                "kernel" => {
                    let (node, count) = args
                        .split_once('x')
                        .ok_or_else(|| format!("kernel clause '{args}' wants <node>x<count>"))?;
                    let node: usize = node
                        .parse()
                        .map_err(|_| format!("bad node index '{node}'"))?;
                    let fail_count = if count == "inf" {
                        u32::MAX
                    } else {
                        count
                            .parse()
                            .map_err(|_| format!("bad fail count '{count}'"))?
                    };
                    plan.kernel_faults.push(KernelFault { node, fail_count });
                }
                "bw" | "thermal" | "stall" => {
                    let (range, factor) = args.split_once('@').ok_or_else(|| {
                        format!("{kind} clause '{args}' wants <start>-<end>@<factor>")
                    })?;
                    let (start, end) = range
                        .split_once('-')
                        .ok_or_else(|| format!("bad window range '{range}'"))?;
                    let window = FaultWindow {
                        start_us: start
                            .parse()
                            .map_err(|_| format!("bad window start '{start}'"))?,
                        end_us: end.parse().map_err(|_| format!("bad window end '{end}'"))?,
                        factor: factor
                            .parse()
                            .map_err(|_| format!("bad factor '{factor}'"))?,
                    };
                    if !window.start_us.is_finite()
                        || !window.end_us.is_finite()
                        || window.end_us <= window.start_us
                    {
                        return Err(format!("empty or non-finite window '{range}'"));
                    }
                    match kind {
                        "bw" | "thermal" => {
                            if !(window.factor > 0.0 && window.factor < 1.0) {
                                return Err(format!(
                                    "{kind} factor {} must lie in (0, 1)",
                                    window.factor
                                ));
                            }
                            if kind == "bw" {
                                plan.bandwidth_windows.push(window);
                            } else {
                                plan.thermal_windows.push(window);
                            }
                        }
                        _ => {
                            if window.factor <= 1.0 {
                                return Err(format!(
                                    "stall factor {} must exceed 1",
                                    window.factor
                                ));
                            }
                            plan.stall_windows.push(window);
                        }
                    }
                }
                "oom" => {
                    let f: f64 = args
                        .parse()
                        .map_err(|_| format!("bad oom fraction '{args}'"))?;
                    if !(0.0..1.0).contains(&f) {
                        return Err(format!("oom fraction {f} must lie in [0, 1)"));
                    }
                    plan.oom_reserve_fraction = f;
                }
                other => return Err(format!("unknown fault kind '{other}'")),
            }
        }
        Ok(plan)
    }

    /// One-line human description of the plan.
    #[must_use]
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "no faults".to_string();
        }
        let mut parts = Vec::new();
        if !self.kernel_faults.is_empty() {
            let nodes: Vec<String> = self
                .kernel_faults
                .iter()
                .map(|f| {
                    if f.fail_count == u32::MAX {
                        format!("n{} (permanent)", f.node)
                    } else {
                        format!("n{} (x{})", f.node, f.fail_count)
                    }
                })
                .collect();
            parts.push(format!("kernel faults: {}", nodes.join(", ")));
        }
        if !self.bandwidth_windows.is_empty() {
            parts.push(format!(
                "{} bandwidth window(s)",
                self.bandwidth_windows.len()
            ));
        }
        if !self.thermal_windows.is_empty() {
            parts.push(format!("{} thermal window(s)", self.thermal_windows.len()));
        }
        if !self.stall_windows.is_empty() {
            parts.push(format!("{} stall window(s)", self.stall_windows.len()));
        }
        if self.oom_reserve_fraction > 0.0 {
            parts.push(format!(
                "oom pressure ({:.0}% DRAM reserved)",
                self.oom_reserve_fraction * 100.0
            ));
        }
        parts.join("; ")
    }
}

/// The stateful consultation object the executing timeline carries: it
/// resolves "what does the environment do to this event at time t" and
/// tracks which injections actually bit, so a run's fault accounting is
/// exact rather than estimated from the plan.
#[derive(Debug, Clone)]
pub struct FaultClock {
    plan: FaultPlan,
    /// Remaining failures per planned kernel fault (parallel to
    /// `plan.kernel_faults`).
    remaining: Vec<u32>,
    /// Window categories that have bitten at least once (for counting an
    /// environmental window as a single injected fault).
    window_bitten: [bool; 3],
    injected: u64,
}

/// Index into `window_bitten`.
const W_BANDWIDTH: usize = 0;
const W_THERMAL: usize = 1;
const W_STALL: usize = 2;

impl FaultClock {
    /// Wraps a plan with fresh per-run state.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let remaining = plan.kernel_faults.iter().map(|f| f.fail_count).collect();
        Self {
            plan,
            remaining,
            window_bitten: [false; 3],
            injected: 0,
        }
    }

    /// The plan this clock executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far: each kernel failure counts once, and
    /// each environmental category (bandwidth, thermal, stall, oom)
    /// counts once when it first affects the run.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Consumes one planned failure of `node`'s kernel if any remain;
    /// returns true when the launch at this point must fail.
    pub fn should_fail_kernel(&mut self, node: usize) -> bool {
        for (i, fault) in self.plan.kernel_faults.iter().enumerate() {
            if fault.node == node && self.remaining[i] > 0 {
                if self.remaining[i] != u32::MAX {
                    self.remaining[i] -= 1;
                }
                self.injected += 1;
                return true;
            }
        }
        false
    }

    /// True when `node` carries a permanent (never-recovering) kernel
    /// fault.
    #[must_use]
    pub fn is_permanent(&self, node: usize) -> bool {
        self.plan
            .kernel_faults
            .iter()
            .any(|f| f.node == node && f.fail_count == u32::MAX)
    }

    fn window_product(windows: &[FaultWindow], t_us: f64) -> f64 {
        windows
            .iter()
            .filter(|w| w.active(t_us))
            .map(|w| w.factor)
            .product()
    }

    /// Multiplier on attainable memory bandwidth at `t_us` (product of
    /// active degradation windows, floored at 5%).
    pub fn bandwidth_factor_at(&mut self, t_us: f64) -> f64 {
        let f = Self::window_product(&self.plan.bandwidth_windows, t_us).max(0.05);
        if f < 1.0 && !self.window_bitten[W_BANDWIDTH] {
            self.window_bitten[W_BANDWIDTH] = true;
            self.injected += 1;
        }
        f
    }

    /// Multiplier on the compute roofline at `t_us` (thermal clamp,
    /// floored at 5%).
    pub fn compute_factor_at(&mut self, t_us: f64) -> f64 {
        let f = Self::window_product(&self.plan.thermal_windows, t_us).max(0.05);
        if f < 1.0 && !self.window_bitten[W_THERMAL] {
            self.window_bitten[W_THERMAL] = true;
            self.injected += 1;
        }
        f
    }

    /// Multiplier (>= 1) on managed-page migration time at `t_us`.
    pub fn stall_factor_at(&mut self, t_us: f64) -> f64 {
        let f = Self::window_product(&self.plan.stall_windows, t_us).max(1.0);
        if f > 1.0 && !self.window_bitten[W_STALL] {
            self.window_bitten[W_STALL] = true;
            self.injected += 1;
        }
        f
    }

    /// Bytes a co-tenant has reserved out of `dram_bytes`. A non-zero
    /// return counts the OOM fault as injected.
    pub fn reserved_bytes(&mut self, dram_bytes: u64) -> u64 {
        if self.plan.oom_reserve_fraction <= 0.0 {
            return 0;
        }
        self.injected += 1;
        (dram_bytes as f64 * self.plan.oom_reserve_fraction) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_vary_by_seed() {
        let a = FaultPlan::from_seed(42, 12);
        let b = FaultPlan::from_seed(42, 12);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty(), "seeded plans always inject kernel faults");
        let mut differs = false;
        for seed in 0..16 {
            if FaultPlan::from_seed(seed, 12) != a {
                differs = true;
            }
        }
        assert!(differs, "seeds must produce distinct plans");
    }

    #[test]
    fn seeded_kernel_faults_never_target_the_input_node() {
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed, 9);
            for fault in &plan.kernel_faults {
                assert!(fault.node >= 1 && fault.node < 9, "seed {seed}");
            }
        }
    }

    #[test]
    fn spec_grammar_round_trips_every_clause_kind() {
        let plan = FaultPlan::parse(
            "kernel:3x1;kernel:5xinf;bw:0-500@0.5;thermal:100-900@0.7;stall:0-200@3.5;oom:0.8",
        )
        .unwrap();
        assert_eq!(
            plan.kernel_faults,
            vec![
                KernelFault {
                    node: 3,
                    fail_count: 1
                },
                KernelFault {
                    node: 5,
                    fail_count: u32::MAX
                }
            ]
        );
        assert_eq!(plan.bandwidth_windows.len(), 1);
        assert_eq!(plan.thermal_windows.len(), 1);
        assert_eq!(plan.stall_windows.len(), 1);
        assert!((plan.oom_reserve_fraction - 0.8).abs() < 1e-12);
        assert!(plan.describe().contains("kernel faults"));
    }

    #[test]
    fn spec_grammar_rejects_malformed_clauses() {
        for bad in [
            "kernel:3",        // missing count
            "kernel:ax1",      // bad node
            "bw:0-500",        // missing factor
            "bw:500-0@0.5",    // empty window
            "bw:0-500@1.5",    // factor out of range
            "thermal:0-1@0",   // factor out of range
            "stall:0-500@0.5", // stall must slow things down
            "oom:1.5",         // fraction out of range
            "martian:1",       // unknown kind
            "nocolon",         // no kind:args
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should be rejected");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn clock_consumes_transient_failures_exactly() {
        let plan = FaultPlan::parse("kernel:2x2").unwrap();
        let mut clock = FaultClock::new(plan);
        assert!(clock.should_fail_kernel(2));
        assert!(clock.should_fail_kernel(2));
        assert!(!clock.should_fail_kernel(2), "two failures, then recovery");
        assert!(!clock.should_fail_kernel(1), "other nodes unaffected");
        assert_eq!(clock.injected(), 2);
    }

    #[test]
    fn permanent_faults_never_recover() {
        let plan = FaultPlan::parse("kernel:4xinf").unwrap();
        let mut clock = FaultClock::new(plan);
        for _ in 0..100 {
            assert!(clock.should_fail_kernel(4));
        }
        assert!(clock.is_permanent(4));
        assert!(!clock.is_permanent(3));
    }

    #[test]
    fn windows_scale_only_while_active_and_count_once() {
        let plan = FaultPlan::parse("bw:100-200@0.5;thermal:0-50@0.8;stall:10-20@4.0").unwrap();
        let mut clock = FaultClock::new(plan);
        assert_eq!(clock.bandwidth_factor_at(50.0), 1.0);
        assert_eq!(clock.bandwidth_factor_at(150.0), 0.5);
        assert_eq!(clock.bandwidth_factor_at(250.0), 1.0);
        assert_eq!(clock.compute_factor_at(25.0), 0.8);
        assert_eq!(clock.stall_factor_at(15.0), 4.0);
        assert_eq!(clock.stall_factor_at(25.0), 1.0);
        // Re-entering a window does not double-count the fault.
        clock.bandwidth_factor_at(150.0);
        assert_eq!(clock.injected(), 3);
    }

    #[test]
    fn overlapping_windows_compound() {
        let plan = FaultPlan::parse("bw:0-100@0.5;bw:50-150@0.5").unwrap();
        let mut clock = FaultClock::new(plan);
        assert!((clock.bandwidth_factor_at(75.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn oom_reservation_scales_with_dram() {
        let plan = FaultPlan::parse("oom:0.5").unwrap();
        let mut clock = FaultClock::new(plan);
        assert_eq!(clock.reserved_bytes(32 << 30), 16 << 30);
        let mut clean = FaultClock::new(FaultPlan::none());
        assert_eq!(clean.reserved_bytes(32 << 30), 0);
        assert_eq!(clean.injected(), 0);
    }
}
