//! Processor models: roofline kernel timing with occupancy and
//! cache-pressure effects.

use serde::{Deserialize, Serialize};

/// Whether a processor is a CPU or a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorKind {
    /// Latency-oriented multicore CPU.
    Cpu,
    /// Throughput-oriented GPU.
    Gpu,
}

impl std::fmt::Display for ProcessorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Cpu => "CPU",
            Self::Gpu => "GPU",
        })
    }
}

/// Operation class of a kernel — mirrors the layer classes in `edgenn-nn`.
///
/// Classes carry different efficiency factors because the paper's
/// layer-wise measurements (Figures 10-11, Table I) hinge on those
/// differences: convolutions approach a device's compute roofline while
/// fully-connected layers and pooling are bandwidth-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// 2-D convolution.
    Conv,
    /// Fully-connected layer (mat-vec at batch 1).
    Fc,
    /// Pooling.
    Pool,
    /// Element-wise activation.
    Activation,
    /// Normalization.
    Norm,
    /// Structural data movement (concat/add/flatten).
    Combine,
}

impl OpClass {
    /// All classes (for tables and tests).
    pub const ALL: [OpClass; 6] = [
        OpClass::Conv,
        OpClass::Fc,
        OpClass::Pool,
        OpClass::Activation,
        OpClass::Norm,
        OpClass::Combine,
    ];
}

/// Per-class fraction of peak FLOP throughput a processor attains.
///
/// These model kernel quality: the paper's artifact uses hand-written CUDA
/// kernels (not cuDNN), which reach a modest fraction of peak.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EfficiencyTable {
    /// Convolution compute efficiency.
    pub conv: f64,
    /// Fully-connected compute efficiency.
    pub fc: f64,
    /// Pooling compute efficiency.
    pub pool: f64,
    /// Activation compute efficiency.
    pub activation: f64,
    /// Normalization compute efficiency.
    pub norm: f64,
    /// Structural-op compute efficiency.
    pub combine: f64,
}

impl EfficiencyTable {
    /// Uniform table (useful in tests).
    pub fn uniform(eff: f64) -> Self {
        Self {
            conv: eff,
            fc: eff,
            pool: eff,
            activation: eff,
            norm: eff,
            combine: eff,
        }
    }

    /// Looks up the factor for a class.
    pub fn get(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Conv => self.conv,
            OpClass::Fc => self.fc,
            OpClass::Pool => self.pool,
            OpClass::Activation => self.activation,
            OpClass::Norm => self.norm,
            OpClass::Combine => self.combine,
        }
    }
}

/// Static description of one kernel launch, derived from a layer's
/// analytic workload by `edgenn-core`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Operation class.
    pub class: OpClass,
    /// Floating-point operations.
    pub flops: u64,
    /// Activation bytes read.
    pub bytes_in: u64,
    /// Activation bytes written.
    pub bytes_out: u64,
    /// Parameter bytes read.
    pub weight_bytes: u64,
    /// Independent output elements (GPU occupancy proxy).
    pub parallelism: u64,
    /// Bytes the kernel keeps live while computing (CPU cache proxy);
    /// for convolution this is the im2col-expanded patch matrix.
    pub working_set_bytes: u64,
}

impl KernelDesc {
    /// Total bytes the kernel moves through memory.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out + self.weight_bytes
    }
}

/// Modifiers applied to one kernel execution by the memory system and the
/// co-running state.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionContext {
    /// Multiplier (≤ 1) on attainable memory bandwidth: managed-memory
    /// (zero-copy) access penalty, from [`crate::memory::MemorySpec`].
    pub bandwidth_factor: f64,
    /// Multiplier (≤ 1) on attainable memory bandwidth when the other
    /// processor is computing at the same time (shared-DRAM contention on
    /// the integrated device, paper Challenge 1).
    pub contention_factor: f64,
    /// Multiplier (≤ 1) on the attainable FLOP rate: thermal throttling
    /// injected by [`crate::fault::FaultClock`] clamping sustained clocks.
    pub compute_factor: f64,
}

impl Default for ExecutionContext {
    fn default() -> Self {
        Self {
            bandwidth_factor: 1.0,
            contention_factor: 1.0,
            compute_factor: 1.0,
        }
    }
}

/// One processor of a platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// Human-readable name ("Carmel ARMv8.2 x8", "Volta iGPU 512c", …).
    pub name: String,
    /// CPU or GPU.
    pub kind: ProcessorKind,
    /// Peak fp32 throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Attainable memory bandwidth in GB/s (already discounted from the
    /// DRAM spec number for this processor's access path).
    pub mem_bw_gbps: f64,
    /// Fixed overhead per kernel launch, in microseconds (CUDA launch or
    /// OpenMP fork-join).
    pub launch_overhead_us: f64,
    /// Per-class compute efficiency.
    pub efficiency: EfficiencyTable,
    /// Per-class *bandwidth* attainment: fraction of `mem_bw_gbps` a
    /// kernel of that class actually sustains. Hand-written kernels are
    /// far from STREAM-optimal — e.g. a naive GPU mat-vec (fc) reaches
    /// less than half of the device bandwidth, which is precisely why the
    /// paper's CPU co-running helps fully-connected layers so much
    /// (Table I).
    pub bw_efficiency: EfficiencyTable,
    /// Output elements needed to saturate the device (GPUs only; a kernel
    /// with fewer independent elements runs at proportionally lower
    /// efficiency). `0` disables the effect.
    pub saturation_parallelism: u64,
    /// Last-level cache size in bytes (CPUs only; kernels whose working
    /// set exceeds it lose compute efficiency). `0` disables the effect.
    pub cache_bytes: u64,
    /// Efficiency floor once the working set thrashes the cache.
    pub cache_thrash_floor: f64,
}

impl ProcessorSpec {
    /// Effective compute efficiency for a kernel, folding in occupancy
    /// (GPU) and cache pressure (CPU).
    pub fn effective_efficiency(&self, desc: &KernelDesc) -> f64 {
        let mut eff = self.efficiency.get(desc.class);
        if self.saturation_parallelism > 0 && desc.parallelism < self.saturation_parallelism {
            // Under-occupied GPU: efficiency scales with the fraction of
            // the device the kernel can fill.
            let occupancy = desc.parallelism as f64 / self.saturation_parallelism as f64;
            eff *= occupancy.max(1e-3);
        }
        if self.cache_bytes > 0 && desc.working_set_bytes > self.cache_bytes {
            // Cache-thrashed CPU kernel: quadratic falloff with working-set
            // ratio, floored (streaming kernels still make progress).
            let ratio = self.cache_bytes as f64 / desc.working_set_bytes as f64;
            eff *= (ratio * ratio).max(self.cache_thrash_floor);
        }
        eff
    }

    /// Kernel execution time in microseconds under `ctx`.
    ///
    /// Roofline: the kernel takes the longer of its compute time at the
    /// effective FLOP rate and its memory time at the effective bandwidth,
    /// plus the fixed launch overhead.
    pub fn kernel_time_us(&self, desc: &KernelDesc, ctx: &ExecutionContext) -> f64 {
        let eff = self.effective_efficiency(desc);
        let gflops = (self.peak_gflops * eff * ctx.compute_factor).max(1e-6);
        let compute_us = desc.flops as f64 / gflops * 1e-3; // flops / (GFLOP/s) = ns
        let bw = (self.mem_bw_gbps
            * self.bw_efficiency.get(desc.class)
            * ctx.bandwidth_factor
            * ctx.contention_factor)
            .max(1e-6);
        let memory_us = desc.total_bytes() as f64 / bw * 1e-3; // bytes / (GB/s) = ns
        self.launch_overhead_us + compute_us.max(memory_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> ProcessorSpec {
        ProcessorSpec {
            name: "test-gpu".into(),
            kind: ProcessorKind::Gpu,
            peak_gflops: 1000.0,
            mem_bw_gbps: 100.0,
            launch_overhead_us: 10.0,
            efficiency: EfficiencyTable::uniform(0.5),
            bw_efficiency: EfficiencyTable::uniform(1.0),
            saturation_parallelism: 10_000,
            cache_bytes: 0,
            cache_thrash_floor: 0.1,
        }
    }

    fn cpu() -> ProcessorSpec {
        ProcessorSpec {
            name: "test-cpu".into(),
            kind: ProcessorKind::Cpu,
            peak_gflops: 100.0,
            mem_bw_gbps: 40.0,
            launch_overhead_us: 2.0,
            efficiency: EfficiencyTable::uniform(0.5),
            bw_efficiency: EfficiencyTable::uniform(1.0),
            saturation_parallelism: 0,
            cache_bytes: 4 << 20,
            cache_thrash_floor: 0.2,
        }
    }

    fn conv_kernel(flops: u64, parallelism: u64, ws: u64) -> KernelDesc {
        KernelDesc {
            class: OpClass::Conv,
            flops,
            bytes_in: 1000,
            bytes_out: 1000,
            weight_bytes: 1000,
            parallelism,
            working_set_bytes: ws,
        }
    }

    #[test]
    fn compute_bound_kernel_time_scales_with_flops() {
        let g = gpu();
        let ctx = ExecutionContext::default();
        let t1 = g.kernel_time_us(&conv_kernel(1_000_000_000, 1_000_000, 0), &ctx);
        let t2 = g.kernel_time_us(&conv_kernel(2_000_000_000, 1_000_000, 0), &ctx);
        // 1 GFLOP at 500 GFLOP/s = 2000 us (+10 launch).
        assert!((t1 - 2010.0).abs() < 1.0, "t1 = {t1}");
        assert!((t2 - t1 - 2000.0).abs() < 1.0);
    }

    #[test]
    fn memory_bound_kernel_ignores_flops() {
        let g = gpu();
        let ctx = ExecutionContext::default();
        let desc = KernelDesc {
            class: OpClass::Pool,
            flops: 1,
            bytes_in: 100_000_000,
            bytes_out: 0,
            weight_bytes: 0,
            parallelism: 1_000_000,
            working_set_bytes: 0,
        };
        // 100 MB at 100 GB/s = 1000 us.
        let t = g.kernel_time_us(&desc, &ctx);
        assert!((t - 1010.0).abs() < 1.0, "t = {t}");
    }

    #[test]
    fn gpu_under_occupancy_slows_small_kernels() {
        let g = gpu();
        let ctx = ExecutionContext::default();
        let saturated = g.kernel_time_us(&conv_kernel(100_000_000, 100_000, 0), &ctx);
        let starved = g.kernel_time_us(&conv_kernel(100_000_000, 1_000, 0), &ctx);
        assert!(
            starved > 5.0 * saturated,
            "under-occupied GPU should be much slower: {starved} vs {saturated}"
        );
    }

    #[test]
    fn cpu_cache_thrash_slows_big_working_sets() {
        let c = cpu();
        let ctx = ExecutionContext::default();
        let fits = c.kernel_time_us(&conv_kernel(100_000_000, 1000, 1 << 20), &ctx);
        let thrashes = c.kernel_time_us(&conv_kernel(100_000_000, 1000, 64 << 20), &ctx);
        assert!(thrashes > 2.0 * fits, "{thrashes} vs {fits}");
        // Floor bounds the penalty.
        let worse = c.kernel_time_us(&conv_kernel(100_000_000, 1000, 1 << 40), &ctx);
        let floor_time = 100_000_000f64 / (100.0 * 0.5 * 0.2) * 1e-3 + 2.0;
        assert!((worse - floor_time).abs() < 1.0);
    }

    #[test]
    fn context_factors_scale_bandwidth() {
        let g = gpu();
        let desc = KernelDesc {
            class: OpClass::Fc,
            flops: 1,
            bytes_in: 10_000_000,
            bytes_out: 0,
            weight_bytes: 0,
            parallelism: 1_000_000,
            working_set_bytes: 0,
        };
        let base = g.kernel_time_us(&desc, &ExecutionContext::default());
        let managed = g.kernel_time_us(
            &desc,
            &ExecutionContext {
                bandwidth_factor: 0.5,
                contention_factor: 1.0,
                compute_factor: 1.0,
            },
        );
        let contended = g.kernel_time_us(
            &desc,
            &ExecutionContext {
                bandwidth_factor: 0.5,
                contention_factor: 0.5,
                compute_factor: 1.0,
            },
        );
        assert!((managed - 10.0) / (base - 10.0) > 1.9);
        assert!((contended - 10.0) / (managed - 10.0) > 1.9);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let g = gpu();
        let t = g.kernel_time_us(&conv_kernel(1000, 100, 0), &ExecutionContext::default());
        assert!(
            (10.0..11.0).contains(&t),
            "tiny kernel ~ launch overhead, got {t}"
        );
    }

    #[test]
    fn efficiency_table_lookup() {
        let t = EfficiencyTable {
            conv: 0.5,
            fc: 0.4,
            pool: 0.3,
            activation: 0.2,
            norm: 0.1,
            combine: 0.05,
        };
        assert_eq!(t.get(OpClass::Conv), 0.5);
        assert_eq!(t.get(OpClass::Fc), 0.4);
        assert_eq!(t.get(OpClass::Pool), 0.3);
        assert_eq!(t.get(OpClass::Activation), 0.2);
        assert_eq!(t.get(OpClass::Norm), 0.1);
        assert_eq!(t.get(OpClass::Combine), 0.05);
        assert_eq!(OpClass::ALL.len(), 6);
    }
}
