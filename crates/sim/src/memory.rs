//! Memory-system model: unified vs. discrete architectures and the two
//! allocation strategies of the paper's semantic-aware memory management
//! (Section IV-B).

use serde::{Deserialize, Serialize};

/// How an array is allocated — the two mechanisms EdgeNN chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocStrategy {
    /// `cudaMallocManaged` zero-copy array in unified memory: both
    /// processors access the same pages, no explicit copies, but accesses
    /// pay a managed-memory bandwidth penalty and cross-processor
    /// write-sharing causes consistency thrash.
    Managed,
    /// `cudaMalloc` + host array: two copies, explicit `cudaMemcpy` at
    /// every producer/consumer boundary that crosses processors.
    Explicit,
}

impl std::fmt::Display for AllocStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Managed => "managed",
            Self::Explicit => "explicit",
        })
    }
}

/// The physical memory organization of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemoryArchitecture {
    /// Integrated SoC: one DRAM shared by CPU and GPU (Jetson-style).
    /// "The integrated edge device does not use discrete memory for GPU
    /// but uses unified DRAM memory shared with CPU" (paper Section II).
    Unified,
    /// Discrete GPU: separate host DRAM and device GDDR joined by PCIe.
    Discrete {
        /// Effective PCIe bandwidth in GB/s.
        pcie_bw_gbps: f64,
        /// Per-transfer latency in microseconds (driver + DMA setup).
        pcie_latency_us: f64,
    },
}

/// Full memory-system specification of a platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Architecture (unified or discrete).
    pub architecture: MemoryArchitecture,
    /// Effective CPU<->GPU copy bandwidth in GB/s. On a unified device
    /// this is DRAM-to-DRAM `memcpy` (read + write on the same bus); on a
    /// discrete device it equals the PCIe bandwidth.
    pub copy_bw_gbps: f64,
    /// Fixed cost of one explicit copy in microseconds (`cudaMemcpy`
    /// dispatch, driver work).
    pub copy_latency_us: f64,
    /// Bandwidth multiplier (≤ 1) for kernels touching managed arrays —
    /// the zero-copy access penalty. This is what makes the paper's
    /// pooling layers *slower* under zero-copy (Figure 10): they are pure
    /// memory traffic, so the penalty is not hidden by compute.
    pub managed_bw_factor: f64,
    /// Cost per byte (in microseconds per MB) of migrating managed pages
    /// when a processor first touches data last written by the other
    /// processor, without prefetching. On a discrete architecture this is
    /// a PCIe page-by-page transfer (slower than a bulk copy); on an
    /// integrated SoC it is only a page-table/coherence walk over the
    /// shared DRAM.
    pub page_migration_us_per_mb: f64,
    /// Fixed page-fault servicing overhead per migration event, in
    /// microseconds.
    pub page_fault_overhead_us: f64,
    /// Multiplier (> 1) on migration cost when both processors write the
    /// same managed array in one step — the consistency-thrash case that
    /// drives EdgeNN to allocate per-layer output arrays explicitly
    /// ("zero-copy incurs massive page faults and memory copies to
    /// guarantee fine-grained memory consistency", Section IV-B).
    pub thrash_multiplier: f64,
    /// Bandwidth multiplier (≤ 1) applied to *each* processor when both
    /// compute simultaneously on a unified device (shared memory
    /// controller contention, paper Challenge 1). Ignored for discrete.
    pub corun_contention_factor: f64,
}

impl MemorySpec {
    /// Time of one explicit CPU<->GPU copy of `bytes`, in microseconds.
    pub fn copy_time_us(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.copy_latency_us + bytes as f64 / (self.copy_bw_gbps * 1e3)
    }

    /// Time to service on-demand page migration of `bytes` of managed
    /// data, in microseconds. `prefetched` models
    /// `cudaMemPrefetchAsync`: the fixed fault overhead is avoided and
    /// the pages move ahead of the kernel at the better of the bulk copy
    /// bandwidth and the architecture's page-walk rate — prefetching is
    /// never slower than faulting on demand.
    pub fn migration_time_us(&self, bytes: u64, prefetched: bool) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let mb = bytes as f64 / 1e6;
        let page_walk = mb * self.page_migration_us_per_mb;
        if prefetched {
            let bulk = bytes as f64 / (self.copy_bw_gbps * 1e3);
            bulk.min(page_walk)
        } else {
            self.page_fault_overhead_us + page_walk
        }
    }

    /// Consistency-thrash penalty when both processors mutate a managed
    /// array of `bytes` within one step, in microseconds.
    pub fn thrash_time_us(&self, bytes: u64) -> f64 {
        self.migration_time_us(bytes, false) * self.thrash_multiplier
    }

    /// True for integrated (unified-DRAM) platforms.
    pub fn is_unified(&self) -> bool {
        matches!(self.architecture, MemoryArchitecture::Unified)
    }

    /// Bandwidth factor a kernel sees for arrays under `strategy`.
    pub fn bandwidth_factor(&self, strategy: AllocStrategy) -> f64 {
        match strategy {
            AllocStrategy::Managed => self.managed_bw_factor,
            AllocStrategy::Explicit => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unified() -> MemorySpec {
        MemorySpec {
            architecture: MemoryArchitecture::Unified,
            copy_bw_gbps: 10.0,
            copy_latency_us: 10.0,
            managed_bw_factor: 0.7,
            page_migration_us_per_mb: 250.0,
            page_fault_overhead_us: 15.0,
            thrash_multiplier: 4.0,
            corun_contention_factor: 0.65,
        }
    }

    #[test]
    fn copy_time_is_latency_plus_linear() {
        let m = unified();
        assert_eq!(m.copy_time_us(0), 0.0);
        // 10 MB at 10 GB/s = 1000 us + 10 latency.
        assert!((m.copy_time_us(10_000_000) - 1010.0).abs() < 1e-6);
        // Linearity: doubling bytes doubles the variable part.
        let t1 = m.copy_time_us(1_000_000) - 10.0;
        let t2 = m.copy_time_us(2_000_000) - 10.0;
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn prefetch_avoids_fault_overhead() {
        let m = unified();
        let on_demand = m.migration_time_us(1_000_000, false);
        let prefetched = m.migration_time_us(1_000_000, true);
        assert!(on_demand > prefetched);
        assert!((on_demand - (15.0 + 250.0)).abs() < 1e-6);
        assert!((prefetched - 100.0).abs() < 1e-6);
    }

    #[test]
    fn thrash_amplifies_migration() {
        let m = unified();
        assert!(
            (m.thrash_time_us(1_000_000) - 4.0 * m.migration_time_us(1_000_000, false)).abs()
                < 1e-9
        );
    }

    #[test]
    fn managed_strategy_reduces_bandwidth() {
        let m = unified();
        assert_eq!(m.bandwidth_factor(AllocStrategy::Explicit), 1.0);
        assert_eq!(m.bandwidth_factor(AllocStrategy::Managed), 0.7);
    }

    #[test]
    fn unified_flag_matches_architecture() {
        assert!(unified().is_unified());
        let discrete = MemorySpec {
            architecture: MemoryArchitecture::Discrete {
                pcie_bw_gbps: 12.0,
                pcie_latency_us: 20.0,
            },
            ..unified()
        };
        assert!(!discrete.is_unified());
    }

    #[test]
    fn zero_byte_migrations_are_free() {
        let m = unified();
        assert_eq!(m.migration_time_us(0, false), 0.0);
        assert_eq!(m.thrash_time_us(0), 0.0);
    }
}
