//! Power and energy model.
//!
//! The paper measures actual power with jetson-stats / a power meter /
//! nvidia-smi and reports performance-per-watt ratios (Figures 7 and 13).
//! We model each processor's draw as idle power plus a dynamic component
//! proportional to its busy fraction — the paper itself observes that
//! "processors' utilization is positively related to power consumption"
//! (Section V-B2), which is exactly this model.

use serde::{Deserialize, Serialize};

use crate::engine::Timeline;
use crate::processor::ProcessorKind;

/// Linear-in-utilization power model for one platform.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerModel {
    /// Board/base power always drawn (W): DRAM, regulators, idle SoC.
    pub base_w: f64,
    /// CPU additional draw at 100% utilization (W).
    pub cpu_dynamic_w: f64,
    /// GPU additional draw at 100% utilization (W). Zero for CPU-only
    /// platforms.
    pub gpu_dynamic_w: f64,
}

/// Energy accounting for one simulated run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Wall-clock makespan of the run (us).
    pub duration_us: f64,
    /// Average power over the run (W).
    pub avg_power_w: f64,
    /// Total energy (millijoules).
    pub energy_mj: f64,
    /// CPU busy fraction during the run.
    pub cpu_utilization: f64,
    /// GPU busy fraction during the run.
    pub gpu_utilization: f64,
}

impl PowerModel {
    /// Instantaneous power at the given utilizations (W).
    pub fn power_w(&self, cpu_util: f64, gpu_util: f64) -> f64 {
        self.base_w
            + self.cpu_dynamic_w * cpu_util.clamp(0.0, 1.0)
            + self.gpu_dynamic_w * gpu_util.clamp(0.0, 1.0)
    }

    /// Integrates energy over a finished timeline.
    pub fn energy(&self, timeline: &Timeline) -> EnergyReport {
        let duration_us = timeline.makespan_us();
        let cpu_utilization = timeline.busy_fraction(ProcessorKind::Cpu);
        let gpu_utilization = timeline.busy_fraction(ProcessorKind::Gpu);
        let avg_power_w = self.power_w(cpu_utilization, gpu_utilization);
        // W * us = uJ; /1000 = mJ.
        let energy_mj = avg_power_w * duration_us / 1000.0;
        EnergyReport {
            duration_us,
            avg_power_w,
            energy_mj,
            cpu_utilization,
            gpu_utilization,
        }
    }
}

impl EnergyReport {
    /// Inferences per joule for a run of one inference — the
    /// performance/power numerator used in Figures 7(a) and 13(a).
    pub fn perf_per_watt(&self) -> f64 {
        if self.duration_us <= 0.0 || self.avg_power_w <= 0.0 {
            return 0.0;
        }
        // performance = 1/latency (inferences per second); /W.
        let inferences_per_s = 1e6 / self.duration_us;
        inferences_per_s / self.avg_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;

    fn model() -> PowerModel {
        PowerModel {
            base_w: 3.0,
            cpu_dynamic_w: 10.0,
            gpu_dynamic_w: 17.0,
        }
    }

    #[test]
    fn power_is_linear_in_utilization() {
        let m = model();
        assert_eq!(m.power_w(0.0, 0.0), 3.0);
        assert_eq!(m.power_w(1.0, 0.0), 13.0);
        assert_eq!(m.power_w(1.0, 1.0), 30.0);
        assert_eq!(m.power_w(0.5, 0.5), 3.0 + 5.0 + 8.5);
    }

    #[test]
    fn utilization_clamped() {
        let m = model();
        assert_eq!(m.power_w(2.0, -1.0), 13.0);
    }

    #[test]
    fn energy_integrates_busy_fractions() {
        let m = model();
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 1000.0, "k");
        t.schedule(ProcessorKind::Cpu, TraceKind::Kernel, 0.0, 500.0, "c");
        let e = m.energy(&t);
        assert_eq!(e.duration_us, 1000.0);
        assert!((e.gpu_utilization - 1.0).abs() < 1e-9);
        assert!((e.cpu_utilization - 0.5).abs() < 1e-9);
        let expected_w = 3.0 + 10.0 * 0.5 + 17.0;
        assert!((e.avg_power_w - expected_w).abs() < 1e-9);
        assert!((e.energy_mj - expected_w * 1000.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn perf_per_watt_favors_fast_low_power_runs() {
        let fast_low = EnergyReport {
            duration_us: 1000.0,
            avg_power_w: 10.0,
            energy_mj: 10.0,
            cpu_utilization: 1.0,
            gpu_utilization: 1.0,
        };
        let slow_high = EnergyReport {
            duration_us: 2000.0,
            avg_power_w: 50.0,
            ..fast_low
        };
        assert!(fast_low.perf_per_watt() > slow_high.perf_per_watt());
        // 1000 inferences/s at 10 W = 100 inf/J.
        assert!((fast_low.perf_per_watt() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_reports_are_zero() {
        let r = EnergyReport {
            duration_us: 0.0,
            avg_power_w: 0.0,
            energy_mj: 0.0,
            cpu_utilization: 0.0,
            gpu_utilization: 0.0,
        };
        assert_eq!(r.perf_per_watt(), 0.0);
    }
}
