//! Two-processor simulation timeline.
//!
//! The runtime in `edgenn-core` decides *what* happens (which kernels on
//! which processor, which copies, which syncs); this timeline tracks
//! *when*: per-processor clocks, busy-time accounting (for utilization and
//! power), and the full event trace. When an observer sink is attached,
//! every scheduled activity — and every contention stall in front of one —
//! is mirrored into it as a span.

use std::sync::Arc;

use edgenn_obs::{EventSink, SinkEvent};

use crate::processor::ProcessorKind;
use crate::trace::{TraceEvent, TraceKind, TraceSummary};

/// Per-processor clock and busy-time accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct ProcState {
    /// Time at which the processor becomes free (us).
    free_at: f64,
    /// Accumulated busy time (us).
    busy: f64,
}

/// Stalls shorter than this are scheduling noise, not contention worth
/// reporting (us).
const STALL_EPSILON_US: f64 = 1e-9;

fn track_name(proc: ProcessorKind) -> &'static str {
    match proc {
        ProcessorKind::Cpu => "cpu",
        ProcessorKind::Gpu => "gpu",
    }
}

fn category_name(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::Kernel => "kernel",
        TraceKind::Copy => "copy",
        TraceKind::Migration => "migration",
        TraceKind::Thrash => "thrash",
        TraceKind::Sync => "sync",
        TraceKind::Idle => "idle",
    }
}

/// A simulated execution timeline over one CPU and one GPU.
///
/// All times are in microseconds from simulation start. Activities are
/// scheduled explicitly by the caller: `schedule` places work on one
/// processor no earlier than both the processor's free time and a
/// data-dependency `ready_at` time; `schedule_bus` places interconnect
/// work (copies/migrations) that occupies *both* processors' memory path
/// logically but is attributed to the bus.
#[derive(Default)]
pub struct Timeline {
    cpu: ProcState,
    gpu: ProcState,
    events: Vec<TraceEvent>,
    sink: Option<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timeline")
            .field("cpu", &self.cpu)
            .field("gpu", &self.gpu)
            .field("events", &self.events)
            .field("sink", &self.sink.as_ref().map(|_| "<EventSink>"))
            .finish()
    }
}

impl Timeline {
    /// Fresh timeline at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh timeline mirroring every activity into `sink`.
    pub fn with_sink(sink: Arc<dyn EventSink>) -> Self {
        Self {
            sink: Some(sink),
            ..Self::default()
        }
    }

    /// Attaches (or replaces) the observer sink.
    pub fn set_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sink = Some(sink);
    }

    fn emit(&self, event: SinkEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(event);
        }
    }

    fn state_mut(&mut self, proc: ProcessorKind) -> &mut ProcState {
        match proc {
            ProcessorKind::Cpu => &mut self.cpu,
            ProcessorKind::Gpu => &mut self.gpu,
        }
    }

    fn state(&self, proc: ProcessorKind) -> &ProcState {
        match proc {
            ProcessorKind::Cpu => &self.cpu,
            ProcessorKind::Gpu => &self.gpu,
        }
    }

    /// Time at which `proc` becomes free.
    pub fn free_at(&self, proc: ProcessorKind) -> f64 {
        self.state(proc).free_at
    }

    /// Current makespan: when the later processor becomes free.
    pub fn makespan_us(&self) -> f64 {
        self.cpu.free_at.max(self.gpu.free_at)
    }

    /// Schedules `duration_us` of work on `proc`, starting no earlier than
    /// `ready_at` and the processor's own availability. Returns the end time.
    pub fn schedule(
        &mut self,
        proc: ProcessorKind,
        kind: TraceKind,
        ready_at: f64,
        duration_us: f64,
        label: impl Into<String>,
    ) -> f64 {
        debug_assert!(duration_us >= 0.0, "negative duration");
        let label = label.into();
        let free_at = self.state(proc).free_at;
        let start = free_at.max(ready_at);
        // Data was ready but the processor was occupied: contention stall.
        if free_at > ready_at + STALL_EPSILON_US {
            self.emit(SinkEvent::span(
                "stall",
                track_name(proc),
                format!("{label} (wait)"),
                ready_at,
                free_at,
                0,
            ));
        }
        let end = start + duration_us;
        let state = self.state_mut(proc);
        state.free_at = end;
        state.busy += duration_us;
        self.emit(SinkEvent::span(
            category_name(kind),
            track_name(proc),
            label.clone(),
            start,
            end,
            0,
        ));
        self.events.push(TraceEvent {
            kind,
            processor: Some(proc),
            start_us: start,
            end_us: end,
            label,
            bytes: 0,
        });
        end
    }

    /// Schedules interconnect work (an explicit copy or page migration)
    /// moving `bytes` that must wait for both processors' pending work
    /// touching the data; the caller passes the dependency time. The bus
    /// activity advances *both* processors' availability (a `cudaMemcpy`
    /// is synchronous with respect to the stream on integrated devices)
    /// and counts as busy time on `attributed_to` if given.
    pub fn schedule_bus(
        &mut self,
        kind: TraceKind,
        ready_at: f64,
        duration_us: f64,
        bytes: u64,
        attributed_to: Option<ProcessorKind>,
        label: impl Into<String>,
    ) -> f64 {
        debug_assert!(duration_us >= 0.0, "negative duration");
        let label = label.into();
        let start = ready_at.max(self.cpu.free_at.min(self.gpu.free_at));
        let end = start + duration_us;
        if let Some(proc) = attributed_to {
            let state = self.state_mut(proc);
            state.free_at = state.free_at.max(end);
            state.busy += duration_us;
        }
        self.emit(SinkEvent::span(
            category_name(kind),
            "bus",
            label.clone(),
            start,
            end,
            bytes,
        ));
        self.events.push(TraceEvent {
            kind,
            processor: attributed_to,
            start_us: start,
            end_us: end,
            label,
            bytes,
        });
        end
    }

    /// Aligns both processors to the same time (a synchronization point),
    /// returning it.
    pub fn sync_all(&mut self, label: impl Into<String>) -> f64 {
        let t = self.makespan_us();
        if (self.cpu.free_at - self.gpu.free_at).abs() > f64::EPSILON {
            let label = label.into();
            let start = self.cpu.free_at.min(self.gpu.free_at);
            self.emit(SinkEvent::span("sync", "bus", label.clone(), start, t, 0));
            self.events.push(TraceEvent {
                kind: TraceKind::Sync,
                processor: None,
                start_us: start,
                end_us: t,
                label,
                bytes: 0,
            });
        }
        self.cpu.free_at = t;
        self.gpu.free_at = t;
        t
    }

    /// Lifts both processors' clocks to at least `t` (used for fixed
    /// synchronization overheads that occupy neither compute unit).
    pub fn advance_to(&mut self, t: f64) {
        self.cpu.free_at = self.cpu.free_at.max(t);
        self.gpu.free_at = self.gpu.free_at.max(t);
    }

    /// Fraction of the makespan `proc` spent busy (0 when nothing ran).
    pub fn busy_fraction(&self, proc: ProcessorKind) -> f64 {
        let total = self.makespan_us();
        if total <= 0.0 {
            0.0
        } else {
            (self.state(proc).busy / total).min(1.0)
        }
    }

    /// Total busy time of `proc` in microseconds.
    pub fn busy_us(&self, proc: ProcessorKind) -> f64 {
        self.state(proc).busy
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Aggregated summary of the recorded events.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::from_events(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenn_obs::Recorder;

    #[test]
    fn sequential_scheduling_advances_one_clock() {
        let mut t = Timeline::new();
        let e1 = t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 10.0, "k1");
        let e2 = t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 5.0, "k2");
        assert_eq!(e1, 10.0);
        assert_eq!(e2, 15.0, "k2 waits for the GPU to free up");
        assert_eq!(t.free_at(ProcessorKind::Cpu), 0.0);
        assert_eq!(t.makespan_us(), 15.0);
    }

    #[test]
    fn co_running_overlaps_processors() {
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 10.0, "gpu part");
        t.schedule(ProcessorKind::Cpu, TraceKind::Kernel, 0.0, 8.0, "cpu part");
        assert_eq!(t.makespan_us(), 10.0, "co-run time is the max, not the sum");
        assert_eq!(t.busy_us(ProcessorKind::Cpu), 8.0);
        assert!((t.busy_fraction(ProcessorKind::Cpu) - 0.8).abs() < 1e-9);
        assert!((t.busy_fraction(ProcessorKind::Gpu) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ready_at_defers_start() {
        let mut t = Timeline::new();
        let end = t.schedule(ProcessorKind::Cpu, TraceKind::Kernel, 100.0, 5.0, "late");
        assert_eq!(end, 105.0);
        // Busy time only counts the 5us of work, not the idle wait.
        assert_eq!(t.busy_us(ProcessorKind::Cpu), 5.0);
    }

    #[test]
    fn sync_aligns_clocks_and_records_event() {
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 10.0, "g");
        t.schedule(ProcessorKind::Cpu, TraceKind::Kernel, 0.0, 4.0, "c");
        let at = t.sync_all("barrier");
        assert_eq!(at, 10.0);
        assert_eq!(t.free_at(ProcessorKind::Cpu), 10.0);
        assert_eq!(t.events().last().unwrap().kind, TraceKind::Sync);
    }

    #[test]
    fn sync_on_aligned_clocks_is_silent() {
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 10.0, "g");
        t.schedule(ProcessorKind::Cpu, TraceKind::Kernel, 0.0, 10.0, "c");
        let before = t.events().len();
        t.sync_all("noop");
        assert_eq!(t.events().len(), before, "no event for a zero-width sync");
    }

    #[test]
    fn bus_copy_attributed_to_processor_advances_it() {
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 10.0, "k");
        let end = t.schedule_bus(
            TraceKind::Copy,
            10.0,
            3.0,
            4096,
            Some(ProcessorKind::Gpu),
            "d2h",
        );
        assert_eq!(end, 13.0);
        assert_eq!(t.free_at(ProcessorKind::Gpu), 13.0);
        assert_eq!(t.free_at(ProcessorKind::Cpu), 0.0);
        assert_eq!(t.summary().copy_us, 3.0);
        assert_eq!(t.events().last().unwrap().bytes, 4096);
    }

    #[test]
    fn summary_reflects_all_events() {
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 7.0, "k");
        t.schedule_bus(
            TraceKind::Migration,
            7.0,
            2.0,
            8192,
            Some(ProcessorKind::Gpu),
            "fault",
        );
        t.schedule_bus(TraceKind::Thrash, 9.0, 1.0, 4096, None, "shared write");
        let s = t.summary();
        assert_eq!(s.kernel_us, 7.0);
        assert_eq!(s.migration_us, 2.0);
        assert_eq!(s.thrash_us, 1.0);
        assert_eq!(s.memory_us(), 3.0);
        assert_eq!(s.bytes_moved, 12288);
    }

    #[test]
    fn sink_mirrors_activities_and_reports_stalls() {
        let recorder = Recorder::new();
        let mut t = Timeline::with_sink(Arc::new(recorder.clone()));
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, 10.0, "k1");
        // Ready at t=2 but the GPU is busy until t=10: an 8us stall.
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 2.0, 5.0, "k2");
        t.schedule_bus(
            TraceKind::Copy,
            15.0,
            3.0,
            1 << 20,
            Some(ProcessorKind::Gpu),
            "d2h",
        );
        let m = recorder.metrics();
        assert_eq!(m.counter_value("edgenn_kernel_total"), Some(2.0));
        assert_eq!(m.counter_value("edgenn_stall_total"), Some(1.0));
        assert_eq!(m.counter_value("edgenn_stall_us_total"), Some(8.0));
        assert_eq!(
            m.counter_value("edgenn_copy_bytes_total"),
            Some((1 << 20) as f64)
        );
    }
}
