//! Execution traces: a per-event record of everything the simulated
//! platform did, used by tests, reports, and the adaptive tuner's
//! feedback loop.

use edgenn_obs::CounterSample;
use serde::{Deserialize, Serialize};

use crate::processor::ProcessorKind;

/// What kind of activity an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// A compute kernel.
    Kernel,
    /// An explicit CPU<->GPU copy.
    Copy,
    /// Managed-memory page migration (zero-copy on-demand paging).
    Migration,
    /// Consistency thrash on a write-shared managed array.
    Thrash,
    /// Synchronization / merge of partitioned results.
    Sync,
    /// Idle gap (recorded only in summaries, not as events).
    Idle,
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Kernel => "kernel",
            Self::Copy => "copy",
            Self::Migration => "migration",
            Self::Thrash => "thrash",
            Self::Sync => "sync",
            Self::Idle => "idle",
        })
    }
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceKind,
    /// Processor the event occupies (`None` for bus-level activity such
    /// as copies, which occupy the interconnect rather than a core).
    pub processor: Option<ProcessorKind>,
    /// Start time in microseconds since simulation start.
    pub start_us: f64,
    /// End time in microseconds.
    pub end_us: f64,
    /// Free-form label ("conv1", "fc6 merge", …).
    pub label: String,
    /// Bytes moved over the interconnect by this event (0 for pure
    /// compute and synchronization events).
    pub bytes: u64,
}

impl TraceEvent {
    /// Event duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Aggregated view of a trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total kernel time (sum over events; co-run overlap counted twice).
    pub kernel_us: f64,
    /// Total explicit-copy time.
    pub copy_us: f64,
    /// Total migration time.
    pub migration_us: f64,
    /// Total thrash time.
    pub thrash_us: f64,
    /// Total synchronization/merge time.
    pub sync_us: f64,
    /// Wall-clock time during which *at least one* activity was in
    /// flight: the length of the interval union over all events. Unlike
    /// the per-kind sums above, co-running CPU and GPU kernels are
    /// counted once here.
    pub busy_us: f64,
    /// Wall-clock time (within `[0, last event end]`) during which
    /// nothing at all was happening.
    pub idle_us: f64,
    /// Total bytes moved over the interconnect (copies + migrations +
    /// thrash refetches).
    pub bytes_moved: u64,
}

impl TraceSummary {
    /// Builds a summary from raw events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = Self::default();
        for e in events {
            let d = e.duration_us();
            match e.kind {
                TraceKind::Kernel => s.kernel_us += d,
                TraceKind::Copy => s.copy_us += d,
                TraceKind::Migration => s.migration_us += d,
                TraceKind::Thrash => s.thrash_us += d,
                TraceKind::Sync => s.sync_us += d,
                TraceKind::Idle => {}
            }
            s.bytes_moved += e.bytes;
        }
        let spans: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| e.kind != TraceKind::Idle)
            .map(|e| (e.start_us, e.end_us))
            .collect();
        s.busy_us = interval_union_us(&spans);
        let horizon = spans.iter().map(|&(_, end)| end).fold(0.0f64, f64::max);
        s.idle_us = (horizon - s.busy_us).max(0.0);
        s
    }

    /// Total memory-management time (copies + migrations + thrash).
    pub fn memory_us(&self) -> f64 {
        self.copy_us + self.migration_us + self.thrash_us
    }
}

/// Length of the union of a set of (possibly overlapping) intervals.
/// This is the wall-clock busy time: co-running activities on different
/// tracks are counted once, not once per track.
pub fn interval_union_us(spans: &[(f64, f64)]) -> f64 {
    let mut spans: Vec<(f64, f64)> = spans
        .iter()
        .copied()
        .filter(|&(start, end)| end > start)
        .collect();
    spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut total = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for (start, end) in spans {
        match current {
            Some((cs, ce)) if start <= ce => current = Some((cs, ce.max(end))),
            Some((cs, ce)) => {
                total += ce - cs;
                current = Some((start, end));
            }
            None => current = Some((start, end)),
        }
    }
    if let Some((cs, ce)) = current {
        total += ce - cs;
    }
    total
}

/// Validates structural invariants of a trace: every event has
/// non-negative duration, and no two *kernels* assigned to the same
/// processor overlap in time (a core cannot run two kernels at once).
/// Memory-traffic events occupy the interconnect, not a core — their
/// `processor` field is attribution for accounting — so they may overlap
/// each other and the kernels freely (DMA engines run alongside compute).
///
/// # Errors
/// Returns a description of the first violation found.
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    for event in events {
        if event.end_us < event.start_us {
            return Err(format!(
                "event '{}' has negative duration ({} -> {})",
                event.label, event.start_us, event.end_us
            ));
        }
    }
    for proc in [ProcessorKind::Cpu, ProcessorKind::Gpu] {
        let mut spans: Vec<(f64, f64, &str)> = events
            .iter()
            .filter(|e| e.kind == TraceKind::Kernel && e.processor == Some(proc))
            .map(|e| (e.start_us, e.end_us, e.label.as_str()))
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        for pair in spans.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.0 < a.1 - 1e-9 {
                return Err(format!(
                    "{proc} events overlap: '{}' [{}, {}] and '{}' [{}, {}]",
                    a.2, a.0, a.1, b.2, b.0, b.1
                ));
            }
        }
    }
    Ok(())
}

/// Assumed managed-memory page size for the outstanding-pages counter.
const PAGE_BYTES: f64 = 4096.0;

fn span_entry(event: &TraceEvent) -> serde_json::Value {
    let track = match event.processor {
        Some(ProcessorKind::Cpu) => "CPU",
        Some(ProcessorKind::Gpu) => "GPU",
        None => "Bus",
    };
    let tid = match event.processor {
        Some(ProcessorKind::Cpu) => 1u64,
        Some(ProcessorKind::Gpu) => 2,
        None => 3,
    };
    let mut args = serde_json::Map::new();
    args.insert("track", serde_json::Value::from(track));
    if event.bytes > 0 {
        args.insert("bytes", serde_json::Value::from(event.bytes as f64));
    }
    let mut m = serde_json::Map::new();
    m.insert("name", serde_json::Value::from(event.label.as_str()));
    m.insert("cat", serde_json::Value::from(event.kind.to_string()));
    m.insert("ph", serde_json::Value::from("X"));
    m.insert("ts", serde_json::Value::from(event.start_us));
    m.insert("dur", serde_json::Value::from(event.duration_us()));
    m.insert("pid", serde_json::Value::from(1.0));
    m.insert("tid", serde_json::Value::from(tid as f64));
    m.insert("args", serde_json::Value::Object(args));
    serde_json::Value::Object(m)
}

fn counter_entry(track: &str, ts: f64, value: f64, pid: u64) -> serde_json::Value {
    let mut args = serde_json::Map::new();
    args.insert("value", serde_json::Value::from(value));
    let mut m = serde_json::Map::new();
    m.insert("name", serde_json::Value::from(track));
    m.insert("ph", serde_json::Value::from("C"));
    m.insert("ts", serde_json::Value::from(ts));
    m.insert("pid", serde_json::Value::from(pid as f64));
    m.insert("args", serde_json::Value::Object(args));
    serde_json::Value::Object(m)
}

/// Instantaneous interconnect bandwidth (GB/s) as a step function:
/// change-point sweep over every byte-moving event. Returns `(t_us,
/// gbps)` samples, one per distinct change point.
fn bandwidth_samples(events: &[TraceEvent]) -> Vec<(f64, f64)> {
    let mut deltas: Vec<(f64, f64)> = Vec::new();
    for e in events {
        let dur = e.duration_us();
        if e.bytes > 0 && dur > 0.0 {
            // bytes / us -> GB/s is a factor of 1e-3.
            let gbps = e.bytes as f64 / dur * 1e-3;
            deltas.push((e.start_us, gbps));
            deltas.push((e.end_us, -gbps));
        }
    }
    deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut samples = Vec::new();
    let mut level = 0.0;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            level += deltas[i].1;
            i += 1;
        }
        samples.push((t, level.max(0.0)));
    }
    samples
}

/// Outstanding managed pages over time: migrations page data in, a
/// thrash invalidates the pages for its duration before they come back.
/// Returns `(t_us, pages)` samples.
fn managed_page_samples(events: &[TraceEvent]) -> Vec<(f64, f64)> {
    let mut deltas: Vec<(f64, f64)> = Vec::new();
    for e in events {
        let pages = (e.bytes as f64 / PAGE_BYTES).ceil();
        if pages <= 0.0 {
            continue;
        }
        match e.kind {
            TraceKind::Migration => deltas.push((e.end_us, pages)),
            TraceKind::Thrash => {
                deltas.push((e.start_us, -pages));
                deltas.push((e.end_us, pages));
            }
            _ => {}
        }
    }
    deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut samples = Vec::new();
    let mut level = 0.0;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            level += deltas[i].1;
            i += 1;
        }
        samples.push((t, level.max(0.0)));
    }
    samples
}

/// Serializes events into the Chrome trace-event format (the JSON array
/// flavor), loadable in `chrome://tracing` or Perfetto. Kernels appear on
/// a "CPU" or "GPU" track, bus activity (copies, migrations, thrash,
/// syncs) on a "Bus" track. Byte-moving events additionally feed two
/// `"ph":"C"` counter tracks: instantaneous interconnect bandwidth and
/// outstanding managed pages.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    to_chrome_trace_with_counters(events, &[])
}

/// Like [`to_chrome_trace`], with additional counter tracks appended
/// from `extra` samples (e.g. the tuner's per-node EMA evolution,
/// collected through an `edgenn_obs::Recorder`). Extra counters render
/// on their own process row (`pid` 2) so they group separately from the
/// simulated hardware.
pub fn to_chrome_trace_with_counters(events: &[TraceEvent], extra: &[CounterSample]) -> String {
    let mut entries = Vec::with_capacity(events.len());
    for event in events {
        entries.push(span_entry(event));
    }
    for (ts, gbps) in bandwidth_samples(events) {
        entries.push(counter_entry("bandwidth_gbps", ts, gbps, 1));
    }
    for (ts, pages) in managed_page_samples(events) {
        entries.push(counter_entry("managed_pages_outstanding", ts, pages, 1));
    }
    for sample in extra {
        entries.push(counter_entry(&sample.track, sample.t_us, sample.value, 2));
    }
    serde_json::to_string_pretty(&entries).expect("trace events are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            kind,
            processor: None,
            start_us: start,
            end_us: end,
            label: "t".into(),
            bytes: 0,
        }
    }

    #[test]
    fn summary_buckets_by_kind() {
        let events = vec![
            ev(TraceKind::Kernel, 0.0, 10.0),
            ev(TraceKind::Copy, 10.0, 13.0),
            ev(TraceKind::Kernel, 13.0, 20.0),
            ev(TraceKind::Migration, 20.0, 21.0),
            ev(TraceKind::Thrash, 21.0, 25.0),
            ev(TraceKind::Sync, 25.0, 26.0),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.kernel_us, 17.0);
        assert_eq!(s.copy_us, 3.0);
        assert_eq!(s.migration_us, 1.0);
        assert_eq!(s.thrash_us, 4.0);
        assert_eq!(s.sync_us, 1.0);
        assert_eq!(s.memory_us(), 8.0);
        // Back-to-back events: always busy, never idle.
        assert_eq!(s.busy_us, 26.0);
        assert_eq!(s.idle_us, 0.0);
    }

    #[test]
    fn busy_counts_corun_overlap_once() {
        // CPU [0, 10] and GPU [5, 15] co-run: per-kind kernel time
        // double-counts the overlap (15 + 10 = 20 over a 15us window);
        // the wall-clock union must not.
        let events = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Cpu),
                start_us: 0.0,
                end_us: 10.0,
                label: "cpu".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 5.0,
                end_us: 15.0,
                label: "gpu".into(),
                bytes: 0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.kernel_us, 20.0, "per-kind sum still double-counts");
        assert_eq!(s.busy_us, 15.0, "interval union counts the overlap once");
        assert_eq!(s.idle_us, 0.0);
    }

    #[test]
    fn idle_is_the_gap_between_activities() {
        let events = vec![
            ev(TraceKind::Kernel, 0.0, 5.0),
            ev(TraceKind::Kernel, 10.0, 15.0),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.busy_us, 10.0);
        assert_eq!(s.idle_us, 5.0);
    }

    #[test]
    fn interval_union_merges_contained_and_touching_spans() {
        assert_eq!(interval_union_us(&[]), 0.0);
        assert_eq!(
            interval_union_us(&[(0.0, 10.0), (2.0, 4.0)]),
            10.0,
            "contained"
        );
        assert_eq!(
            interval_union_us(&[(0.0, 5.0), (5.0, 9.0)]),
            9.0,
            "touching"
        );
        assert_eq!(
            interval_union_us(&[(6.0, 8.0), (0.0, 1.0)]),
            3.0,
            "disjoint, unsorted"
        );
        assert_eq!(interval_union_us(&[(3.0, 3.0)]), 0.0, "zero-width ignored");
    }

    #[test]
    fn events_serialize_round_trip() {
        let e = TraceEvent {
            kind: TraceKind::Kernel,
            processor: Some(ProcessorKind::Gpu),
            start_us: 1.5,
            end_us: 2.5,
            label: "conv1".into(),
            bytes: 4096,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.duration_us(), 1.0);
    }

    #[test]
    fn validation_accepts_serial_and_rejects_overlap() {
        let ok = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 0.0,
                end_us: 5.0,
                label: "a".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 5.0,
                end_us: 9.0,
                label: "b".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Cpu),
                start_us: 1.0,
                end_us: 8.0,
                label: "c".into(),
                bytes: 0,
            },
        ];
        assert!(
            validate_events(&ok).is_ok(),
            "cross-processor overlap is fine"
        );

        let mut bad = ok.clone();
        bad[1].start_us = 4.0; // overlaps event 'a' on the GPU
        assert!(validate_events(&bad).is_err());

        let mut negative = ok;
        negative[0].end_us = -1.0;
        assert!(validate_events(&negative).is_err());
    }

    #[test]
    fn chrome_trace_contains_all_events_on_correct_tracks() {
        let events = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 0.0,
                end_us: 5.0,
                label: "conv1".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Copy,
                processor: None,
                start_us: 5.0,
                end_us: 7.0,
                label: "h2d".into(),
                bytes: 0,
            },
        ];
        let json = to_chrome_trace(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["name"], "conv1");
        assert_eq!(arr[0]["tid"], 2);
        assert_eq!(arr[1]["args"]["track"], "Bus");
        assert_eq!(arr[1]["dur"], 2.0);
    }

    #[test]
    fn chrome_trace_emits_counter_tracks_for_byte_movers() {
        let events = vec![
            TraceEvent {
                kind: TraceKind::Copy,
                processor: None,
                start_us: 0.0,
                end_us: 10.0,
                label: "h2d".into(),
                bytes: 10_000, // 1000 bytes/us = 1 GB/s for 10us
            },
            TraceEvent {
                kind: TraceKind::Migration,
                processor: None,
                start_us: 10.0,
                end_us: 12.0,
                label: "fault".into(),
                bytes: 8192, // 2 pages
            },
        ];
        let json = to_chrome_trace(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        let counters: Vec<&serde_json::Value> = arr.iter().filter(|e| e["ph"] == "C").collect();
        assert!(!counters.is_empty());
        let bw_on: Vec<&&serde_json::Value> = counters
            .iter()
            .filter(|e| e["name"] == "bandwidth_gbps" && e["ts"] == 0.0)
            .collect();
        assert_eq!(bw_on.len(), 1);
        assert!((bw_on[0]["args"]["value"].as_f64().unwrap() - 1.0).abs() < 1e-9);
        let pages: Vec<&&serde_json::Value> = counters
            .iter()
            .filter(|e| e["name"] == "managed_pages_outstanding")
            .collect();
        assert_eq!(pages.len(), 1, "one sample at the migration's end");
        assert_eq!(pages[0]["args"]["value"].as_f64().unwrap(), 2.0);
    }

    #[test]
    fn chrome_trace_appends_extra_counter_samples() {
        let extra = vec![
            CounterSample {
                track: "ema_cpu_us/conv1".into(),
                t_us: 0.0,
                value: 120.0,
            },
            CounterSample {
                track: "ema_cpu_us/conv1".into(),
                t_us: 1.0,
                value: 110.0,
            },
        ];
        let json = to_chrome_trace_with_counters(&[], &extra);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["ph"], "C");
        assert_eq!(arr[0]["name"], "ema_cpu_us/conv1");
        assert_eq!(
            arr[0]["pid"], 2,
            "tuner counters live on their own process row"
        );
        assert_eq!(arr[1]["args"]["value"], 110.0);
    }

    #[test]
    fn kind_display_tags() {
        assert_eq!(TraceKind::Kernel.to_string(), "kernel");
        assert_eq!(TraceKind::Thrash.to_string(), "thrash");
    }
}
