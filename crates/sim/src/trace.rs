//! Execution traces: a per-event record of everything the simulated
//! platform did, used by tests, reports, and the adaptive tuner's
//! feedback loop.

use serde::{Deserialize, Serialize};

use crate::processor::ProcessorKind;

/// What kind of activity an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// A compute kernel.
    Kernel,
    /// An explicit CPU<->GPU copy.
    Copy,
    /// Managed-memory page migration (zero-copy on-demand paging).
    Migration,
    /// Consistency thrash on a write-shared managed array.
    Thrash,
    /// Synchronization / merge of partitioned results.
    Sync,
    /// Idle gap (recorded only in summaries, not as events).
    Idle,
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Kernel => "kernel",
            Self::Copy => "copy",
            Self::Migration => "migration",
            Self::Thrash => "thrash",
            Self::Sync => "sync",
            Self::Idle => "idle",
        })
    }
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceKind,
    /// Processor the event occupies (`None` for bus-level activity such
    /// as copies, which occupy the interconnect rather than a core).
    pub processor: Option<ProcessorKind>,
    /// Start time in microseconds since simulation start.
    pub start_us: f64,
    /// End time in microseconds.
    pub end_us: f64,
    /// Free-form label ("conv1", "fc6 merge", …).
    pub label: String,
}

impl TraceEvent {
    /// Event duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Aggregated view of a trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total kernel time (sum over events; co-run overlap counted twice).
    pub kernel_us: f64,
    /// Total explicit-copy time.
    pub copy_us: f64,
    /// Total migration time.
    pub migration_us: f64,
    /// Total thrash time.
    pub thrash_us: f64,
    /// Total synchronization/merge time.
    pub sync_us: f64,
}

impl TraceSummary {
    /// Builds a summary from raw events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = Self::default();
        for e in events {
            let d = e.duration_us();
            match e.kind {
                TraceKind::Kernel => s.kernel_us += d,
                TraceKind::Copy => s.copy_us += d,
                TraceKind::Migration => s.migration_us += d,
                TraceKind::Thrash => s.thrash_us += d,
                TraceKind::Sync => s.sync_us += d,
                TraceKind::Idle => {}
            }
        }
        s
    }

    /// Total memory-management time (copies + migrations + thrash).
    pub fn memory_us(&self) -> f64 {
        self.copy_us + self.migration_us + self.thrash_us
    }
}

/// Validates structural invariants of a trace: every event has
/// non-negative duration, and no two events assigned to the same
/// processor overlap in time (a core cannot run two kernels at once; bus
/// events may overlap freely).
///
/// # Errors
/// Returns a description of the first violation found.
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    for event in events {
        if event.end_us < event.start_us {
            return Err(format!(
                "event '{}' has negative duration ({} -> {})",
                event.label, event.start_us, event.end_us
            ));
        }
    }
    for proc in [ProcessorKind::Cpu, ProcessorKind::Gpu] {
        let mut spans: Vec<(f64, f64, &str)> = events
            .iter()
            .filter(|e| e.processor == Some(proc))
            .map(|e| (e.start_us, e.end_us, e.label.as_str()))
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        for pair in spans.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.0 < a.1 - 1e-9 {
                return Err(format!(
                    "{proc} events overlap: '{}' [{}, {}] and '{}' [{}, {}]",
                    a.2, a.0, a.1, b.2, b.0, b.1
                ));
            }
        }
    }
    Ok(())
}

/// Serializes events into the Chrome trace-event format (the JSON array
/// flavor), loadable in `chrome://tracing` or Perfetto. Kernels appear on
/// a "CPU" or "GPU" track, bus activity (copies, migrations, thrash,
/// syncs) on a "Bus" track.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries = Vec::with_capacity(events.len());
    for event in events {
        let track = match event.processor {
            Some(ProcessorKind::Cpu) => "CPU",
            Some(ProcessorKind::Gpu) => "GPU",
            None => "Bus",
        };
        let tid = match event.processor {
            Some(ProcessorKind::Cpu) => 1,
            Some(ProcessorKind::Gpu) => 2,
            None => 3,
        };
        entries.push(serde_json::json!({
            "name": event.label,
            "cat": event.kind.to_string(),
            "ph": "X",
            "ts": event.start_us,
            "dur": event.duration_us(),
            "pid": 1,
            "tid": tid,
            "args": { "track": track },
        }));
    }
    serde_json::to_string_pretty(&entries).expect("trace events are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, start: f64, end: f64) -> TraceEvent {
        TraceEvent { kind, processor: None, start_us: start, end_us: end, label: "t".into() }
    }

    #[test]
    fn summary_buckets_by_kind() {
        let events = vec![
            ev(TraceKind::Kernel, 0.0, 10.0),
            ev(TraceKind::Copy, 10.0, 13.0),
            ev(TraceKind::Kernel, 13.0, 20.0),
            ev(TraceKind::Migration, 20.0, 21.0),
            ev(TraceKind::Thrash, 21.0, 25.0),
            ev(TraceKind::Sync, 25.0, 26.0),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.kernel_us, 17.0);
        assert_eq!(s.copy_us, 3.0);
        assert_eq!(s.migration_us, 1.0);
        assert_eq!(s.thrash_us, 4.0);
        assert_eq!(s.sync_us, 1.0);
        assert_eq!(s.memory_us(), 8.0);
    }

    #[test]
    fn events_serialize_round_trip() {
        let e = TraceEvent {
            kind: TraceKind::Kernel,
            processor: Some(ProcessorKind::Gpu),
            start_us: 1.5,
            end_us: 2.5,
            label: "conv1".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.duration_us(), 1.0);
    }

    #[test]
    fn validation_accepts_serial_and_rejects_overlap() {
        let ok = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 0.0,
                end_us: 5.0,
                label: "a".into(),
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 5.0,
                end_us: 9.0,
                label: "b".into(),
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Cpu),
                start_us: 1.0,
                end_us: 8.0,
                label: "c".into(),
            },
        ];
        assert!(validate_events(&ok).is_ok(), "cross-processor overlap is fine");

        let mut bad = ok.clone();
        bad[1].start_us = 4.0; // overlaps event 'a' on the GPU
        assert!(validate_events(&bad).is_err());

        let mut negative = ok;
        negative[0].end_us = -1.0;
        assert!(validate_events(&negative).is_err());
    }

    #[test]
    fn chrome_trace_contains_all_events_on_correct_tracks() {
        let events = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 0.0,
                end_us: 5.0,
                label: "conv1".into(),
            },
            TraceEvent {
                kind: TraceKind::Copy,
                processor: None,
                start_us: 5.0,
                end_us: 7.0,
                label: "h2d".into(),
            },
        ];
        let json = to_chrome_trace(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["name"], "conv1");
        assert_eq!(arr[0]["tid"], 2);
        assert_eq!(arr[1]["args"]["track"], "Bus");
        assert_eq!(arr[1]["dur"], 2.0);
    }

    #[test]
    fn kind_display_tags() {
        assert_eq!(TraceKind::Kernel.to_string(), "kernel");
        assert_eq!(TraceKind::Thrash.to_string(), "thrash");
    }
}
