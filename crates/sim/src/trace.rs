//! Execution traces: a per-event record of everything the simulated
//! platform did, used by tests, reports, and the adaptive tuner's
//! feedback loop.

use edgenn_obs::CounterSample;
use serde::{Deserialize, Serialize};

use crate::processor::ProcessorKind;

/// What kind of activity an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// A compute kernel.
    Kernel,
    /// An explicit CPU<->GPU copy.
    Copy,
    /// Managed-memory page migration (zero-copy on-demand paging).
    Migration,
    /// Consistency thrash on a write-shared managed array.
    Thrash,
    /// Synchronization / merge of partitioned results.
    Sync,
    /// Idle gap (recorded only in summaries, not as events).
    Idle,
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Kernel => "kernel",
            Self::Copy => "copy",
            Self::Migration => "migration",
            Self::Thrash => "thrash",
            Self::Sync => "sync",
            Self::Idle => "idle",
        })
    }
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceKind,
    /// Processor the event occupies (`None` for bus-level activity such
    /// as copies, which occupy the interconnect rather than a core).
    pub processor: Option<ProcessorKind>,
    /// Start time in microseconds since simulation start.
    pub start_us: f64,
    /// End time in microseconds.
    pub end_us: f64,
    /// Free-form label ("conv1", "fc6 merge", …).
    pub label: String,
    /// Bytes moved over the interconnect by this event (0 for pure
    /// compute and synchronization events).
    pub bytes: u64,
}

impl TraceEvent {
    /// Event duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Aggregated view of a trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total kernel time (sum over events; co-run overlap counted twice).
    pub kernel_us: f64,
    /// Total explicit-copy time.
    pub copy_us: f64,
    /// Total migration time.
    pub migration_us: f64,
    /// Total thrash time.
    pub thrash_us: f64,
    /// Total synchronization/merge time.
    pub sync_us: f64,
    /// Wall-clock time during which *at least one* activity was in
    /// flight: the length of the interval union over all events. Unlike
    /// the per-kind sums above, co-running CPU and GPU kernels are
    /// counted once here.
    pub busy_us: f64,
    /// Wall-clock time (within `[0, last event end]`) during which
    /// nothing at all was happening.
    pub idle_us: f64,
    /// Total bytes moved over the interconnect (copies + migrations +
    /// thrash refetches).
    pub bytes_moved: u64,
}

impl TraceSummary {
    /// Builds a summary from raw events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = Self::default();
        for e in events {
            let d = e.duration_us();
            match e.kind {
                TraceKind::Kernel => s.kernel_us += d,
                TraceKind::Copy => s.copy_us += d,
                TraceKind::Migration => s.migration_us += d,
                TraceKind::Thrash => s.thrash_us += d,
                TraceKind::Sync => s.sync_us += d,
                TraceKind::Idle => {}
            }
            s.bytes_moved += e.bytes;
        }
        let spans: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| e.kind != TraceKind::Idle)
            .map(|e| (e.start_us, e.end_us))
            .collect();
        s.busy_us = interval_union_us(&spans);
        let horizon = spans.iter().map(|&(_, end)| end).fold(0.0f64, f64::max);
        s.idle_us = (horizon - s.busy_us).max(0.0);
        s
    }

    /// Total memory-management time (copies + migrations + thrash).
    pub fn memory_us(&self) -> f64 {
        self.copy_us + self.migration_us + self.thrash_us
    }
}

/// Length of the union of a set of (possibly overlapping) intervals.
/// This is the wall-clock busy time: co-running activities on different
/// tracks are counted once, not once per track.
pub fn interval_union_us(spans: &[(f64, f64)]) -> f64 {
    let mut spans: Vec<(f64, f64)> = spans
        .iter()
        .copied()
        .filter(|&(start, end)| end > start)
        .collect();
    spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut total = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for (start, end) in spans {
        match current {
            Some((cs, ce)) if start <= ce => current = Some((cs, ce.max(end))),
            Some((cs, ce)) => {
                total += ce - cs;
                current = Some((start, end));
            }
            None => current = Some((start, end)),
        }
    }
    if let Some((cs, ce)) = current {
        total += ce - cs;
    }
    total
}

/// Validates structural invariants of a trace: every event has
/// non-negative duration, and no two *kernels* assigned to the same
/// processor overlap in time (a core cannot run two kernels at once).
/// Memory-traffic events occupy the interconnect, not a core — their
/// `processor` field is attribution for accounting — so they may overlap
/// each other and the kernels freely (DMA engines run alongside compute).
///
/// # Errors
/// Returns a description of the first violation found.
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    for event in events {
        if event.end_us < event.start_us {
            return Err(format!(
                "event '{}' has negative duration ({} -> {})",
                event.label, event.start_us, event.end_us
            ));
        }
    }
    for proc in [ProcessorKind::Cpu, ProcessorKind::Gpu] {
        let mut spans: Vec<(f64, f64, &str)> = events
            .iter()
            .filter(|e| e.kind == TraceKind::Kernel && e.processor == Some(proc))
            .map(|e| (e.start_us, e.end_us, e.label.as_str()))
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        for pair in spans.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.0 < a.1 - 1e-9 {
                return Err(format!(
                    "{proc} events overlap: '{}' [{}, {}] and '{}' [{}, {}]",
                    a.2, a.0, a.1, b.2, b.0, b.1
                ));
            }
        }
    }
    Ok(())
}

// --- Happens-before race detection -----------------------------------
//
// The engine's timeline realizes a happens-before partial order: kernels
// on one processor are serialized through `free_at`, bus transfers start
// no earlier than their producer's ready time, and co-run merges lift
// both clocks. Two events are therefore HB-ordered exactly when their
// intervals are disjoint, and *concurrent* when they overlap. The
// detector below reconstructs that order from a finished trace, derives
// which data region each event touches from the engine's label
// conventions, and reports conflicting concurrent accesses — the checks
// a real CUDA stream-race tool would do on an Nsight timeline.

/// Sub-microsecond slack for interval comparisons: events that merely
/// touch at an endpoint (producer end == consumer start) are ordered,
/// not concurrent.
const HB_TOLERANCE_US: f64 = 1e-6;

/// Class of invariant a trace event (pair) violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceViolationKind {
    /// Non-finite timestamps or negative duration.
    MalformedEvent,
    /// Two kernels overlap on one processor (a core cannot run two
    /// kernels at once).
    KernelOverlap,
    /// CPU and GPU kernels write the same output region concurrently.
    WriteWriteRace,
    /// A DMA transfer of a region is concurrent with a kernel that
    /// produces or consumes that same region (read-write hazard), or two
    /// transfers move the same region at once.
    OrderingHazard,
    /// A single transfer's implied rate exceeds the platform's fastest
    /// physical link.
    BandwidthExceeded,
    /// The instantaneous *sum* of concurrent transfer rates exceeds the
    /// link capacity (advisory: the engine does not serialize bus
    /// events against each other).
    AggregateBandwidth,
}

impl std::fmt::Display for TraceViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::MalformedEvent => "malformed event",
            Self::KernelOverlap => "kernel overlap",
            Self::WriteWriteRace => "write-write race",
            Self::OrderingHazard => "ordering hazard",
            Self::BandwidthExceeded => "bandwidth exceeded",
            Self::AggregateBandwidth => "aggregate bandwidth",
        })
    }
}

/// One violation found by [`check_trace`], pointing back into the event
/// slice by index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceViolation {
    /// Violation class.
    pub kind: TraceViolationKind,
    /// Index of the (first) offending event.
    pub first: usize,
    /// Index of the second event for pairwise violations.
    pub second: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

/// Physical link capacity the trace must conserve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkCaps {
    /// The fastest physical path data can take on the platform, in GB/s:
    /// the DRAM bandwidth on a unified SoC, `max(PCIe, DRAM)` on a
    /// discrete system. Apparent per-event rates can legitimately exceed
    /// the copy bandwidth (the engine scales transfer *durations* by the
    /// host-roundtrip fraction while recording full array sizes), but
    /// nothing can beat the memory system itself.
    pub link_gbps: f64,
}

impl LinkCaps {
    /// Capacity bound for `platform`: the fastest of the DRAM interfaces,
    /// the bulk copy engine, and the modeled page-walk rate (some presets
    /// calibrate `page_migration_us_per_mb` faster than their DRAM
    /// figure; prefetched migrations legitimately move at that rate).
    pub fn from_platform(platform: &crate::platforms::Platform) -> Self {
        let dram = platform.gpu.as_ref().map_or(platform.cpu.mem_bw_gbps, |g| {
            g.mem_bw_gbps.max(platform.cpu.mem_bw_gbps)
        });
        let page_walk_gbps = if platform.memory.page_migration_us_per_mb > 0.0 {
            1e3 / platform.memory.page_migration_us_per_mb
        } else {
            0.0
        };
        Self {
            link_gbps: dram.max(platform.memory.copy_bw_gbps).max(page_walk_gbps),
        }
    }
}

/// The data region an event touches, derived from the engine's label
/// conventions (`"conv1 h2d"`, `"conv1 [cpu part]"`, `"pool2 -> GPU"`,
/// …). Returns `None` for events that touch no array (syncs, stalls).
pub fn data_region(event: &TraceEvent) -> Option<&str> {
    if matches!(event.kind, TraceKind::Sync | TraceKind::Idle) {
        return None;
    }
    let label = event.label.as_str();
    for suffix in [
        " h2d",
        " d2h",
        " merge",
        " boundary pages",
        " [cpu part]",
        " [gpu part]",
        " -> CPU",
        " -> GPU",
    ] {
        if let Some(base) = label.strip_suffix(suffix) {
            return Some(base);
        }
    }
    Some(label)
}

/// The reconstructed happens-before relation over one trace.
///
/// Indices refer back into the event slice the relation was built from.
#[derive(Debug)]
pub struct HappensBefore<'a> {
    events: &'a [TraceEvent],
}

impl<'a> HappensBefore<'a> {
    /// Builds the relation for `events`.
    pub fn new(events: &'a [TraceEvent]) -> Self {
        Self { events }
    }

    /// True when event `a` happens-before event `b`: `a` retires before
    /// `b` starts (endpoint contact counts as ordered).
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        self.events[a].end_us <= self.events[b].start_us + HB_TOLERANCE_US
    }

    /// True when neither event is ordered before the other — they run
    /// concurrently on the timeline.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.ordered(a, b) && !self.ordered(b, a)
    }
}

/// True when `e` moves bytes over the interconnect.
fn moves_bytes(e: &TraceEvent) -> bool {
    matches!(
        e.kind,
        TraceKind::Copy | TraceKind::Migration | TraceKind::Thrash
    ) && e.bytes > 0
}

/// Race- and conservation-checks one finished trace.
///
/// Checks, in order: malformed events, same-processor kernel overlap,
/// CPU/GPU write-write conflicts on one region, kernel/DMA ordering
/// hazards, and (when `caps` is given) per-event and aggregate
/// bandwidth conservation. Returns every violation found; an empty
/// vector means the trace is consistent with the happens-before order
/// the engine claims to enforce.
///
/// The label-derived region model assumes each label names one request's
/// arrays: apply this to single-request traces only (pipelined stream
/// traces legitimately reuse labels across in-flight requests).
pub fn check_trace(events: &[TraceEvent], caps: Option<&LinkCaps>) -> Vec<TraceViolation> {
    let mut out = Vec::new();

    // Malformed events disqualify themselves from the pairwise checks.
    let mut well_formed = vec![true; events.len()];
    for (i, e) in events.iter().enumerate() {
        if !e.start_us.is_finite() || !e.end_us.is_finite() || e.end_us < e.start_us {
            well_formed[i] = false;
            out.push(TraceViolation {
                kind: TraceViolationKind::MalformedEvent,
                first: i,
                second: None,
                detail: format!(
                    "event '{}' has invalid interval [{}, {}]",
                    e.label, e.start_us, e.end_us
                ),
            });
        }
    }

    let hb = HappensBefore::new(events);
    let idx: Vec<usize> = (0..events.len()).filter(|&i| well_formed[i]).collect();

    // Same-processor kernel serialization (per-core exclusivity).
    for proc in [ProcessorKind::Cpu, ProcessorKind::Gpu] {
        let mut kernels: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| events[i].kind == TraceKind::Kernel && events[i].processor == Some(proc))
            .collect();
        kernels.sort_by(|&a, &b| {
            events[a]
                .start_us
                .partial_cmp(&events[b].start_us)
                .expect("finite times")
        });
        for pair in kernels.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if hb.concurrent(a, b) {
                out.push(TraceViolation {
                    kind: TraceViolationKind::KernelOverlap,
                    first: a,
                    second: Some(b),
                    detail: format!(
                        "{proc} kernels '{}' and '{}' overlap",
                        events[a].label, events[b].label
                    ),
                });
            }
        }
    }

    // Cross-processor conflicts on one data region. Kernels write their
    // region; transfers read and write theirs. Split halves carry
    // distinct "[cpu part]"/"[gpu part]" labels over disjoint ranges of
    // the shared output, so only *identical* kernel labels conflict.
    for (n, &i) in idx.iter().enumerate() {
        let Some(region_i) = data_region(&events[i]) else {
            continue;
        };
        for &j in &idx[n + 1..] {
            let Some(region_j) = data_region(&events[j]) else {
                continue;
            };
            if region_i != region_j || !hb.concurrent(i, j) {
                continue;
            }
            let (a, b) = (&events[i], &events[j]);
            match (a.kind, b.kind) {
                (TraceKind::Kernel, TraceKind::Kernel) => {
                    if a.processor != b.processor && a.label == b.label {
                        out.push(TraceViolation {
                            kind: TraceViolationKind::WriteWriteRace,
                            first: i,
                            second: Some(j),
                            detail: format!("CPU and GPU both write '{}' concurrently", a.label),
                        });
                    }
                }
                (TraceKind::Kernel, _) | (_, TraceKind::Kernel) => {
                    let transfer = if a.kind == TraceKind::Kernel { b } else { a };
                    if moves_bytes(transfer) {
                        out.push(TraceViolation {
                            kind: TraceViolationKind::OrderingHazard,
                            first: i,
                            second: Some(j),
                            detail: format!(
                                "'{}' and '{}' touch region '{region_i}' concurrently",
                                a.label, b.label
                            ),
                        });
                    }
                }
                _ => {
                    if moves_bytes(a) && moves_bytes(b) {
                        out.push(TraceViolation {
                            kind: TraceViolationKind::OrderingHazard,
                            first: i,
                            second: Some(j),
                            detail: format!(
                                "transfers '{}' and '{}' move region '{region_i}' concurrently",
                                a.label, b.label
                            ),
                        });
                    }
                }
            }
        }
    }

    // Bandwidth conservation: no transfer, alone or summed with its
    // concurrent peers, may beat the fastest physical link. 5% slack
    // absorbs float noise in calibrated rates.
    if let Some(caps) = caps {
        let cap = caps.link_gbps * 1.05;
        let mut deltas: Vec<(f64, f64, usize)> = Vec::new();
        for &i in &idx {
            let e = &events[i];
            let dur = e.duration_us();
            if !moves_bytes(e) || dur <= 0.0 {
                continue;
            }
            let gbps = e.bytes as f64 / dur * 1e-3;
            if gbps > cap {
                out.push(TraceViolation {
                    kind: TraceViolationKind::BandwidthExceeded,
                    first: i,
                    second: None,
                    detail: format!(
                        "'{}' implies {gbps:.1} GB/s over a {:.1} GB/s link",
                        e.label, caps.link_gbps
                    ),
                });
            }
            deltas.push((e.start_us, gbps, i));
            deltas.push((e.end_us, -gbps, i));
        }
        deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut level = 0.0;
        let mut flagged = false;
        for &(_, delta, i) in &deltas {
            level += delta;
            if level > cap && !flagged {
                flagged = true;
                out.push(TraceViolation {
                    kind: TraceViolationKind::AggregateBandwidth,
                    first: i,
                    second: None,
                    detail: format!(
                        "concurrent transfers sum to {level:.1} GB/s over a {:.1} GB/s link",
                        caps.link_gbps
                    ),
                });
            }
        }
    }

    out
}

/// Assumed managed-memory page size for the outstanding-pages counter.
const PAGE_BYTES: f64 = 4096.0;

fn span_entry(event: &TraceEvent) -> serde_json::Value {
    let track = match event.processor {
        Some(ProcessorKind::Cpu) => "CPU",
        Some(ProcessorKind::Gpu) => "GPU",
        None => "Bus",
    };
    let tid = match event.processor {
        Some(ProcessorKind::Cpu) => 1u64,
        Some(ProcessorKind::Gpu) => 2,
        None => 3,
    };
    let mut args = serde_json::Map::new();
    args.insert("track", serde_json::Value::from(track));
    if event.bytes > 0 {
        args.insert("bytes", serde_json::Value::from(event.bytes as f64));
    }
    let mut m = serde_json::Map::new();
    m.insert("name", serde_json::Value::from(event.label.as_str()));
    m.insert("cat", serde_json::Value::from(event.kind.to_string()));
    m.insert("ph", serde_json::Value::from("X"));
    m.insert("ts", serde_json::Value::from(event.start_us));
    m.insert("dur", serde_json::Value::from(event.duration_us()));
    m.insert("pid", serde_json::Value::from(1.0));
    m.insert("tid", serde_json::Value::from(tid as f64));
    m.insert("args", serde_json::Value::Object(args));
    serde_json::Value::Object(m)
}

fn counter_entry(track: &str, ts: f64, value: f64, pid: u64) -> serde_json::Value {
    let mut args = serde_json::Map::new();
    args.insert("value", serde_json::Value::from(value));
    let mut m = serde_json::Map::new();
    m.insert("name", serde_json::Value::from(track));
    m.insert("ph", serde_json::Value::from("C"));
    m.insert("ts", serde_json::Value::from(ts));
    m.insert("pid", serde_json::Value::from(pid as f64));
    m.insert("args", serde_json::Value::Object(args));
    serde_json::Value::Object(m)
}

/// Instantaneous interconnect bandwidth (GB/s) as a step function:
/// change-point sweep over every byte-moving event. Returns `(t_us,
/// gbps)` samples, one per distinct change point.
fn bandwidth_samples(events: &[TraceEvent]) -> Vec<(f64, f64)> {
    let mut deltas: Vec<(f64, f64)> = Vec::new();
    for e in events {
        let dur = e.duration_us();
        if e.bytes > 0 && dur > 0.0 {
            // bytes / us -> GB/s is a factor of 1e-3.
            let gbps = e.bytes as f64 / dur * 1e-3;
            deltas.push((e.start_us, gbps));
            deltas.push((e.end_us, -gbps));
        }
    }
    deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut samples = Vec::new();
    let mut level = 0.0;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            level += deltas[i].1;
            i += 1;
        }
        samples.push((t, level.max(0.0)));
    }
    samples
}

/// Outstanding managed pages over time: migrations page data in, a
/// thrash invalidates the pages for its duration before they come back.
/// Returns `(t_us, pages)` samples.
fn managed_page_samples(events: &[TraceEvent]) -> Vec<(f64, f64)> {
    let mut deltas: Vec<(f64, f64)> = Vec::new();
    for e in events {
        let pages = (e.bytes as f64 / PAGE_BYTES).ceil();
        if pages <= 0.0 {
            continue;
        }
        match e.kind {
            TraceKind::Migration => deltas.push((e.end_us, pages)),
            TraceKind::Thrash => {
                deltas.push((e.start_us, -pages));
                deltas.push((e.end_us, pages));
            }
            _ => {}
        }
    }
    deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut samples = Vec::new();
    let mut level = 0.0;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            level += deltas[i].1;
            i += 1;
        }
        samples.push((t, level.max(0.0)));
    }
    samples
}

/// Serializes events into the Chrome trace-event format (the JSON array
/// flavor), loadable in `chrome://tracing` or Perfetto. Kernels appear on
/// a "CPU" or "GPU" track, bus activity (copies, migrations, thrash,
/// syncs) on a "Bus" track. Byte-moving events additionally feed two
/// `"ph":"C"` counter tracks: instantaneous interconnect bandwidth and
/// outstanding managed pages.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    to_chrome_trace_with_counters(events, &[])
}

/// Like [`to_chrome_trace`], with additional counter tracks appended
/// from `extra` samples (e.g. the tuner's per-node EMA evolution,
/// collected through an `edgenn_obs::Recorder`). Extra counters render
/// on their own process row (`pid` 2) so they group separately from the
/// simulated hardware.
pub fn to_chrome_trace_with_counters(events: &[TraceEvent], extra: &[CounterSample]) -> String {
    let entries = chrome_trace_entries(events, extra);
    serde_json::to_string_pretty(&serde_json::Value::Array(entries))
        .expect("trace events are serializable")
}

/// The raw Chrome trace-event entries for a simulated timeline, before
/// serialization: spans on `pid` 1, extra counters on `pid` 2. Callers
/// that want one trace file holding the simulated timeline *next to*
/// something else (a measured flight recording, another simulation)
/// append their own entries under a distinct `pid` and serialize the
/// combined array themselves.
#[must_use]
pub fn chrome_trace_entries(
    events: &[TraceEvent],
    extra: &[CounterSample],
) -> Vec<serde_json::Value> {
    let mut entries = Vec::with_capacity(events.len());
    for event in events {
        entries.push(span_entry(event));
    }
    for (ts, gbps) in bandwidth_samples(events) {
        entries.push(counter_entry("bandwidth_gbps", ts, gbps, 1));
    }
    for (ts, pages) in managed_page_samples(events) {
        entries.push(counter_entry("managed_pages_outstanding", ts, pages, 1));
    }
    for sample in extra {
        entries.push(counter_entry(&sample.track, sample.t_us, sample.value, 2));
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            kind,
            processor: None,
            start_us: start,
            end_us: end,
            label: "t".into(),
            bytes: 0,
        }
    }

    #[test]
    fn summary_buckets_by_kind() {
        let events = vec![
            ev(TraceKind::Kernel, 0.0, 10.0),
            ev(TraceKind::Copy, 10.0, 13.0),
            ev(TraceKind::Kernel, 13.0, 20.0),
            ev(TraceKind::Migration, 20.0, 21.0),
            ev(TraceKind::Thrash, 21.0, 25.0),
            ev(TraceKind::Sync, 25.0, 26.0),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.kernel_us, 17.0);
        assert_eq!(s.copy_us, 3.0);
        assert_eq!(s.migration_us, 1.0);
        assert_eq!(s.thrash_us, 4.0);
        assert_eq!(s.sync_us, 1.0);
        assert_eq!(s.memory_us(), 8.0);
        // Back-to-back events: always busy, never idle.
        assert_eq!(s.busy_us, 26.0);
        assert_eq!(s.idle_us, 0.0);
    }

    #[test]
    fn busy_counts_corun_overlap_once() {
        // CPU [0, 10] and GPU [5, 15] co-run: per-kind kernel time
        // double-counts the overlap (15 + 10 = 20 over a 15us window);
        // the wall-clock union must not.
        let events = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Cpu),
                start_us: 0.0,
                end_us: 10.0,
                label: "cpu".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 5.0,
                end_us: 15.0,
                label: "gpu".into(),
                bytes: 0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.kernel_us, 20.0, "per-kind sum still double-counts");
        assert_eq!(s.busy_us, 15.0, "interval union counts the overlap once");
        assert_eq!(s.idle_us, 0.0);
    }

    #[test]
    fn idle_is_the_gap_between_activities() {
        let events = vec![
            ev(TraceKind::Kernel, 0.0, 5.0),
            ev(TraceKind::Kernel, 10.0, 15.0),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.busy_us, 10.0);
        assert_eq!(s.idle_us, 5.0);
    }

    #[test]
    fn interval_union_merges_contained_and_touching_spans() {
        assert_eq!(interval_union_us(&[]), 0.0);
        assert_eq!(
            interval_union_us(&[(0.0, 10.0), (2.0, 4.0)]),
            10.0,
            "contained"
        );
        assert_eq!(
            interval_union_us(&[(0.0, 5.0), (5.0, 9.0)]),
            9.0,
            "touching"
        );
        assert_eq!(
            interval_union_us(&[(6.0, 8.0), (0.0, 1.0)]),
            3.0,
            "disjoint, unsorted"
        );
        assert_eq!(interval_union_us(&[(3.0, 3.0)]), 0.0, "zero-width ignored");
    }

    #[test]
    fn events_serialize_round_trip() {
        let e = TraceEvent {
            kind: TraceKind::Kernel,
            processor: Some(ProcessorKind::Gpu),
            start_us: 1.5,
            end_us: 2.5,
            label: "conv1".into(),
            bytes: 4096,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.duration_us(), 1.0);
    }

    #[test]
    fn validation_accepts_serial_and_rejects_overlap() {
        let ok = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 0.0,
                end_us: 5.0,
                label: "a".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 5.0,
                end_us: 9.0,
                label: "b".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Cpu),
                start_us: 1.0,
                end_us: 8.0,
                label: "c".into(),
                bytes: 0,
            },
        ];
        assert!(
            validate_events(&ok).is_ok(),
            "cross-processor overlap is fine"
        );

        let mut bad = ok.clone();
        bad[1].start_us = 4.0; // overlaps event 'a' on the GPU
        assert!(validate_events(&bad).is_err());

        let mut negative = ok;
        negative[0].end_us = -1.0;
        assert!(validate_events(&negative).is_err());
    }

    #[test]
    fn chrome_trace_contains_all_events_on_correct_tracks() {
        let events = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 0.0,
                end_us: 5.0,
                label: "conv1".into(),
                bytes: 0,
            },
            TraceEvent {
                kind: TraceKind::Copy,
                processor: None,
                start_us: 5.0,
                end_us: 7.0,
                label: "h2d".into(),
                bytes: 0,
            },
        ];
        let json = to_chrome_trace(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["name"], "conv1");
        assert_eq!(arr[0]["tid"], 2);
        assert_eq!(arr[1]["args"]["track"], "Bus");
        assert_eq!(arr[1]["dur"], 2.0);
    }

    #[test]
    fn chrome_trace_emits_counter_tracks_for_byte_movers() {
        let events = vec![
            TraceEvent {
                kind: TraceKind::Copy,
                processor: None,
                start_us: 0.0,
                end_us: 10.0,
                label: "h2d".into(),
                bytes: 10_000, // 1000 bytes/us = 1 GB/s for 10us
            },
            TraceEvent {
                kind: TraceKind::Migration,
                processor: None,
                start_us: 10.0,
                end_us: 12.0,
                label: "fault".into(),
                bytes: 8192, // 2 pages
            },
        ];
        let json = to_chrome_trace(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        let counters: Vec<&serde_json::Value> = arr.iter().filter(|e| e["ph"] == "C").collect();
        assert!(!counters.is_empty());
        let bw_on: Vec<&&serde_json::Value> = counters
            .iter()
            .filter(|e| e["name"] == "bandwidth_gbps" && e["ts"] == 0.0)
            .collect();
        assert_eq!(bw_on.len(), 1);
        assert!((bw_on[0]["args"]["value"].as_f64().unwrap() - 1.0).abs() < 1e-9);
        let pages: Vec<&&serde_json::Value> = counters
            .iter()
            .filter(|e| e["name"] == "managed_pages_outstanding")
            .collect();
        assert_eq!(pages.len(), 1, "one sample at the migration's end");
        assert_eq!(pages[0]["args"]["value"].as_f64().unwrap(), 2.0);
    }

    #[test]
    fn chrome_trace_appends_extra_counter_samples() {
        let extra = vec![
            CounterSample {
                track: "ema_cpu_us/conv1".into(),
                t_us: 0.0,
                value: 120.0,
            },
            CounterSample {
                track: "ema_cpu_us/conv1".into(),
                t_us: 1.0,
                value: 110.0,
            },
        ];
        let json = to_chrome_trace_with_counters(&[], &extra);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["ph"], "C");
        assert_eq!(arr[0]["name"], "ema_cpu_us/conv1");
        assert_eq!(
            arr[0]["pid"], 2,
            "tuner counters live on their own process row"
        );
        assert_eq!(arr[1]["args"]["value"], 110.0);
    }

    #[test]
    fn kind_display_tags() {
        assert_eq!(TraceKind::Kernel.to_string(), "kernel");
        assert_eq!(TraceKind::Thrash.to_string(), "thrash");
    }

    fn kernel(label: &str, proc: ProcessorKind, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Kernel,
            processor: Some(proc),
            start_us: start,
            end_us: end,
            label: label.into(),
            bytes: 0,
        }
    }

    fn copy(label: &str, start: f64, end: f64, bytes: u64) -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Copy,
            processor: Some(ProcessorKind::Gpu),
            start_us: start,
            end_us: end,
            label: label.into(),
            bytes,
        }
    }

    #[test]
    fn region_model_strips_engine_label_suffixes() {
        assert_eq!(data_region(&copy("conv1 h2d", 0.0, 1.0, 4)), Some("conv1"));
        assert_eq!(
            data_region(&copy("pool2 -> GPU", 0.0, 1.0, 4)),
            Some("pool2")
        );
        assert_eq!(
            data_region(&kernel("fc6 [cpu part]", ProcessorKind::Cpu, 0.0, 1.0)),
            Some("fc6")
        );
        assert_eq!(
            data_region(&ev(TraceKind::Sync, 0.0, 1.0)),
            None,
            "syncs touch no array"
        );
    }

    #[test]
    fn happens_before_matches_interval_order() {
        let events = vec![
            kernel("a", ProcessorKind::Gpu, 0.0, 10.0),
            kernel("b", ProcessorKind::Gpu, 10.0, 20.0),
            kernel("c", ProcessorKind::Cpu, 5.0, 15.0),
        ];
        let hb = HappensBefore::new(&events);
        assert!(hb.ordered(0, 1), "endpoint contact is ordered");
        assert!(!hb.ordered(1, 0));
        assert!(hb.concurrent(0, 2) && hb.concurrent(2, 1));
    }

    #[test]
    fn dma_may_overlap_compute_but_kernels_may_not_share_a_core() {
        // The PR-1 overlap rule: a copy of one region runs alongside a
        // kernel producing a *different* region — legal DMA/compute
        // overlap, no violations.
        let clean = vec![
            kernel("conv1", ProcessorKind::Gpu, 0.0, 10.0),
            copy("input -> GPU", 2.0, 6.0, 1_000),
        ];
        assert!(check_trace(&clean, None).is_empty());

        // Two kernels on one processor overlapping is the race.
        let racy = vec![
            kernel("conv1", ProcessorKind::Gpu, 0.0, 10.0),
            kernel("conv2", ProcessorKind::Gpu, 5.0, 15.0),
        ];
        let v = check_trace(&racy, None);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, TraceViolationKind::KernelOverlap);
        assert_eq!((v[0].first, v[0].second), (0, Some(1)));
    }

    #[test]
    fn cross_processor_same_label_is_a_write_write_race() {
        let events = vec![
            kernel("fc6", ProcessorKind::Cpu, 0.0, 10.0),
            kernel("fc6", ProcessorKind::Gpu, 3.0, 12.0),
        ];
        let v = check_trace(&events, None);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, TraceViolationKind::WriteWriteRace);

        // Sanctioned split halves carry distinct part labels.
        let split = vec![
            kernel("fc6 [cpu part]", ProcessorKind::Cpu, 0.0, 10.0),
            kernel("fc6 [gpu part]", ProcessorKind::Gpu, 0.0, 9.0),
        ];
        assert!(check_trace(&split, None).is_empty());
    }

    #[test]
    fn dma_racing_its_own_kernel_is_an_ordering_hazard() {
        let events = vec![
            kernel("conv1", ProcessorKind::Gpu, 0.0, 10.0),
            copy("conv1 h2d", 5.0, 8.0, 1_000),
        ];
        let v = check_trace(&events, None);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, TraceViolationKind::OrderingHazard);
    }

    #[test]
    fn bandwidth_conservation_flags_impossible_transfers() {
        let caps = LinkCaps { link_gbps: 10.0 };
        // 1 MB in 1 us = 1000 GB/s over a 10 GB/s link.
        let impossible = vec![copy("x h2d", 0.0, 1.0, 1_000_000)];
        let v = check_trace(&impossible, Some(&caps));
        assert!(v
            .iter()
            .any(|v| v.kind == TraceViolationKind::BandwidthExceeded));

        // Two 6 GB/s transfers of *different* regions at once: each is
        // fine alone, their sum beats the link — aggregate advisory.
        let pair = vec![
            copy("a h2d", 0.0, 1.0, 6_000),
            copy("b h2d", 0.0, 1.0, 6_000),
        ];
        let v = check_trace(&pair, Some(&caps));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, TraceViolationKind::AggregateBandwidth);
    }

    #[test]
    fn malformed_events_are_reported_once_and_quarantined() {
        let events = vec![
            TraceEvent {
                kind: TraceKind::Kernel,
                processor: Some(ProcessorKind::Gpu),
                start_us: 10.0,
                end_us: f64::NAN,
                label: "bad".into(),
                bytes: 0,
            },
            kernel("good", ProcessorKind::Gpu, 0.0, 5.0),
        ];
        let v = check_trace(&events, None);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, TraceViolationKind::MalformedEvent);
    }

    #[test]
    fn link_caps_take_the_fastest_physical_path() {
        let jetson = crate::platforms::jetson_agx_xavier();
        let caps = LinkCaps::from_platform(&jetson);
        assert_eq!(caps.link_gbps, 100.0, "GPU's DRAM share dominates");
        let rpi = crate::platforms::raspberry_pi_4();
        assert_eq!(LinkCaps::from_platform(&rpi).link_gbps, 6.0);
    }
}
