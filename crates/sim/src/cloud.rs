//! Cloud-offload link model (paper Section V-D).
//!
//! The paper computes on-cloud inference time as
//! `t = v_in / b + cloud_delay + t_compute`, measuring `b ≈ 1 MB/s` between
//! the edge device and an Alibaba Cloud server and `cloud_delay ≈ 100 ms`.
//! We implement the same formula with the same measured constants as
//! defaults.

use serde::{Deserialize, Serialize};

/// Network + cloud-service model for offloaded inference.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CloudLink {
    /// Uplink bandwidth in MB/s.
    pub uplink_mbps: f64,
    /// Fixed cloud-side delay in microseconds (queueing, scheduling,
    /// round-trip latency — the paper measured ~100 ms).
    pub cloud_delay_us: f64,
}

impl CloudLink {
    /// The paper's measured conditions: 1 MB/s uplink, 100 ms cloud delay.
    pub fn paper_measured() -> Self {
        Self {
            uplink_mbps: 1.0,
            cloud_delay_us: 100_000.0,
        }
    }

    /// Upload time for `bytes` of input, in microseconds.
    pub fn upload_time_us(&self, bytes: u64) -> f64 {
        bytes as f64 / self.uplink_mbps // bytes / (MB/s) = us
    }

    /// Total offload time: upload + cloud delay + remote compute.
    ///
    /// The result (class scores) is a few kilobytes; the paper folds its
    /// return transfer into the measured cloud delay, and so do we.
    pub fn offload_time_us(&self, input_bytes: u64, remote_compute_us: f64) -> f64 {
        self.upload_time_us(input_bytes) + self.cloud_delay_us + remote_compute_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let link = CloudLink::paper_measured();
        assert_eq!(link.uplink_mbps, 1.0);
        assert_eq!(link.cloud_delay_us, 100_000.0);
    }

    #[test]
    fn upload_time_matches_formula() {
        let link = CloudLink::paper_measured();
        // The paper's 400 KB compressed image at 1 MB/s = 400 ms.
        assert!((link.upload_time_us(400_000) - 400_000.0).abs() < 1e-6);
        // Doubling bandwidth halves upload time.
        let fast = CloudLink {
            uplink_mbps: 2.0,
            ..link
        };
        assert!((fast.upload_time_us(400_000) - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn offload_sums_components() {
        let link = CloudLink::paper_measured();
        let t = link.offload_time_us(400_000, 5_000.0);
        assert!((t - (400_000.0 + 100_000.0 + 5_000.0)).abs() < 1e-6);
    }
}
