//! # edgenn-sim
//!
//! Hardware substrate simulator for the EdgeNN reproduction.
//!
//! The paper evaluates physical devices — an NVIDIA Jetson AGX Xavier
//! (CPU-GPU integrated SoC with unified LPDDR4x), a Raspberry Pi 4, a
//! MediaTek Dimensity 8100 phone, and an RTX 2080 Ti server. None of that
//! hardware (nor CUDA) is available to a pure-Rust build, so this crate
//! models the pieces of those machines that EdgeNN's policies actually
//! interact with:
//!
//! - [`processor`] — per-processor roofline kernel timing with occupancy
//!   (GPU under-saturation on small kernels) and cache-pressure (CPU
//!   working-set) effects;
//! - [`memory`] — the two allocation strategies of the paper's
//!   semantic-aware memory management: `cudaMalloc`-style **explicit**
//!   arrays with per-boundary copies, and `cudaMallocManaged`-style
//!   **managed** (zero-copy) arrays with access penalties and
//!   consistency-thrash costs;
//! - [`engine`] — a two-processor timeline that tracks clocks, busy time
//!   and a full event trace;
//! - [`power`] — utilization-proportional power and energy integration;
//! - [`platforms`] — calibrated presets for the paper's four machines;
//! - [`cloud`] — the network/cloud-delay model of Section V-D;
//! - [`fault`] — deterministic, seed-driven fault injection (transient
//!   kernel failures, bandwidth/thermal windows, migration stalls, OOM
//!   pressure) consulted by the executing timeline.
//!
//! Every constant in [`platforms`] is documented with the paper statement
//! or public spec-sheet figure it is anchored to. Absolute times are not
//! claimed to match physical silicon; the *relative* behaviours the paper
//! reports (who wins, by what factor, where crossovers fall) are what the
//! calibration targets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cloud;
pub mod engine;
pub mod fault;
pub mod memory;
pub mod platforms;
pub mod power;
pub mod processor;
pub mod trace;

pub use cloud::CloudLink;
pub use engine::Timeline;
pub use fault::{FaultClock, FaultKind, FaultPlan, FaultWindow, KernelFault};
pub use memory::{AllocStrategy, MemoryArchitecture, MemorySpec};
pub use platforms::Platform;
pub use power::{EnergyReport, PowerModel};
pub use processor::{KernelDesc, OpClass, ProcessorKind, ProcessorSpec};
pub use trace::{
    check_trace, chrome_trace_entries, HappensBefore, LinkCaps, TraceEvent, TraceKind,
    TraceViolation, TraceViolationKind,
};
