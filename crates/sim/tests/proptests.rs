//! Property-based tests for simulator invariants.

use edgenn_sim::engine::Timeline;
use edgenn_sim::processor::{EfficiencyTable, ExecutionContext, KernelDesc, OpClass, ProcessorKind, ProcessorSpec};
use edgenn_sim::trace::TraceKind;
use edgenn_sim::{platforms, PowerModel};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        0u64..10_000_000_000,
        0u64..100_000_000,
        0u64..100_000_000,
        0u64..100_000_000,
        1u64..10_000_000,
        0u64..100_000_000,
    )
        .prop_map(|(flops, bi, bo, wb, par, ws)| KernelDesc {
            class: OpClass::Conv,
            flops,
            bytes_in: bi,
            bytes_out: bo,
            weight_bytes: wb,
            parallelism: par,
            working_set_bytes: ws,
        })
}

fn test_proc(kind: ProcessorKind) -> ProcessorSpec {
    ProcessorSpec {
        name: "p".into(),
        kind,
        peak_gflops: 500.0,
        mem_bw_gbps: 50.0,
        launch_overhead_us: 5.0,
        efficiency: EfficiencyTable::uniform(0.4),
        bw_efficiency: EfficiencyTable::uniform(0.8),
        saturation_parallelism: if kind == ProcessorKind::Gpu { 10_000 } else { 0 },
        cache_bytes: if kind == ProcessorKind::Cpu { 4 << 20 } else { 0 },
        cache_thrash_floor: 0.25,
    }
}

proptest! {
    #[test]
    fn kernel_time_is_positive_and_bounded_below_by_launch(desc in arb_kernel()) {
        let spec = test_proc(ProcessorKind::Gpu);
        let t = spec.kernel_time_us(&desc, &ExecutionContext::default());
        prop_assert!(t >= spec.launch_overhead_us);
        prop_assert!(t.is_finite());
    }

    #[test]
    fn kernel_time_monotone_in_flops(desc in arb_kernel(), extra in 1u64..1_000_000_000) {
        let spec = test_proc(ProcessorKind::Cpu);
        let ctx = ExecutionContext::default();
        let base = spec.kernel_time_us(&desc, &ctx);
        let more = KernelDesc { flops: desc.flops.saturating_add(extra), ..desc };
        prop_assert!(spec.kernel_time_us(&more, &ctx) >= base - 1e-9);
    }

    #[test]
    fn bandwidth_factors_never_speed_kernels_up(
        desc in arb_kernel(),
        bw in 0.05f64..1.0,
        cont in 0.05f64..1.0,
    ) {
        let spec = test_proc(ProcessorKind::Gpu);
        let base = spec.kernel_time_us(&desc, &ExecutionContext::default());
        let degraded = spec.kernel_time_us(
            &desc,
            &ExecutionContext { bandwidth_factor: bw, contention_factor: cont },
        );
        prop_assert!(degraded >= base - 1e-9, "degraded {degraded} < base {base}");
    }

    #[test]
    fn copy_time_is_monotone_and_superadditive_in_latency(
        a in 0u64..100_000_000,
        b in 0u64..100_000_000,
    ) {
        let memory = platforms::jetson_agx_xavier().memory;
        let ta = memory.copy_time_us(a);
        let tb = memory.copy_time_us(b);
        let tab = memory.copy_time_us(a + b);
        prop_assert!(tab >= ta.max(tb) - 1e-9, "monotonicity");
        if a > 0 && b > 0 {
            // One big copy beats two small ones (single latency charge).
            prop_assert!(tab <= ta + tb + 1e-9, "latency amortization");
        }
    }

    #[test]
    fn timeline_makespan_never_decreases(
        durations in prop::collection::vec((0usize..2, 0.0f64..1000.0), 1..40),
    ) {
        let mut timeline = Timeline::new();
        let mut last = 0.0f64;
        for (proc, dur) in durations {
            let proc = if proc == 0 { ProcessorKind::Cpu } else { ProcessorKind::Gpu };
            timeline.schedule(proc, TraceKind::Kernel, 0.0, dur, "w");
            let m = timeline.makespan_us();
            prop_assert!(m >= last - 1e-9);
            last = m;
        }
        // Busy time on each processor never exceeds the makespan.
        for proc in [ProcessorKind::Cpu, ProcessorKind::Gpu] {
            prop_assert!(timeline.busy_us(proc) <= timeline.makespan_us() + 1e-9);
            let f = timeline.busy_fraction(proc);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn energy_scales_with_duration_and_utilization(
        busy_cpu in 0.0f64..1000.0,
        busy_gpu in 0.0f64..1000.0,
    ) {
        let power = PowerModel { base_w: 2.0, cpu_dynamic_w: 3.0, gpu_dynamic_w: 4.0 };
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Cpu, TraceKind::Kernel, 0.0, busy_cpu, "c");
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, busy_gpu, "g");
        let e = power.energy(&t);
        let makespan = busy_cpu.max(busy_gpu);
        // Energy is at least the idle floor and at most the all-out draw.
        prop_assert!(e.energy_mj >= 2.0 * makespan / 1000.0 - 1e-9);
        prop_assert!(e.energy_mj <= 9.0 * makespan / 1000.0 + 1e-9);
        prop_assert!(e.avg_power_w >= 2.0 - 1e-9);
    }

    #[test]
    fn migration_prefetch_never_slower(bytes in 1u64..200_000_000) {
        let memory = platforms::jetson_agx_xavier().memory;
        prop_assert!(
            memory.migration_time_us(bytes, true)
                <= memory.migration_time_us(bytes, false) + 1e-9
        );
        // Thrash is always at least as bad as a plain migration.
        prop_assert!(memory.thrash_time_us(bytes) >= memory.migration_time_us(bytes, false));
    }

    #[test]
    fn cloud_offload_monotone_in_bandwidth(
        bytes in 1u64..10_000_000,
        b1 in 0.1f64..100.0,
        b2 in 0.1f64..100.0,
    ) {
        use edgenn_sim::CloudLink;
        prop_assume!(b1 < b2);
        let slow = CloudLink { uplink_mbps: b1, cloud_delay_us: 100_000.0 };
        let fast = CloudLink { uplink_mbps: b2, cloud_delay_us: 100_000.0 };
        prop_assert!(fast.offload_time_us(bytes, 0.0) < slow.offload_time_us(bytes, 0.0));
    }
}
