//! Randomized (seeded, deterministic) tests for simulator invariants.
//!
//! These were originally property-based tests; they now draw cases from a
//! fixed-seed RNG so the suite is reproducible and dependency-free.

use edgenn_sim::engine::Timeline;
use edgenn_sim::processor::{
    EfficiencyTable, ExecutionContext, KernelDesc, OpClass, ProcessorKind, ProcessorSpec,
};
use edgenn_sim::trace::TraceKind;
use edgenn_sim::{platforms, PowerModel};
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn arb_kernel(rng: &mut rand::rngs::StdRng) -> KernelDesc {
    KernelDesc {
        class: OpClass::Conv,
        flops: rng.gen_range(0u64..10_000_000_000),
        bytes_in: rng.gen_range(0u64..100_000_000),
        bytes_out: rng.gen_range(0u64..100_000_000),
        weight_bytes: rng.gen_range(0u64..100_000_000),
        parallelism: rng.gen_range(1u64..10_000_000),
        working_set_bytes: rng.gen_range(0u64..100_000_000),
    }
}

fn test_proc(kind: ProcessorKind) -> ProcessorSpec {
    ProcessorSpec {
        name: "p".into(),
        kind,
        peak_gflops: 500.0,
        mem_bw_gbps: 50.0,
        launch_overhead_us: 5.0,
        efficiency: EfficiencyTable::uniform(0.4),
        bw_efficiency: EfficiencyTable::uniform(0.8),
        saturation_parallelism: if kind == ProcessorKind::Gpu {
            10_000
        } else {
            0
        },
        cache_bytes: if kind == ProcessorKind::Cpu {
            4 << 20
        } else {
            0
        },
        cache_thrash_floor: 0.25,
    }
}

#[test]
fn kernel_time_is_positive_and_bounded_below_by_launch() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0001);
    let spec = test_proc(ProcessorKind::Gpu);
    for _ in 0..CASES {
        let desc = arb_kernel(&mut rng);
        let t = spec.kernel_time_us(&desc, &ExecutionContext::default());
        assert!(t >= spec.launch_overhead_us);
        assert!(t.is_finite());
    }
}

#[test]
fn kernel_time_monotone_in_flops() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0002);
    let spec = test_proc(ProcessorKind::Cpu);
    let ctx = ExecutionContext::default();
    for _ in 0..CASES {
        let desc = arb_kernel(&mut rng);
        let extra = rng.gen_range(1u64..1_000_000_000);
        let base = spec.kernel_time_us(&desc, &ctx);
        let more = KernelDesc {
            flops: desc.flops.saturating_add(extra),
            ..desc
        };
        assert!(spec.kernel_time_us(&more, &ctx) >= base - 1e-9);
    }
}

#[test]
fn bandwidth_factors_never_speed_kernels_up() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0003);
    let spec = test_proc(ProcessorKind::Gpu);
    for _ in 0..CASES {
        let desc = arb_kernel(&mut rng);
        let bw = rng.gen_range(0.05f64..1.0);
        let cont = rng.gen_range(0.05f64..1.0);
        let base = spec.kernel_time_us(&desc, &ExecutionContext::default());
        let degraded = spec.kernel_time_us(
            &desc,
            &ExecutionContext {
                bandwidth_factor: bw,
                contention_factor: cont,
                compute_factor: 1.0,
            },
        );
        assert!(degraded >= base - 1e-9, "degraded {degraded} < base {base}");
    }
}

#[test]
fn copy_time_is_monotone_and_superadditive_in_latency() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0004);
    let memory = platforms::jetson_agx_xavier().memory;
    for _ in 0..CASES {
        let a = rng.gen_range(0u64..100_000_000);
        let b = rng.gen_range(0u64..100_000_000);
        let ta = memory.copy_time_us(a);
        let tb = memory.copy_time_us(b);
        let tab = memory.copy_time_us(a + b);
        assert!(tab >= ta.max(tb) - 1e-9, "monotonicity");
        if a > 0 && b > 0 {
            // One big copy beats two small ones (single latency charge).
            assert!(tab <= ta + tb + 1e-9, "latency amortization");
        }
    }
}

#[test]
fn timeline_makespan_never_decreases() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0005);
    for _ in 0..CASES {
        let count = rng.gen_range(1usize..40);
        let mut timeline = Timeline::new();
        let mut last = 0.0f64;
        for _ in 0..count {
            let proc = if rng.gen_bool(0.5) {
                ProcessorKind::Cpu
            } else {
                ProcessorKind::Gpu
            };
            let dur = rng.gen_range(0.0f64..1000.0);
            timeline.schedule(proc, TraceKind::Kernel, 0.0, dur, "w");
            let m = timeline.makespan_us();
            assert!(m >= last - 1e-9);
            last = m;
        }
        // Busy time on each processor never exceeds the makespan.
        for proc in [ProcessorKind::Cpu, ProcessorKind::Gpu] {
            assert!(timeline.busy_us(proc) <= timeline.makespan_us() + 1e-9);
            let f = timeline.busy_fraction(proc);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}

#[test]
fn energy_scales_with_duration_and_utilization() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0006);
    for _ in 0..CASES {
        let busy_cpu = rng.gen_range(0.0f64..1000.0);
        let busy_gpu = rng.gen_range(0.0f64..1000.0);
        let power = PowerModel {
            base_w: 2.0,
            cpu_dynamic_w: 3.0,
            gpu_dynamic_w: 4.0,
        };
        let mut t = Timeline::new();
        t.schedule(ProcessorKind::Cpu, TraceKind::Kernel, 0.0, busy_cpu, "c");
        t.schedule(ProcessorKind::Gpu, TraceKind::Kernel, 0.0, busy_gpu, "g");
        let e = power.energy(&t);
        let makespan = busy_cpu.max(busy_gpu);
        // Energy is at least the idle floor and at most the all-out draw.
        assert!(e.energy_mj >= 2.0 * makespan / 1000.0 - 1e-9);
        assert!(e.energy_mj <= 9.0 * makespan / 1000.0 + 1e-9);
        assert!(e.avg_power_w >= 2.0 - 1e-9);
    }
}

#[test]
fn migration_prefetch_never_slower() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0007);
    let memory = platforms::jetson_agx_xavier().memory;
    for _ in 0..CASES {
        let bytes = rng.gen_range(1u64..200_000_000);
        assert!(
            memory.migration_time_us(bytes, true) <= memory.migration_time_us(bytes, false) + 1e-9
        );
        // Thrash is always at least as bad as a plain migration.
        assert!(memory.thrash_time_us(bytes) >= memory.migration_time_us(bytes, false));
    }
}

#[test]
fn cloud_offload_monotone_in_bandwidth() {
    use edgenn_sim::CloudLink;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B0_0008);
    let mut checked = 0usize;
    while checked < CASES {
        let bytes = rng.gen_range(1u64..10_000_000);
        let b1 = rng.gen_range(0.1f64..100.0);
        let b2 = rng.gen_range(0.1f64..100.0);
        if b1 >= b2 {
            continue;
        }
        checked += 1;
        let slow = CloudLink {
            uplink_mbps: b1,
            cloud_delay_us: 100_000.0,
        };
        let fast = CloudLink {
            uplink_mbps: b2,
            cloud_delay_us: 100_000.0,
        };
        assert!(fast.offload_time_us(bytes, 0.0) < slow.offload_time_us(bytes, 0.0));
    }
}
