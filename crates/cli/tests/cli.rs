//! End-to-end tests of the `edgenn` binary.

use std::process::Command;

fn edgenn(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_edgenn"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn models_lists_all_six_benchmarks() {
    let out = edgenn(&["models"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["FCNN", "LeNet", "AlexNet", "VGG", "SqueezeNet", "ResNet"] {
        assert!(text.contains(name), "missing {name}:\n{text}");
    }
    assert!(
        text.contains("fork-join"),
        "SqueezeNet/ResNet structure shown"
    );
}

#[test]
fn platforms_lists_integrated_and_discrete() {
    let out = edgenn(&["platforms"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Jetson AGX Xavier"));
    assert!(text.contains("integrated"));
    assert!(text.contains("discrete"));
    assert!(text.contains("cpu-only"));
}

#[test]
fn simulate_json_is_machine_readable() {
    let out = edgenn(&[
        "simulate",
        "--model",
        "lenet",
        "--platform",
        "jetson",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(report["total_us"].as_f64().unwrap() > 0.0);
    assert_eq!(report["model"], "LeNet");
    assert_eq!(report["platform"], "Jetson AGX Xavier");
}

#[test]
fn simulate_human_output_has_breakdown_and_layers() {
    let out = edgenn(&[
        "simulate",
        "--model",
        "alexnet",
        "--platform",
        "jetson",
        "--layers",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("latency"));
    assert!(text.contains("breakdown"));
    assert!(text.contains("conv1"));
    assert!(text.contains("fc8"));
}

#[test]
fn plan_dump_parses_and_validates() {
    let out = edgenn(&["plan", "--model", "squeezenet", "--platform", "jetson"]);
    assert!(out.status.success());
    let plan: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    // The plan covers the *compiled* graph: raw SqueezeNet has 67 nodes,
    // and the compiler (fusion + identity elimination + slice
    // cancellation) must remove a substantial fraction of them.
    let nodes = plan["nodes"].as_array().unwrap().len();
    assert!(
        (30..60).contains(&nodes),
        "compiled SqueezeNet should plan 30..60 nodes, got {nodes}"
    );
}

#[test]
fn trace_flag_writes_a_chrome_trace() {
    let path = std::env::temp_dir().join("edgenn_cli_test_trace.json");
    let _ = std::fs::remove_file(&path);
    let out = edgenn(&[
        "simulate",
        "--model",
        "lenet",
        "--platform",
        "jetson",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(!trace.as_array().unwrap().is_empty());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn compare_reports_all_configs() {
    let out = edgenn(&["compare", "--model", "fcnn", "--platform", "jetson"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for config in [
        "baseline",
        "memory-only",
        "hybrid-only",
        "edgenn",
        "cpu-only",
    ] {
        assert!(text.contains(config), "missing {config}:\n{text}");
    }
}

#[test]
fn cpu_only_platform_skips_gpu_configs() {
    let out = edgenn(&["compare", "--model", "lenet", "--platform", "rpi"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("cpu-only"));
    assert!(
        !text.contains("edgenn (energy-aware)"),
        "no GPU configs on the RPi"
    );
}

#[test]
fn bad_inputs_fail_with_useful_messages() {
    let cases: &[(&[&str], &str)] = &[
        (&["simulate", "--platform", "jetson"], "--model is required"),
        (
            &["simulate", "--model", "bert", "--platform", "jetson"],
            "unknown model",
        ),
        (
            &["simulate", "--model", "lenet", "--platform", "ps5"],
            "unknown platform",
        ),
        (
            &[
                "simulate",
                "--model",
                "lenet",
                "--platform",
                "jetson",
                "--config",
                "x",
            ],
            "unknown config",
        ),
        (&["frobnicate"], "unknown command"),
        (&[], "USAGE"),
    ];
    for (args, needle) in cases {
        let out = edgenn(args);
        assert!(!out.status.success(), "{args:?} should fail");
        let text = String::from_utf8(out.stderr).unwrap();
        assert!(
            text.contains(needle),
            "{args:?}: expected '{needle}' in:\n{text}"
        );
    }
}

#[test]
fn siege_gates_clean_and_archives_checked_json() {
    let path = std::env::temp_dir().join("edgenn_cli_test_siege.json");
    let _ = std::fs::remove_file(&path);
    let out = edgenn(&[
        "siege",
        "--seed",
        "42",
        "--duration-us",
        "20000",
        "--out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(report["seed"].as_f64(), Some(42.0));
    assert!((report["survival"].as_f64().unwrap() - 1.0).abs() < 1e-12);
    assert_eq!(report["lost"].as_f64(), Some(0.0));
    assert_eq!(report["checker"]["clean"].as_bool(), Some(true));
    assert!(
        !report["events"].as_array().unwrap().is_empty(),
        "the full admission log rides on the archived report"
    );
    let archived: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(archived["survival"], report["survival"]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn serve_runs_realtime_and_check_replays_the_log() {
    let out = edgenn(&[
        "serve",
        "--seed",
        "42",
        "--duration-ms",
        "250",
        "--check",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!((report["survival"].as_f64().unwrap() - 1.0).abs() < 1e-12);
    assert_eq!(report["checker"]["clean"].as_bool(), Some(true));
}

#[test]
fn serve_and_siege_reject_unknown_flags_like_every_command() {
    for command in ["serve", "siege", "storm"] {
        let out = edgenn(&[command, "--frobnicate", "7"]);
        assert!(!out.status.success(), "{command} accepted a stray flag");
        let text = String::from_utf8(out.stderr).unwrap();
        assert!(
            text.contains("unknown flag '--frobnicate'"),
            "{command}: {text}"
        );
        assert!(text.contains("--seed"), "{command} suggests its flags");
    }
}

#[test]
fn storm_surfaces_the_seed_of_a_forced_failure_and_replays_it() {
    // The forced failure exercises the seed-archiving path end to end:
    // round 1 of base seed 7 is seed 8, which must land in
    // failed_seeds and in the non-zero-exit failure message.
    let out = edgenn(&[
        "storm",
        "--model",
        "fcnn",
        "--platform",
        "apu",
        "--seed",
        "7",
        "--runs",
        "3",
        "--inject-failure",
        "1",
        "--json",
    ]);
    assert!(!out.status.success(), "a forced failure fails the gate");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("seed 8"),
        "failure names its seed: {stderr}"
    );
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let seeds = report["models"][0]["failed_seeds"].as_array().unwrap();
    assert_eq!(seeds.len(), 1);
    assert_eq!(seeds[0].as_f64(), Some(8.0));

    // The archived seed replays verbosely (and, not being a real
    // failure, survives).
    let out = edgenn(&[
        "storm",
        "--model",
        "fcnn",
        "--platform",
        "apu",
        "--seed",
        "7",
        "--replay-seed",
        "8",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("storm replay: seed 8"), "{text}");
    assert!(text.contains("fault(s)"), "recovery detail printed: {text}");
}

#[test]
fn inspect_prints_per_layer_table() {
    let out = edgenn(&["inspect", "--model", "vgg"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("conv1_1"));
    assert!(text.contains("fc8"));
    assert!(text.contains("pure chain"));
    let out = edgenn(&["inspect", "--model", "resnet"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("fork-join"));
}

#[test]
fn tiny_scale_simulates_quickly() {
    let out = edgenn(&[
        "simulate",
        "--model",
        "resnet",
        "--platform",
        "apple",
        "--scale",
        "tiny",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Apple Silicon"));
}

#[test]
fn profile_emits_a_checked_merged_perfetto_trace() {
    let path = std::env::temp_dir().join("edgenn_cli_test_profile.json");
    let _ = std::fs::remove_file(&path);
    let out = edgenn(&[
        "profile",
        "squeezenet",
        "--platform",
        "apu",
        "--runs",
        "2",
        "--perfetto",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("flight check : clean"), "{text}");
    assert!(text.contains("compute"), "stage table present:\n{text}");
    assert!(text.contains("predicted us"), "per-node table present");
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let entries = trace.as_array().unwrap();
    let simulated = entries
        .iter()
        .filter(|e| e["pid"] == 1.0 && e["ph"] == "X")
        .count();
    let measured = entries
        .iter()
        .filter(|e| e["pid"] == 3.0 && e["ph"] == "X")
        .count();
    assert!(simulated > 0, "simulated timeline rides on pid 1");
    assert!(measured > 0, "measured flight recording rides on pid 3");
    assert!(
        entries
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "measured (flight recorder)"),
        "process rows are labelled"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn profile_json_carries_stages_and_per_node_attribution() {
    let out = edgenn(&[
        "profile",
        "lenet",
        "--platform",
        "jetson",
        "--runs",
        "1",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let profile: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(profile["flight_check"], "clean");
    assert!(profile["wall_us"].as_f64().unwrap() > 0.0);
    let stages = profile["profile"]["stages"].as_array().unwrap();
    assert!(stages.iter().any(|s| s["stage"] == "request"));
    assert!(stages.iter().any(|s| s["stage"] == "node"));
    let nodes = profile["nodes"].as_array().unwrap();
    assert!(!nodes.is_empty());
    assert!(
        nodes
            .iter()
            .any(|n| n["predicted_us"].as_f64().unwrap_or(0.0) > 0.0),
        "nodes carry the analytic prediction next to the measurement"
    );
}
