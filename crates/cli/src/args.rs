//! Minimal hand-rolled argument parsing (no external CLI dependency).

use edgenn_core::plan::{ExecutionConfig, Precision};
use edgenn_nn::models::ModelKind;
use edgenn_sim::{platforms, Platform};

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default)]
pub struct Options {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Options {
    /// Parses raw arguments. `--key value` pairs become flags; `--key`
    /// followed by another flag (or nothing) becomes a boolean flag.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut options = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match args.peek() {
                    Some(v) if !v.starts_with("--") => args.next(),
                    _ => None,
                };
                options.flags.push((key.to_string(), value));
            } else {
                options.positional.push(arg);
            }
        }
        options
    }

    /// The nth positional argument.
    pub fn positional(&self, n: usize) -> Option<&str> {
        self.positional.get(n).map(String::as_str)
    }

    /// The value of `--key`, if present with a value.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// True when `--key` was passed (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    /// Errors on the first `--flag` outside `known`, so a typo fails
    /// loudly instead of silently falling back to a default.
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), String> {
        for (key, _) in &self.flags {
            if !known.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag '--{key}' (expected one of: {})",
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        Ok(())
    }
}

/// Resolves a `--model` name.
pub fn parse_model(name: &str) -> Result<ModelKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "fcnn" => Ok(ModelKind::Fcnn),
        "lenet" => Ok(ModelKind::LeNet),
        "alexnet" => Ok(ModelKind::AlexNet),
        "vgg" | "vgg16" | "vgg-16" => Ok(ModelKind::Vgg16),
        "squeezenet" => Ok(ModelKind::SqueezeNet),
        "resnet" | "resnet18" | "resnet-18" => Ok(ModelKind::ResNet18),
        other => Err(format!(
            "unknown model '{other}' (expected fcnn|lenet|alexnet|vgg|squeezenet|resnet)"
        )),
    }
}

/// Resolves a `--platform` name.
pub fn parse_platform(name: &str) -> Result<Platform, String> {
    match name.to_ascii_lowercase().as_str() {
        "jetson" | "xavier" | "jetson-xavier" | "jetson-agx-xavier" | "agx-xavier" => {
            Ok(platforms::jetson_agx_xavier())
        }
        "rpi" | "raspberry-pi" | "raspberrypi" => Ok(platforms::raspberry_pi_4()),
        "phone" | "dimensity" | "dimensity-8100" => Ok(platforms::dimensity_8100()),
        "server" | "2080ti" | "rtx-2080ti" => Ok(platforms::rtx_2080ti_server()),
        "apu" | "amd" | "amd-apu" => Ok(platforms::amd_embedded_apu()),
        "apple" | "m1" | "apple-m1" => Ok(platforms::apple_silicon_m1()),
        other => Err(format!(
            "unknown platform '{other}' (expected jetson|rpi|phone|server|apu|apple)"
        )),
    }
}

/// Resolves a `--config` name.
pub fn parse_config(name: &str) -> Result<ExecutionConfig, String> {
    match name.to_ascii_lowercase().as_str() {
        "edgenn" => Ok(ExecutionConfig::edgenn()),
        "baseline" | "gpu-only" => Ok(ExecutionConfig::baseline_gpu()),
        "cpu-only" => Ok(ExecutionConfig::cpu_only()),
        "memory-only" | "zero-copy" => Ok(ExecutionConfig::memory_only()),
        "hybrid-only" => Ok(ExecutionConfig::hybrid_only()),
        "inter-only" | "inter-kernel" => Ok(ExecutionConfig::inter_kernel_only()),
        "energy" | "energy-aware" => Ok(ExecutionConfig::edgenn_energy_aware()),
        other => Err(format!(
            "unknown config '{other}' (expected edgenn|baseline|cpu-only|memory-only|\
             hybrid-only|inter-only|energy)"
        )),
    }
}

/// Resolves a `--precision` name.
pub fn parse_precision(name: &str) -> Result<Precision, String> {
    match name.to_ascii_lowercase().as_str() {
        "f32" | "fp32" | "float" => Ok(Precision::F32),
        "int8" | "i8" | "quantized" => Ok(Precision::Int8),
        other => Err(format!("unknown precision '{other}' (expected f32|int8)")),
    }
}

/// Builds the execution config from `--config` (default `edgenn`) with
/// `--precision` applied on top, so every preset has an int8 variant.
pub fn resolve_config(options: &Options) -> Result<ExecutionConfig, String> {
    let mut config = parse_config(options.value("config").unwrap_or("edgenn"))?;
    if let Some(name) = options.value("precision") {
        config.precision = parse_precision(name)?;
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(args.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn parses_positionals_and_flags() {
        let o = opts(&[
            "simulate", "--model", "alexnet", "--json", "--trace", "t.json",
        ]);
        assert_eq!(o.positional(0), Some("simulate"));
        assert_eq!(o.value("model"), Some("alexnet"));
        assert!(o.has("json"));
        assert!(!o.has("quiet"));
        assert_eq!(o.value("trace"), Some("t.json"));
    }

    #[test]
    fn last_flag_occurrence_wins() {
        let o = opts(&["--model", "lenet", "--model", "vgg"]);
        assert_eq!(o.value("model"), Some("vgg"));
    }

    #[test]
    fn ensure_known_accepts_listed_flags_and_names_strays() {
        let o = opts(&["siege", "--seed", "7", "--json"]);
        assert!(o.ensure_known(&["seed", "json", "out"]).is_ok());
        let err = o.ensure_known(&["seed", "out"]).unwrap_err();
        assert!(err.contains("unknown flag '--json'"), "{err}");
        assert!(err.contains("--seed"), "suggests the allowed set: {err}");
    }

    #[test]
    fn model_names_resolve() {
        assert_eq!(parse_model("AlexNet").unwrap(), ModelKind::AlexNet);
        assert_eq!(parse_model("vgg-16").unwrap(), ModelKind::Vgg16);
        assert_eq!(parse_model("resnet18").unwrap(), ModelKind::ResNet18);
        assert!(parse_model("bert").is_err());
    }

    #[test]
    fn platform_names_resolve() {
        assert!(parse_platform("jetson").unwrap().is_integrated());
        assert_eq!(
            parse_platform("jetson-xavier").unwrap().name,
            parse_platform("jetson").unwrap().name
        );
        assert!(!parse_platform("rpi").unwrap().has_gpu());
        assert!(parse_platform("apple").unwrap().is_integrated());
        assert!(parse_platform("gameboy").is_err());
    }

    #[test]
    fn precision_flag_overlays_any_config() {
        assert_eq!(parse_precision("INT8").unwrap(), Precision::Int8);
        assert_eq!(parse_precision("fp32").unwrap(), Precision::F32);
        assert!(parse_precision("fp16").is_err());
        let o = opts(&["--config", "cpu-only", "--precision", "int8"]);
        let config = resolve_config(&o).unwrap();
        assert_eq!(config.precision, Precision::Int8);
        assert_eq!(
            resolve_config(&opts(&[])).unwrap().precision,
            Precision::F32,
            "precision defaults to f32"
        );
    }

    #[test]
    fn config_names_resolve() {
        use edgenn_core::plan::{HybridMode, TuneObjective};
        assert_eq!(
            parse_config("edgenn").unwrap().hybrid,
            HybridMode::InterAndIntra
        );
        assert_eq!(
            parse_config("baseline").unwrap().hybrid,
            HybridMode::GpuOnly
        );
        assert_eq!(
            parse_config("energy").unwrap().objective,
            TuneObjective::Energy
        );
        assert!(parse_config("warp-speed").is_err());
    }
}
