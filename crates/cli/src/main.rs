//! `edgenn` — command-line front end for the EdgeNN reproduction.
//!
//! ```text
//! edgenn simulate --model alexnet --platform jetson [--config edgenn]
//!                 [--scale paper|tiny] [--json] [--layers]
//!                 [--faults SPEC|SEED] [--max-retries N] [--deadline-us F]
//!                 [--trace-out FILE] [--metrics-out FILE]
//! edgenn explain  --model alexnet --platform jetson [--config edgenn]
//! edgenn plan     --model alexnet --platform jetson [--config edgenn]
//! edgenn compare  --model alexnet --platform jetson
//!                 [--trace-out FILE] [--metrics-out FILE]
//! edgenn storm    [--model all] [--platform jetson] [--seed 42] [--runs 100]
//! edgenn serve    [--seed 42] [--duration-ms 1000] [--check] [--json]
//! edgenn siege    [--seed 42] [--duration-us 60000] [--no-faults] [--json]
//! edgenn models
//! edgenn platforms
//! ```

mod args;

use std::process::ExitCode;
use std::sync::Arc;

use args::{parse_model, parse_platform, Options};
use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_nn::graph::{compile, CompileOptions, CompileReport};
use edgenn_nn::models::{build, ModelScale};
use edgenn_obs::{EventSink, Labels, ProfileSummary, Recorder, SinkEvent};
use edgenn_sim::trace::to_chrome_trace_with_counters;
use edgenn_sim::Platform;

const USAGE: &str = "\
edgenn — EdgeNN (ICDE 2023) reproduction CLI

USAGE:
    edgenn simulate  --model M --platform P [--config C] [--scale paper|tiny]
                     [--json] [--layers] [--trace-out FILE] [--metrics-out FILE]
                     [--faults SPEC|SEED] [--max-retries N] [--deadline-us F]
    edgenn explain   --model M --platform P [--config C] [--json]
    edgenn plan      --model M --platform P [--config C] [--explain]
    edgenn compare   --model M --platform P [--trace-out FILE] [--metrics-out FILE]
    edgenn check     --model M --platform P [--config C] [--scale paper|tiny]
                     [--json] [--lenient]
    edgenn compile   --model M [--platform P] [--config C] [--scale paper|tiny]
                     [--json] [--dump] [--out FILE] [--prepack|--no-prepack]
    edgenn analyze   --model M --platform P [--config C] [--scale paper|tiny]
                     [--json] [--functional]
    edgenn profile   <model> --platform P [--config C] [--scale paper|tiny]
                     [--runs N] [--json] [--perfetto FILE]
    edgenn storm     [--model M|all] [--platform P] [--config C] [--seed N]
                     [--runs N] [--max-retries N] [--deadline-us F]
                     [--replay-seed N] [--inject-failure I]
                     [--json] [--out FILE]
    edgenn serve     [--seed N] [--duration-ms N] [--platform P]
                     [--queue-capacity N] [--max-batch N] [--max-delay-us F]
                     [--check] [--json] [--out FILE]
    edgenn siege     [--seed N] [--duration-us F] [--platform P]
                     [--queue-capacity N] [--max-batch N] [--max-delay-us F]
                     [--no-faults] [--max-retries N] [--json] [--out FILE]
    edgenn inspect   --model M [--scale paper|tiny]
    edgenn models
    edgenn platforms

MODELS:     fcnn lenet alexnet vgg squeezenet resnet
PLATFORMS:  jetson (jetson-xavier) rpi phone server apu apple
CONFIGS:    edgenn baseline cpu-only memory-only hybrid-only inter-only energy

COMPILATION:
    Every command taking [--model M] first runs the graph compiler
    (identity elimination, activation fusion, constant folding,
    slice/concat cancellation, DCE, fixpoint) so the tuner plans over the
    optimized DAG; pass --no-compile to work on the raw builder graph.
    Weight prepacking into GEMM panel layouts happens at tiny scale
    (where the functional engine actually runs); paper-scale weights stay
    lazy/analytic unless --prepack forces packing.

COMPILE:
    Runs the compiler alone, prints per-pass node/edge deltas, and
    re-verifies the rewrite: EC06x rewrite-legality codes (interface
    preserved, fused-node partial-range contract, no orphans, report
    consistency) plus the full tier-A graph check; with --platform, the
    tier-B profile/plan checks run on the compiled graph too.
    --dump      also print the compiled graph's layer table
    --json      machine-readable report (passes, deltas, diagnostics)
    --out FILE  write the JSON report to FILE (used by ci.sh archiving)
    Exit status is non-zero when any error-severity diagnostic fires.

PRECISION:
    Every command taking [--config C] also takes [--precision f32|int8]
    (default f32). int8 runs the quantized conv/dense kernels (per-channel
    symmetric weights, per-tensor affine activations, requantize epilogue)
    inside the functional engine and sizes footprint and tier-D certified
    bounds with the int8 sidecar; activations between nodes stay f32.

OBSERVABILITY:
    --trace-out FILE    Perfetto/chrome://tracing trace with counter tracks
                        (bandwidth, outstanding managed pages, EMA evolution)
    --metrics-out FILE  JSON metrics snapshot (counters, gauges, p50/p95/p99
                        latency histograms from a serving run)

CHECK:
    Runs the edgenn-check static verifier: graph dataflow (tier A), plan
    legality on the target platform (tier B), then a simulated trace through
    the happens-before race detector plus report accounting (tier C).
    Diagnostics carry stable EC0xx codes (see docs/diagnostics.md).
    --json      machine-readable report instead of the table
    --lenient   downgrade the accounting codes EC030/EC031 to warnings
                (plotting pipelines that accept a clamped copy proportion)
    Exit status is non-zero when any error-severity diagnostic fires.

ANALYZE:
    Runs the edgenn-check tier-D ownership/liveness analyzer: the plan is
    lowered into the exact slot/arena operation schedule the functional
    engine would execute, abstract-interpreted against the zero-copy
    contract (EC050-EC059, see docs/diagnostics.md), and a certified
    peak-memory bound is derived and checked against the platform's DRAM.
    The worker-pool schedule explorer then exhaustively enumerates every
    queue/steal/reclaim interleaving of a scenario matrix (CHESS-style
    bounded preemptions), asserting the pool contract on each.
    --json        machine-readable report (liveness table, bound, explorer)
    --functional  also execute the model through the real functional
                  engine and gate measured slot/arena bytes against the
                  certified bound (measured must never exceed certified)
    Exit status is non-zero on any EC05x error, explorer violation, or
    measured-exceeds-certified conformance failure.

FAULTS:
    --faults takes either a bare integer (a seed for a reproducible random
    fault plan) or a spec of semicolon-separated clauses:
        kernel:<node>x<count>         kernel failures before success (or inf)
        bw:<start>-<end>@<factor>     bandwidth degradation window, factor (0,1)
        thermal:<start>-<end>@<factor> thermal throttle window, factor (0,1)
        stall:<start>-<end>@<factor>  page-migration stalls, factor > 1
        oom:<fraction>                co-tenant DRAM pressure in [0,1)
    Example: --faults 'kernel:3xinf;bw:0-500@0.5;oom:0.8'
    --max-retries N    per-node retry budget before CPU fallback (default 3)
    --deadline-us F    latency budget; overruns degrade the hybrid plan to a
                       single processor mid-run

PROFILE:
    Runs the model through the real functional engine with the always-on
    flight recorder enabled, keeps the fastest of --runs (default 3)
    measured requests, and verifies the recorded spans through the tier-C
    checker (occupancy, causal ordering) before reporting. Prints per-stage
    p50/p99 (node, pack, compute, merge, queue wait) and a per-node
    predicted-vs-measured table against the analytic simulation. Defaults
    to --scale tiny: the functional engine runs on the host CPU, so
    measured times characterize engine behaviour, not target latency.
    --runs N          measured requests after one warm-up (default 3)
    --json            machine-readable profile instead of the tables
    --perfetto FILE   one Chrome trace with the simulated timeline (pid 1)
                      next to the measured flight recording (pid 3)

STORM:
    Monte-Carlo resilience sweep: per run, a seeded random fault plan is
    injected into the analytic simulation (recovery log gated by the EC04x
    checker) and into a functional execution whose output must stay bitwise
    identical to the fault-free reference. Reports survival rate and p99
    degraded latency per model; exit status is non-zero below 100% survival.
    Every failing or deadline-degraded round's seed is archived in the JSON
    summary (failed_seeds / degraded_seeds) so any round is reproducible.
    --out FILE         also writes the JSON summary to FILE
    --replay-seed N    re-run exactly one round with seed N, verbosely
                       (paste a seed from failed_seeds to debug it)
    --inject-failure I force round index I to fail (tests the seed
                       archiving path end to end)

SERVE / SIEGE:
    The multi-tenant serving front-end (edgenn-serve): per-tenant
    token-bucket admission with in-flight caps, a bounded ingress queue,
    weighted-fair dynamic batching into Executor::batch_execute, and an
    SLO guard that degrades hybrid -> single-processor -> int8 before it
    sheds. Every decision is a typed event in the admission log
    (docs/serving.md).
    serve  runs the real-time loop against the wall clock for
           --duration-ms; --check replays the log through the EC07x
           admission-log checker afterwards.
    siege  is the deterministic gate: a seeded closed+open-loop load
           generator in virtual time with the PR 4 fault injector armed
           (disable with --no-faults). Formed batches execute for real
           and must reproduce the fault-free reference bitwise; the
           admission log always replays through the EC07x checker. Exit
           status is non-zero if any admitted request is lost, any output
           diverges, the queue bound breaks, or the checker objects.
    Both write the shared JSON report (tenant tails, survival, shed rate,
    fairness spread, checker verdict) with --json / --out FILE.";

fn main() -> ExitCode {
    let options = Options::parse(std::env::args().skip(1));
    let result = match options.positional(0) {
        Some("simulate") => cmd_simulate(&options),
        Some("explain") => cmd_explain(&options),
        Some("plan") => cmd_plan(&options),
        Some("compare") => cmd_compare(&options),
        Some("check") => cmd_check(&options),
        Some("compile") => cmd_compile(&options),
        Some("analyze") => cmd_analyze(&options),
        Some("profile") => cmd_profile(&options),
        Some("storm") => cmd_storm(&options),
        Some("serve") => cmd_serve(&options),
        Some("siege") => cmd_siege(&options),
        Some("inspect") => cmd_inspect(&options),
        Some("models") => cmd_models(),
        Some("platforms") => {
            cmd_platforms();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// Output sinks requested on the command line (`--trace-out` /
/// `--metrics-out`; `--trace` is kept as an alias of `--trace-out`).
struct ObsOutputs<'o> {
    trace_out: Option<&'o str>,
    metrics_out: Option<&'o str>,
    recorder: Option<Recorder>,
}

impl<'o> ObsOutputs<'o> {
    fn from_options(
        options: &'o Options,
        graph_name: &str,
        platform: &Platform,
    ) -> Result<Self, String> {
        for key in ["trace-out", "trace", "metrics-out"] {
            if options.has(key) && options.value(key).is_none() {
                return Err(format!("--{key} requires a file path"));
            }
        }
        let trace_out = options
            .value("trace-out")
            .or_else(|| options.value("trace"));
        let metrics_out = options.value("metrics-out");
        let recorder = (trace_out.is_some() || metrics_out.is_some()).then(|| {
            Recorder::with_labels(
                Labels::new()
                    .with("model", graph_name)
                    .with("platform", &platform.name)
                    .with("policy", options.value("config").unwrap_or("edgenn")),
            )
        });
        Ok(Self {
            trace_out,
            metrics_out,
            recorder,
        })
    }

    fn wanted(&self) -> bool {
        self.recorder.is_some()
    }

    fn runtime<'a>(&self, platform: &'a Platform) -> Runtime<'a> {
        match &self.recorder {
            Some(rec) => Runtime::with_observer(platform, Arc::new(rec.clone())),
            None => Runtime::new(platform),
        }
    }

    fn write_trace(&self, events: &[edgenn_sim::TraceEvent]) -> Result<(), String> {
        let Some(path) = self.trace_out else {
            return Ok(());
        };
        let extra = self
            .recorder
            .as_ref()
            .map(edgenn_obs::Recorder::counter_samples)
            .unwrap_or_default();
        std::fs::write(path, to_chrome_trace_with_counters(events, &extra))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("chrome trace written to {path} (load in Perfetto or chrome://tracing)");
        Ok(())
    }

    fn write_metrics(&self) -> Result<(), String> {
        let Some(path) = self.metrics_out else {
            return Ok(());
        };
        let rec = self
            .recorder
            .as_ref()
            .expect("metrics-out implies a recorder");
        let json =
            serde_json::to_string_pretty(&rec.metrics().to_json()).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        for warning in rec.warnings() {
            eprintln!("warning: {warning}");
        }
        eprintln!("metrics snapshot written to {path}");
        Ok(())
    }
}

/// A model ready to run: built at the requested scale and, unless
/// `--no-compile` was passed, optimized by the graph compiler (the
/// tuner then plans over the rewritten DAG). `report` is `None` only
/// for raw graphs.
struct LoadedModel {
    graph: edgenn_nn::graph::Graph,
    report: Option<CompileReport>,
}

fn parse_scale(options: &Options, default: &str) -> Result<ModelScale, String> {
    match options.value("scale").unwrap_or(default) {
        "paper" => Ok(ModelScale::Paper),
        "tiny" => Ok(ModelScale::Tiny),
        other => Err(format!("unknown scale '{other}' (expected paper|tiny)")),
    }
}

/// Compiler options for one invocation. Prepacking materializes weights,
/// and paper-scale graphs are analytic-only (their weights are lazy by
/// design), so packing defaults on at tiny scale — where the functional
/// engine actually executes — and off at paper scale; `--prepack` /
/// `--no-prepack` override. `--precision int8` also packs the quantized
/// sidecar.
fn compile_options(options: &Options, scale: ModelScale) -> Result<CompileOptions, String> {
    let int8 = match options.value("precision") {
        Some(name) => args::parse_precision(name)? == edgenn_core::plan::Precision::Int8,
        None => false,
    };
    let mut copts = if int8 {
        CompileOptions::int8()
    } else {
        CompileOptions::default()
    };
    let prepack = if options.has("prepack") {
        true
    } else if options.has("no-prepack") {
        false
    } else {
        scale == ModelScale::Tiny
    };
    if !prepack {
        copts.prepack_f32 = false;
        copts.prepack_int8 = false;
    }
    Ok(copts)
}

/// Compiles `raw` (honoring `--no-compile`) and refuses to hand out a
/// graph whose rewrite fails the EC06x legality checks.
fn compile_loaded(
    options: &Options,
    scale: ModelScale,
    raw: edgenn_nn::graph::Graph,
) -> Result<LoadedModel, String> {
    if options.has("no-compile") {
        return Ok(LoadedModel {
            graph: raw,
            report: None,
        });
    }
    let copts = compile_options(options, scale)?;
    let (graph, report) = compile(&raw, &copts).map_err(|e| format!("compile: {e}"))?;
    let diags = edgenn_check::check_compiled(&raw, &graph, &report);
    if !diags.is_empty() {
        let mut msg = format!(
            "graph compiler produced an illegal rewrite of {} ({} finding(s)):\n",
            raw.name(),
            diags.len()
        );
        for d in &diags {
            msg.push_str(&format!("  {d}\n"));
        }
        return Err(msg);
    }
    Ok(LoadedModel {
        graph,
        report: Some(report),
    })
}

fn required_graph(options: &Options) -> Result<LoadedModel, String> {
    let model = parse_model(options.value("model").ok_or("--model is required")?)?;
    let scale = parse_scale(options, "paper")?;
    compile_loaded(options, scale, build(model, scale))
}

/// Mirrors a compile report into the recorder as `CompilerPass` events
/// (one per pass, aggregated across fixpoint iterations, plus one for
/// the prepack stage), so compiler work shows up in exported metrics
/// next to the engine counters.
fn emit_compiler_events(rec: &Recorder, report: &CompileReport) {
    let mut totals: Vec<(&'static str, u64, u64)> = Vec::new();
    for p in &report.passes {
        let eliminated = p.nodes_before.saturating_sub(p.nodes_after) as u64;
        match totals.iter_mut().find(|(name, _, _)| *name == p.pass) {
            Some((_, applied, nodes)) => {
                *applied += p.rewrites as u64;
                *nodes += eliminated;
            }
            None => totals.push((p.pass, p.rewrites as u64, eliminated)),
        }
    }
    for (pass, applied, nodes_eliminated) in totals {
        rec.emit(SinkEvent::CompilerPass {
            pass,
            applied,
            nodes_eliminated,
            bytes_prepacked: 0,
        });
    }
    if report.prepacked_nodes > 0 {
        rec.emit(SinkEvent::CompilerPass {
            pass: "prepack",
            applied: report.prepacked_nodes as u64,
            nodes_eliminated: 0,
            bytes_prepacked: report.prepacked_bytes,
        });
    }
}

fn cmd_simulate(options: &Options) -> Result<(), String> {
    let LoadedModel {
        graph,
        report: compile_report,
    } = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = args::resolve_config(options)?;

    let obs = ObsOutputs::from_options(options, graph.name(), &platform)?;
    if let (Some(rec), Some(report)) = (&obs.recorder, &compile_report) {
        emit_compiler_events(rec, report);
    }
    let runtime = obs.runtime(&platform);
    let mut tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = if obs.wanted() {
        // Run the adaptive loop so the EMA counter tracks and the plan
        // regeneration markers appear in the exported trace.
        let (plan, _) = tuner
            .adapt(&graph, &runtime, config, 3, 0.05)
            .map_err(|e| e.to_string())?;
        plan
    } else {
        tuner
            .plan(&graph, &runtime, config)
            .map_err(|e| e.to_string())?
    };
    let decisions = tuner
        .explain(&graph, &runtime, &plan)
        .map_err(|e| e.to_string())?;

    if options.has("faults") {
        let spec = options
            .value("faults")
            .ok_or("--faults requires a seed or a fault spec")?;
        let faults = parse_faults(spec, graph.len())?;
        let rcfg = resilience_config(options)?;
        let outcome = runtime
            .simulate_with_faults(&graph, &plan, &faults, &rcfg)
            .map_err(|e| e.to_string())?;
        let report = outcome.report.with_decisions(decisions);
        obs.write_trace(&report.events)?;
        obs.write_metrics()?;
        if options.has("json") {
            let mut m = serde_json::Map::new();
            m.insert(
                "report",
                serde_json::to_value(&report).map_err(|e| e.to_string())?,
            );
            m.insert(
                "recovery",
                serde_json::to_value(&outcome.recovery).map_err(|e| e.to_string())?,
            );
            println!(
                "{}",
                serde_json::to_string_pretty(&serde_json::Value::Object(m))
                    .map_err(|e| e.to_string())?
            );
            return Ok(());
        }
        println!(
            "{} on {} under fault injection ({})",
            report.model,
            report.platform,
            faults.describe()
        );
        println!(
            "  latency      : {:.3} ms (degraded)",
            report.total_us / 1e3
        );
        let rec = &outcome.recovery;
        println!("  injected     : {} fault(s)", rec.faults_injected);
        println!(
            "  recovery     : {} retrie(s), {} fallback(s), {} deadline degradation(s)",
            rec.retries, rec.fallbacks, rec.deadline_degradations
        );
        if rec.gpu_lost {
            println!("  gpu          : lost (permanent kernel fault; suffix fell back to CPU)");
        }
        for event in &rec.events {
            println!(
                "    t={:>9.1} us  n{:<3} {:?} -> {:?} (attempt {})",
                event.t_us, event.node, event.cause, event.action, event.attempt
            );
        }
        return Ok(());
    }

    let report = runtime
        .simulate(&graph, &plan)
        .map_err(|e| e.to_string())?
        .with_decisions(decisions);

    obs.write_trace(&report.events)?;
    if obs.metrics_out.is_some() {
        // A short serving run feeds the request-latency histogram so the
        // snapshot carries meaningful p50/p95/p99.
        runtime
            .simulate_stream(&graph, &plan, 32)
            .map_err(|e| e.to_string())?;
    }
    obs.write_metrics()?;

    if options.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!("{} on {}", report.model, report.platform);
    println!("  latency      : {:.3} ms", report.total_us / 1e3);
    println!("  avg power    : {:.2} W", report.energy.avg_power_w);
    println!(
        "  energy       : {:.3} mJ/inference",
        report.energy.energy_mj
    );
    println!(
        "  utilization  : CPU {:.0}% / GPU {:.0}%",
        report.energy.cpu_utilization * 100.0,
        report.energy.gpu_utilization * 100.0
    );
    println!(
        "  breakdown    : kernel {:.0} us, copies {:.0} us, migrations {:.0} us, \
         thrash {:.0} us, sync {:.0} us",
        report.summary.kernel_us,
        report.summary.copy_us,
        report.summary.migration_us,
        report.summary.thrash_us,
        report.summary.sync_us
    );
    println!(
        "  plan         : {} co-run layers, {} zero-copy arrays",
        plan.corun_count(),
        plan.managed_count()
    );
    let footprint = edgenn_core::footprint::footprint(&graph, &plan).map_err(|e| e.to_string())?;
    println!(
        "  memory       : {:.1} MiB peak ({:.1} MiB weights + {:.1} MiB activations)",
        footprint.peak_mib(),
        footprint.weight_bytes as f64 / (1 << 20) as f64,
        footprint.peak_activation_bytes as f64 / (1 << 20) as f64
    );
    if options.has("layers") {
        println!(
            "\n  {:<22} {:>12} {:>10} {:>10}  assignment",
            "layer", "start us", "kernel", "memory"
        );
        for layer in &report.layers {
            println!(
                "  {:<22} {:>12.1} {:>10.1} {:>10.1}  {:?}",
                layer.name, layer.start_us, layer.kernel_us, layer.memory_us, layer.assignment
            );
        }
    }
    Ok(())
}

/// Compact rendering of an assignment for the decision tables.
fn assignment_cell(assignment: &edgenn_core::plan::Assignment) -> String {
    use edgenn_core::plan::Assignment;
    match assignment {
        Assignment::Cpu => "cpu".to_string(),
        Assignment::Gpu => "gpu".to_string(),
        Assignment::Split { cpu_fraction } => {
            format!("split {:.0}%c", cpu_fraction * 100.0)
        }
        Assignment::SplitInput { cpu_fraction } => {
            format!("split-in {:.0}%c", cpu_fraction * 100.0)
        }
    }
}

fn cmd_explain(options: &Options) -> Result<(), String> {
    let LoadedModel {
        graph,
        report: compile_report,
    } = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = args::resolve_config(options)?;

    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;
    let report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;
    let rows = tuner
        .explain(&graph, &runtime, &plan)
        .map_err(|e| e.to_string())?;

    if options.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    // Simulated per-layer wall time, keyed by node id.
    let mut simulated = vec![f64::NAN; graph.len()];
    for layer in &report.layers {
        simulated[layer.node] = layer.total_us();
    }

    println!(
        "{} on {} — per-layer tuner decisions",
        graph.name(),
        platform.name
    );
    println!(
        "{:<22} {:<6} {:<13} {:>11} {:>11} {:<9}  rationale",
        "layer", "class", "assignment", "predicted", "simulated", "memory"
    );
    for row in &rows {
        let sim = simulated
            .get(row.node)
            .copied()
            .filter(|t| t.is_finite())
            .map_or_else(|| "—".to_string(), |t| format!("{t:.1}"));
        println!(
            "{:<22} {:<6} {:<13} {:>11.1} {:>11} {:<9}  {}",
            row.name,
            row.class,
            assignment_cell(&row.assignment),
            row.predicted_us,
            sim,
            row.output_alloc.to_string(),
            row.rationale
        );
    }
    println!(
        "\ntotal: predicted {:.1} us over {} layers, simulated end-to-end {:.1} us",
        rows.iter().map(|r| r.predicted_us).sum::<f64>(),
        rows.len(),
        report.total_us
    );
    if let Some(c) = &compile_report {
        println!(
            "compiler: {} -> {} nodes ({} pass rewrite(s) over {} iteration(s), \
             {} node(s) / {} byte(s) prepacked)",
            c.nodes_pre,
            c.nodes_post,
            c.passes.iter().map(|p| p.rewrites).sum::<usize>(),
            c.iterations,
            c.prepacked_nodes,
            c.prepacked_bytes
        );
    }
    Ok(())
}

fn cmd_plan(options: &Options) -> Result<(), String> {
    let LoadedModel { graph, .. } = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = args::resolve_config(options)?;
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;
    if options.has("explain") {
        let rows = tuner
            .explain(&graph, &runtime, &plan)
            .map_err(|e| e.to_string())?;
        println!(
            "{:<24} {:<8} {:>12} {:>12}  decision",
            "layer", "class", "t_cpu us", "t_gpu us"
        );
        for row in rows {
            println!(
                "{:<24} {:<8} {:>12.1} {:>12.1}  {} / {}",
                row.name,
                row.class,
                row.t_cpu_us,
                row.t_gpu_us,
                assignment_cell(&row.assignment),
                row.output_alloc
            );
        }
        return Ok(());
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&plan).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_compare(options: &Options) -> Result<(), String> {
    let LoadedModel { graph, .. } = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let obs = ObsOutputs::from_options(options, graph.name(), &platform)?;
    let runtime = obs.runtime(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;

    let configs: &[(&str, ExecutionConfig)] = &[
        ("baseline (gpu, explicit)", ExecutionConfig::baseline_gpu()),
        ("memory-only (zero-copy)", ExecutionConfig::memory_only()),
        ("hybrid-only (explicit)", ExecutionConfig::hybrid_only()),
        ("inter-kernel only", ExecutionConfig::inter_kernel_only()),
        ("edgenn", ExecutionConfig::edgenn()),
        (
            "edgenn (energy-aware)",
            ExecutionConfig::edgenn_energy_aware(),
        ),
        ("cpu-only", ExecutionConfig::cpu_only()),
    ];

    println!("{} on {}", graph.name(), platform.name);
    println!(
        "{:<26} {:>12} {:>10} {:>12}",
        "config", "latency ms", "power W", "energy mJ"
    );
    let mut baseline_us = None;
    let mut traced_events: Option<Vec<edgenn_sim::TraceEvent>> = None;
    for (name, config) in configs {
        if !platform.has_gpu() && *name != "cpu-only" {
            continue;
        }
        let plan = tuner
            .plan(&graph, &runtime, *config)
            .map_err(|e| e.to_string())?;
        let report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;
        // Trace the headline edgenn run (or the first run when edgenn
        // never executes, e.g. on CPU-only platforms).
        if traced_events.is_none() || *name == "edgenn" {
            traced_events = Some(report.events.clone());
        }
        let delta = match baseline_us {
            None => {
                baseline_us = Some(report.total_us);
                String::new()
            }
            Some(base) => format!(
                "  ({:+.1}% vs baseline)",
                (report.total_us - base) / base * 100.0
            ),
        };
        println!(
            "{:<26} {:>12.3} {:>10.2} {:>12.3}{delta}",
            name,
            report.total_us / 1e3,
            report.energy.avg_power_w,
            report.energy.energy_mj
        );
    }
    if let Some(events) = &traced_events {
        obs.write_trace(events)?;
    }
    obs.write_metrics()?;
    Ok(())
}

fn cmd_check(options: &Options) -> Result<(), String> {
    let LoadedModel { graph, .. } = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = args::resolve_config(options)?;

    let mut report = edgenn_check::CheckReport::default();

    // Tier A: the graph itself.
    report.extend(edgenn_check::check_graph(&graph));

    // Tier B: the profile the tuner plans from, then the plan it emits.
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    report.extend(edgenn_check::check_profile(tuner.stats()));
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;
    report.extend(edgenn_check::check_plan(&graph, &plan, &platform));

    // Tier C: one simulated inference, its trace through the
    // happens-before detector, and the report's accounting invariants.
    let sim_report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;
    report.extend(edgenn_check::check_trace_events(
        &sim_report.events,
        &platform,
    ));
    report.extend(edgenn_check::check_report(&sim_report));

    if options.has("lenient") {
        report.downgrade_accounting();
    }

    if options.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.render_table());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "check failed: {} error(s) on {} x {}",
            report.error_count(),
            graph.name(),
            platform.name
        ))
    }
}

fn cmd_compile(options: &Options) -> Result<(), String> {
    let model = parse_model(options.value("model").ok_or("--model is required")?)?;
    let scale = parse_scale(options, "paper")?;
    let raw = build(model, scale);
    let copts = compile_options(options, scale)?;
    let (compiled, report) = compile(&raw, &copts).map_err(|e| format!("compile: {e}"))?;

    // Re-verify the rewrite: EC06x legality, then the full tier-A graph
    // check on the result.
    let mut check = edgenn_check::CheckReport::default();
    check.extend(edgenn_check::check_compiled(&raw, &compiled, &report));
    check.extend(edgenn_check::check_graph(&compiled));

    // With a platform, the compiled graph must also plan cleanly (tier B).
    let platform = match options.value("platform") {
        Some(name) => Some(parse_platform(name)?),
        None => None,
    };
    if let Some(p) = &platform {
        let config = args::resolve_config(options)?;
        let runtime = Runtime::new(p);
        let tuner = Tuner::new(&compiled, &runtime).map_err(|e| e.to_string())?;
        check.extend(edgenn_check::check_profile(tuner.stats()));
        let plan = tuner
            .plan(&compiled, &runtime, config)
            .map_err(|e| e.to_string())?;
        check.extend(edgenn_check::check_plan(&compiled, &plan, p));
    }

    if options.has("json") || options.value("out").is_some() {
        let mut m = serde_json::Map::new();
        m.insert("model", serde_json::Value::from(raw.name()));
        m.insert(
            "platform",
            platform.as_ref().map_or(serde_json::Value::Null, |p| {
                serde_json::Value::from(p.name.as_str())
            }),
        );
        m.insert(
            "scale",
            serde_json::Value::from(options.value("scale").unwrap_or("paper")),
        );
        m.insert(
            "nodes_pre",
            serde_json::Value::from(report.nodes_pre as u64),
        );
        m.insert(
            "nodes_post",
            serde_json::Value::from(report.nodes_post as u64),
        );
        m.insert(
            "edges_pre",
            serde_json::Value::from(report.edges_pre as u64),
        );
        m.insert(
            "edges_post",
            serde_json::Value::from(report.edges_post as u64),
        );
        m.insert(
            "iterations",
            serde_json::Value::from(report.iterations as u64),
        );
        m.insert(
            "prepacked_bytes",
            serde_json::Value::from(report.prepacked_bytes),
        );
        m.insert(
            "prepacked_nodes",
            serde_json::Value::from(report.prepacked_nodes as u64),
        );
        let passes = report
            .passes
            .iter()
            .map(|p| {
                let mut row = serde_json::Map::new();
                row.insert("pass", serde_json::Value::from(p.pass));
                row.insert("iteration", serde_json::Value::from(p.iteration as u64));
                row.insert(
                    "nodes_before",
                    serde_json::Value::from(p.nodes_before as u64),
                );
                row.insert("nodes_after", serde_json::Value::from(p.nodes_after as u64));
                row.insert(
                    "edges_before",
                    serde_json::Value::from(p.edges_before as u64),
                );
                row.insert("edges_after", serde_json::Value::from(p.edges_after as u64));
                row.insert("rewrites", serde_json::Value::from(p.rewrites as u64));
                serde_json::Value::Object(row)
            })
            .collect::<Vec<_>>();
        m.insert("passes", serde_json::Value::Array(passes));
        m.insert("check", check.to_json());
        m.insert("clean", serde_json::Value::from(check.is_clean()));
        let text = serde_json::to_string_pretty(&serde_json::Value::Object(m))
            .map_err(|e| e.to_string())?;
        if let Some(path) = options.value("out") {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            if !options.has("json") {
                eprintln!("compile report written to {path}");
            }
        }
        if options.has("json") {
            println!("{text}");
        }
    } else {
        println!(
            "{} ({}) — compiled in {} iteration(s): {} -> {} nodes, {} -> {} edges",
            raw.name(),
            options.value("scale").unwrap_or("paper"),
            report.iterations,
            report.nodes_pre,
            report.nodes_post,
            report.edges_pre,
            report.edges_post
        );
        println!(
            "{:<18} {:>5} {:>12} {:>12} {:>9}",
            "pass", "iter", "nodes", "edges", "rewrites"
        );
        for p in &report.passes {
            println!(
                "{:<18} {:>5} {:>5} -> {:<4} {:>5} -> {:<4} {:>9}",
                p.pass,
                p.iteration,
                p.nodes_before,
                p.nodes_after,
                p.edges_before,
                p.edges_after,
                p.rewrites
            );
        }
        println!(
            "prepack: {} node(s), {} byte(s) packed into kernel layouts",
            report.prepacked_nodes, report.prepacked_bytes
        );
        if !check.diagnostics.is_empty() {
            print!("{}", check.render_table());
        }
        if options.has("dump") {
            print!("\n{}", compiled.summary());
        }
    }

    if check.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "compile verification failed: {} error(s) on {}",
            check.error_count(),
            raw.name()
        ))
    }
}

fn cmd_analyze(options: &Options) -> Result<(), String> {
    use edgenn_core::runtime::sched_explore;

    let LoadedModel { graph, .. } = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = args::resolve_config(options)?;

    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;

    // Tier D: static ownership/liveness over the lowered schedule.
    let report = edgenn_check::check_ownership(&graph, &plan, &platform);

    // Pool schedule explorer: every interleaving of the scenario matrix.
    let matrix = sched_explore::default_matrix();
    let mut interleavings = 0u64;
    let mut states = 0u64;
    let mut explorer_violations: Vec<String> = Vec::new();
    for cfg in &matrix {
        let result = sched_explore::explore(cfg);
        interleavings += result.interleavings;
        states += result.states;
        if !result.is_clean() {
            explorer_violations.push(format!("{cfg:?}: {:?}", result.violations));
        }
    }

    // Optional conformance gate: the real engine's measured high-water
    // marks must stay under the certified bound.
    let functional = if options.has("functional") {
        let input = edgenn_tensor::Tensor::random(graph.input_shape().dims(), 1.0, 7);
        let outcome = edgenn_core::runtime::functional::execute(&graph, &plan, &input)
            .map_err(|e| e.to_string())?;
        let measured_slot = outcome.engine.slot_bytes;
        let measured_arena = outcome.engine.arena_fresh_bytes;
        let conforms =
            measured_slot <= report.bound.slot_bytes && measured_arena <= report.bound.arena_bytes;
        Some((measured_slot, measured_arena, conforms))
    } else {
        None
    };

    let explorer_clean = explorer_violations.is_empty();
    let measured_conforms = functional.is_none_or(|(_, _, ok)| ok);

    if options.has("json") {
        let mut m = serde_json::Map::new();
        m.insert("model", serde_json::Value::from(graph.name()));
        m.insert("platform", serde_json::Value::from(platform.name.as_str()));
        m.insert(
            "config",
            serde_json::Value::from(options.value("config").unwrap_or("edgenn")),
        );
        m.insert(
            "scale",
            serde_json::Value::from(options.value("scale").unwrap_or("paper")),
        );
        m.insert(
            "ownership",
            serde_json::to_value(&report).map_err(|e| e.to_string())?,
        );
        m.insert("clean", serde_json::Value::from(report.is_clean()));
        let mut ex = serde_json::Map::new();
        ex.insert("scenarios", serde_json::Value::from(matrix.len() as u64));
        ex.insert("interleavings", serde_json::Value::from(interleavings));
        ex.insert("states", serde_json::Value::from(states));
        ex.insert(
            "violations",
            serde_json::to_value(&explorer_violations).map_err(|e| e.to_string())?,
        );
        ex.insert("clean", serde_json::Value::from(explorer_clean));
        m.insert("explorer", serde_json::Value::Object(ex));
        if let Some((slot, arena, conforms)) = functional {
            let mut f = serde_json::Map::new();
            f.insert("measured_slot_bytes", serde_json::Value::from(slot));
            f.insert("measured_arena_fresh_bytes", serde_json::Value::from(arena));
            f.insert(
                "certified_slot_bytes",
                serde_json::Value::from(report.bound.slot_bytes),
            );
            f.insert(
                "certified_arena_bytes",
                serde_json::Value::from(report.bound.arena_bytes),
            );
            f.insert("conforms", serde_json::Value::from(conforms));
            m.insert("functional", serde_json::Value::Object(f));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Object(m))
                .map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{} on {} — tier-D ownership/liveness analysis ({} abstract ops)",
            graph.name(),
            platform.name,
            report.ops
        );
        print!("{}", report.render_table(&graph));
        let margin = platform.dram_bytes.saturating_sub(report.bound.total_bytes);
        println!(
            "dram margin   : {:.1} MiB of {:.1} MiB free under the certified bound",
            margin as f64 / (1 << 20) as f64,
            platform.dram_bytes as f64 / (1 << 20) as f64
        );
        for d in &report.diagnostics {
            println!("  {d}");
        }
        println!(
            "pool explorer : {} scenario(s), {} interleaving(s), {} state(s): {}",
            matrix.len(),
            interleavings,
            states,
            if explorer_clean {
                "all invariants hold".to_string()
            } else {
                format!("{} violation(s)", explorer_violations.len())
            }
        );
        for v in &explorer_violations {
            println!("  {v}");
        }
        if let Some((slot, arena, conforms)) = functional {
            println!(
                "functional    : measured slots {} / certified {}, measured arena {} / \
                 certified {} — {}",
                slot,
                report.bound.slot_bytes,
                arena,
                report.bound.arena_bytes,
                if conforms {
                    "measured \u{2264} certified"
                } else {
                    "MEASURED EXCEEDS CERTIFIED"
                }
            );
        }
    }

    if report.is_clean() && explorer_clean && measured_conforms {
        Ok(())
    } else {
        Err(format!(
            "analyze failed on {} x {}: {} EC05x error(s), {} explorer violation(s){}",
            graph.name(),
            platform.name,
            report
                .diagnostics
                .iter()
                .filter(|d| d.severity == edgenn_check::Severity::Error)
                .count(),
            explorer_violations.len(),
            if measured_conforms {
                String::new()
            } else {
                ", measured footprint exceeded the certified bound".to_string()
            }
        ))
    }
}

/// Resolves a `--faults` argument: a bare integer is a seed for a
/// reproducible random plan, anything else goes through the spec
/// grammar (see `FaultPlan::parse`).
fn parse_faults(spec: &str, nodes: usize) -> Result<edgenn_sim::FaultPlan, String> {
    if let Ok(seed) = spec.parse::<u64>() {
        return Ok(edgenn_sim::FaultPlan::from_seed(seed, nodes));
    }
    edgenn_sim::FaultPlan::parse(spec)
}

/// Builds the resilience policy from `--max-retries` / `--deadline-us`.
fn resilience_config(options: &Options) -> Result<ResilienceConfig, String> {
    let mut cfg = ResilienceConfig::default();
    if let Some(v) = options.value("max-retries") {
        cfg.max_retries = v.parse().map_err(|e| format!("--max-retries: {e}"))?;
    }
    if let Some(v) = options.value("deadline-us") {
        cfg.deadline_us = Some(v.parse().map_err(|e| format!("--deadline-us: {e}"))?);
    }
    Ok(cfg)
}

/// One surviving storm round: the degraded analytic latency plus its
/// recovery accounting.
struct StormRun {
    total_us: f64,
    recovery: edgenn_core::runtime::resilience::RecoveryLog,
}

/// Per-model inputs a storm round runs against: the paper-scale graph
/// and plan for the analytic path, and a tiny-scale functional twin
/// with its fault-free reference output for the bitwise-identity gate.
struct StormTarget<'a> {
    graph: &'a edgenn_nn::graph::Graph,
    plan: &'a ExecutionPlan,
    tiny: &'a edgenn_nn::graph::Graph,
    tiny_plan: &'a ExecutionPlan,
    input: &'a edgenn_tensor::Tensor,
    reference: &'a edgenn_tensor::Tensor,
}

/// The owned per-model pieces a storm round borrows (see
/// [`StormTarget`]): paper-scale graph and plan for the analytic path,
/// tiny twin with its fault-free reference for the bitwise gate.
struct StormSetup {
    graph: edgenn_nn::graph::Graph,
    plan: ExecutionPlan,
    clean_us: f64,
    tiny: edgenn_nn::graph::Graph,
    tiny_plan: ExecutionPlan,
    input: edgenn_tensor::Tensor,
    reference: edgenn_tensor::Tensor,
}

impl StormSetup {
    fn target(&self) -> StormTarget<'_> {
        StormTarget {
            graph: &self.graph,
            plan: &self.plan,
            tiny: &self.tiny,
            tiny_plan: &self.tiny_plan,
            input: &self.input,
            reference: &self.reference,
        }
    }
}

/// Plans one model at both scales and computes the fault-free
/// functional reference the storm's bitwise gate compares against.
fn storm_setup(
    kind: ModelKind,
    runtime: &Runtime<'_>,
    config: ExecutionConfig,
    seed: u64,
) -> Result<StormSetup, String> {
    let graph = build(kind, ModelScale::Paper);
    let tuner = Tuner::new(&graph, runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(&graph, runtime, config)
        .map_err(|e| e.to_string())?;
    let clean_us = runtime
        .simulate(&graph, &plan)
        .map_err(|e| e.to_string())?
        .total_us;

    let tiny = build(kind, ModelScale::Tiny);
    let tiny_tuner = Tuner::new(&tiny, runtime).map_err(|e| e.to_string())?;
    let tiny_plan = tiny_tuner
        .plan(&tiny, runtime, config)
        .map_err(|e| e.to_string())?;
    let input = edgenn_tensor::Tensor::random(tiny.input_shape().dims(), 1.0, seed);
    let reference = edgenn_core::runtime::functional::execute(&tiny, &tiny_plan, &input)
        .map_err(|e| e.to_string())?
        .output;
    Ok(StormSetup {
        graph,
        plan,
        clean_us,
        tiny,
        tiny_plan,
        input,
        reference,
    })
}

/// Verbosely re-runs exactly one storm round — the seed usually pasted
/// from a summary's `failed_seeds` — and exits with its outcome.
fn storm_replay(
    kinds: &[ModelKind],
    platform: &Platform,
    runtime: &Runtime<'_>,
    config: ExecutionConfig,
    rcfg: &ResilienceConfig,
    base_seed: u64,
    replay_seed: u64,
) -> Result<(), String> {
    println!(
        "storm replay: seed {replay_seed} on {}, retry budget {}",
        platform.name, rcfg.max_retries
    );
    let mut failures: Vec<String> = Vec::new();
    for kind in kinds {
        let setup = storm_setup(*kind, runtime, config, base_seed)?;
        let target = setup.target();
        match storm_run(&target, platform, runtime, replay_seed, rcfg) {
            Ok(run) => println!(
                "{:<12} ok: {:.3} ms degraded ({:.3} ms clean), {} fault(s), {} retr(y/ies), \
                 {} fallback(s), {} deadline degradation(s)",
                kind.name(),
                run.total_us / 1e3,
                setup.clean_us / 1e3,
                run.recovery.faults_injected,
                run.recovery.retries,
                run.recovery.fallbacks,
                run.recovery.deadline_degradations,
            ),
            Err(why) => {
                println!("{:<12} FAILED: {why}", kind.name());
                failures.push(format!("{} seed {replay_seed}: {why}", kind.name()));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("replay failed:\n  {}", failures.join("\n  ")))
    }
}

/// Executes one seeded storm round: analytic fault injection gated by
/// the checker (trace races, report accounting, EC04x recovery log),
/// then a functional execution that must reproduce the fault-free
/// output bit for bit.
fn storm_run(
    target: &StormTarget<'_>,
    platform: &Platform,
    runtime: &Runtime<'_>,
    run_seed: u64,
    rcfg: &ResilienceConfig,
) -> Result<StormRun, String> {
    let faults = edgenn_sim::FaultPlan::from_seed(run_seed, target.graph.len());
    let outcome = runtime
        .simulate_with_faults(target.graph, target.plan, &faults, rcfg)
        .map_err(|e| format!("analytic: {e}"))?;

    let mut check = edgenn_check::CheckReport::default();
    check.extend(edgenn_check::check_trace_events(
        &outcome.report.events,
        platform,
    ));
    check.extend(edgenn_check::check_report(&outcome.report));
    check.extend(edgenn_check::check_recovery(&outcome.recovery));
    if !check.is_clean() {
        let codes: Vec<&str> = check
            .diagnostics
            .iter()
            .filter(|d| d.severity == edgenn_check::Severity::Error)
            .map(|d| d.code)
            .collect();
        return Err(format!(
            "checker: {} error(s): {}",
            check.error_count(),
            codes.join(" ")
        ));
    }

    let tiny_faults = edgenn_sim::FaultPlan::from_seed(run_seed, target.tiny.len());
    let injector = edgenn_core::runtime::functional::FaultInjector::from_plan(
        &tiny_faults,
        target.tiny.len(),
        rcfg.max_retries,
    );
    let functional = edgenn_core::runtime::functional::Executor::new(target.tiny)
        .map_err(|e| e.to_string())?
        .with_faults(injector)
        .execute(target.tiny_plan, target.input)
        .map_err(|e| format!("functional: {e}"))?;
    if !functional.output.approx_eq(target.reference, 0.0) {
        return Err("functional output diverged from the fault-free reference".to_string());
    }

    Ok(StormRun {
        total_us: outcome.report.total_us,
        recovery: outcome.recovery,
    })
}

/// Percentile over a sorted latency sample (nearest-rank).
fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the functional engine under the flight recorder and reports the
/// measured timeline next to the analytic prediction.
fn cmd_profile(options: &Options) -> Result<(), String> {
    use edgenn_core::runtime::functional::Executor;
    use edgenn_obs::flight;
    use edgenn_tensor::Tensor;

    let model_name = options
        .positional(1)
        .or_else(|| options.value("model"))
        .ok_or("profile needs a model: edgenn profile <model> --platform P")?;
    let model = parse_model(model_name)?;
    let scale = parse_scale(options, "tiny")?;
    let LoadedModel { graph, .. } = compile_loaded(options, scale, build(model, scale))?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = args::resolve_config(options)?;
    let runs: usize = match options.value("runs") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--runs expects a positive integer, got '{v}'"))?,
        None => 3,
    };
    if runs == 0 {
        return Err("--runs must be at least 1".to_string());
    }

    // Predicted timeline: the analytic simulator on the target platform.
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;
    let predicted = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;

    // Measured timeline: real functional runs with the recorder on.
    // One warm-up populates the scratch arena and the worker pool, then
    // the fastest of `runs` recorded requests is kept.
    flight::enable();
    let executor = Executor::new(&graph).map_err(|e| e.to_string())?;
    let input = Tensor::random(graph.input_shape().dims(), 1.0, 7);
    executor.execute(&plan, &input).map_err(|e| e.to_string())?;
    let mut kept: Option<(Vec<flight::SpanRecord>, flight::SpanRecord, ProfileSummary)> = None;
    for _ in 0..runs {
        let marker = flight::mark();
        let outcome = executor.execute(&plan, &input).map_err(|e| e.to_string())?;
        let records = flight::drain_since(&marker);
        let root = records
            .iter()
            .filter(|r| r.kind == flight::SpanKind::Request)
            .max_by_key(|r| r.id)
            .copied()
            .ok_or("the recorder captured no request span (ring overflow?)")?;
        let wall = root.end_ns - root.start_ns;
        if kept
            .as_ref()
            .is_none_or(|(_, best, _)| wall < best.end_ns - best.start_ns)
        {
            let slice = flight::causal_slice(&records, root.id);
            let profile = outcome.engine.profile.clone().unwrap_or_default();
            kept = Some((slice, root, profile));
        }
    }
    let (slice, root, profile) = kept.expect("runs >= 1 always keeps a request");
    let wall_us = (root.end_ns - root.start_ns) as f64 / 1e3;

    // Gate: the measured spans must satisfy the same tier-C invariants
    // the simulator's traces are held to.
    let diags = edgenn_check::check_flight_records(&slice);
    if !diags.is_empty() {
        let mut msg = format!(
            "recorded timeline failed the tier-C flight check ({} finding(s)):\n",
            diags.len()
        );
        for d in &diags {
            msg.push_str(&format!("  {d}\n"));
        }
        return Err(msg);
    }

    let mut nodes = edgenn_obs::flight::node_profiles(&slice);
    nodes.sort_by_key(|n| n.node);
    let layer_of = |node: u32| {
        predicted
            .layers
            .iter()
            .find(|l| l.node == node as usize)
            .map(|l| (l.name.clone(), l.kernel_us + l.memory_us))
    };

    if options.value("perfetto").is_some() {
        write_profile_trace(options, &predicted.events, &slice, root.start_ns, &graph)?;
    } else if options.has("perfetto") {
        return Err("--perfetto requires a file path".to_string());
    }

    if options.has("json") {
        let mut m = serde_json::Map::new();
        m.insert("model", serde_json::Value::from(graph.name()));
        m.insert("platform", serde_json::Value::from(platform.name.as_str()));
        m.insert(
            "config",
            serde_json::Value::from(options.value("config").unwrap_or("edgenn")),
        );
        m.insert(
            "scale",
            serde_json::Value::from(options.value("scale").unwrap_or("tiny")),
        );
        m.insert("runs", serde_json::Value::from(runs as f64));
        m.insert("wall_us", serde_json::Value::from(wall_us));
        m.insert(
            "predicted_total_us",
            serde_json::Value::from(predicted.total_us),
        );
        m.insert("flight_check", serde_json::Value::from("clean"));
        m.insert("profile", profile.to_value());
        let node_values = nodes
            .iter()
            .map(|n| {
                let mut v = n.to_value();
                if let serde_json::Value::Object(map) = &mut v {
                    if let Some((name, predicted_us)) = layer_of(n.node) {
                        map.insert("layer", serde_json::Value::from(name));
                        map.insert("predicted_us", serde_json::Value::from(predicted_us));
                    }
                }
                v
            })
            .collect::<Vec<_>>();
        m.insert("nodes", serde_json::Value::Array(node_values));
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Object(m))
                .map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "profiled {} ({}) on {} — {} run(s), fastest request {:.1} us",
        graph.name(),
        options.value("scale").unwrap_or("tiny"),
        platform.name,
        runs,
        wall_us
    );
    println!(
        "flight check : clean ({} spans, {} dropped this session)",
        profile.span_count, profile.dropped
    );
    println!(
        "\n  {:<12} {:>6} {:>12} {:>10} {:>10} {:>10}",
        "stage", "count", "total us", "p50 us", "p99 us", "max us"
    );
    for stage in &profile.stages {
        println!(
            "  {:<12} {:>6} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
            stage.stage, stage.count, stage.total_us, stage.p50_us, stage.p99_us, stage.max_us
        );
    }
    println!(
        "\n  predicted = analytic model of {}; measured = host functional engine",
        platform.name
    );
    println!(
        "  {:<5} {:<22} {:>12} {:>12} {:>9} {:>10} {:>9} {:>9}",
        "node",
        "layer",
        "predicted us",
        "measured us",
        "pack us",
        "compute us",
        "merge us",
        "queue us"
    );
    for n in &nodes {
        let (name, predicted_us) =
            layer_of(n.node).unwrap_or_else(|| (format!("n{}", n.node), 0.0));
        println!(
            "  {:<5} {:<22} {:>12.1} {:>12.1} {:>9.1} {:>10.1} {:>9.1} {:>9.1}",
            n.node,
            name,
            predicted_us,
            n.wall_us,
            n.pack_us,
            n.compute_us,
            n.merge_us,
            n.queue_wait_us
        );
    }
    Ok(())
}

/// Writes one Chrome trace holding the simulated timeline (pid 1, with
/// its counter tracks on pid 1/2) next to the measured flight recording
/// (pid 3, one thread row per worker), then parses the written file back
/// to guarantee downstream tooling can load it.
fn write_profile_trace(
    options: &Options,
    predicted_events: &[edgenn_sim::TraceEvent],
    slice: &[edgenn_obs::SpanRecord],
    t0_ns: u64,
    graph: &edgenn_nn::graph::Graph,
) -> Result<(), String> {
    use edgenn_obs::flight;

    let path = options.value("perfetto").expect("caller checked");
    let mut entries = edgenn_sim::chrome_trace_entries(predicted_events, &[]);
    entries.push(process_name_entry(1, "simulated (analytic model)"));
    entries.push(process_name_entry(3, "measured (flight recorder)"));
    let name_of = |n: u32| {
        graph.nodes().get(n as usize).map_or_else(
            || format!("n{n}"),
            |node| format!("n{n} {}", node.layer().name()),
        )
    };
    entries.extend(flight::chrome_entries(slice, 3, t0_ns, &name_of));
    let json = serde_json::to_string_pretty(&serde_json::Value::Array(entries))
        .map_err(|e| e.to_string())?;
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    let reread = std::fs::read_to_string(path).map_err(|e| format!("re-reading {path}: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&reread).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    let serde_json::Value::Array(checked) = parsed else {
        return Err(format!("{path}: a Chrome trace must be a JSON array"));
    };
    let measured_spans = checked
        .iter()
        .filter(|e| e["pid"] == 3.0 && e["ph"] == "X")
        .count();
    if measured_spans == 0 {
        return Err(format!("{path}: no measured spans made it into the trace"));
    }
    eprintln!(
        "merged trace written to {path} ({} entries, {} measured spans; load in Perfetto)",
        checked.len(),
        measured_spans
    );
    Ok(())
}

/// Chrome-trace metadata row labelling a process track.
fn process_name_entry(pid: u64, name: &str) -> serde_json::Value {
    let mut args = serde_json::Map::new();
    args.insert("name", serde_json::Value::from(name));
    let mut m = serde_json::Map::new();
    m.insert("name", serde_json::Value::from("process_name"));
    m.insert("ph", serde_json::Value::from("M"));
    m.insert("pid", serde_json::Value::from(pid as f64));
    m.insert("args", serde_json::Value::Object(args));
    serde_json::Value::Object(m)
}

fn cmd_storm(options: &Options) -> Result<(), String> {
    options.ensure_known(&[
        "model",
        "platform",
        "config",
        "precision",
        "seed",
        "runs",
        "max-retries",
        "deadline-us",
        "replay-seed",
        "inject-failure",
        "json",
        "out",
    ])?;
    let platform = parse_platform(options.value("platform").unwrap_or("jetson"))?;
    let config = if platform.has_gpu() {
        args::resolve_config(options)?
    } else {
        // Hybrid configs cannot plan without a GPU; a CPU-only storm
        // still exercises the window and OOM fault classes.
        ExecutionConfig::cpu_only()
    };
    let seed: u64 = options
        .value("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|e| format!("--seed: {e}"))?;
    let runs: usize = options
        .value("runs")
        .unwrap_or("100")
        .parse()
        .map_err(|e| format!("--runs: {e}"))?;
    if runs == 0 {
        return Err("--runs must be at least 1".to_string());
    }
    let rcfg = resilience_config(options)?;
    let inject: Option<usize> = match options.value("inject-failure") {
        Some(v) => Some(v.parse().map_err(|e| format!("--inject-failure: {e}"))?),
        None => None,
    };
    let kinds: Vec<ModelKind> = match options.value("model") {
        None | Some("all") => ModelKind::ALL.to_vec(),
        Some(name) => vec![parse_model(name)?],
    };

    let runtime = Runtime::new(&platform);
    if let Some(v) = options.value("replay-seed") {
        let replay: u64 = v.parse().map_err(|e| format!("--replay-seed: {e}"))?;
        return storm_replay(&kinds, &platform, &runtime, config, &rcfg, seed, replay);
    }
    let json_wanted = options.has("json");
    if !json_wanted {
        println!(
            "fault storm: {runs} run(s)/model on {}, base seed {seed}, retry budget {}",
            platform.name, rcfg.max_retries
        );
        println!(
            "{:<12} {:>9} {:>9} {:>11} {:>11} {:>8} {:>10}",
            "model", "survived", "injected", "clean ms", "p99 ms", "retries", "fallbacks"
        );
    }

    let mut model_values = Vec::new();
    let mut total_runs = 0usize;
    let mut total_survived = 0usize;
    let mut first_failures: Vec<String> = Vec::new();
    for kind in kinds {
        let setup = storm_setup(kind, &runtime, config, seed)?;
        let clean_us = setup.clean_us;
        let target = setup.target();

        let mut latencies: Vec<f64> = Vec::with_capacity(runs);
        let mut survived = 0usize;
        let (mut injected, mut retries, mut fallbacks, mut degradations) = (0u64, 0u64, 0u64, 0u64);
        let mut failures: Vec<String> = Vec::new();
        let mut failed_seeds: Vec<u64> = Vec::new();
        let mut degraded_seeds: Vec<u64> = Vec::new();
        for i in 0..runs {
            let run_seed = seed.wrapping_add(i as u64);
            if inject == Some(i) {
                failures.push(format!(
                    "{} seed {run_seed}: forced failure (--inject-failure {i})",
                    kind.name()
                ));
                failed_seeds.push(run_seed);
                continue;
            }
            match storm_run(&target, &platform, &runtime, run_seed, &rcfg) {
                Ok(run) => {
                    survived += 1;
                    latencies.push(run.total_us);
                    injected += run.recovery.faults_injected;
                    retries += run.recovery.retries;
                    fallbacks += run.recovery.fallbacks;
                    degradations += run.recovery.deadline_degradations;
                    if run.recovery.deadline_degradations > 0 {
                        degraded_seeds.push(run_seed);
                    }
                }
                Err(why) => {
                    failures.push(format!("{} seed {run_seed}: {why}", kind.name()));
                    failed_seeds.push(run_seed);
                }
            }
        }
        total_runs += runs;
        total_survived += survived;
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p50 = percentile_us(&latencies, 0.50);
        let p99 = percentile_us(&latencies, 0.99);

        if !json_wanted {
            println!(
                "{:<12} {:>6}/{:<2} {:>9} {:>11.3} {:>11.3} {:>8} {:>10}",
                kind.name(),
                survived,
                runs,
                injected,
                clean_us / 1e3,
                p99 / 1e3,
                retries,
                fallbacks
            );
        }
        first_failures.extend(failures.iter().take(3).cloned());

        let mut m = serde_json::Map::new();
        m.insert("model", serde_json::Value::from(kind.name()));
        m.insert("runs", serde_json::Value::from(runs as u64));
        m.insert("survived", serde_json::Value::from(survived as u64));
        m.insert(
            "survival_rate",
            serde_json::Value::from(survived as f64 / runs as f64),
        );
        m.insert("clean_us", serde_json::Value::from(clean_us));
        m.insert("p50_degraded_us", serde_json::Value::from(p50));
        m.insert("p99_degraded_us", serde_json::Value::from(p99));
        m.insert("faults_injected", serde_json::Value::from(injected));
        m.insert("retries", serde_json::Value::from(retries));
        m.insert("fallbacks", serde_json::Value::from(fallbacks));
        m.insert(
            "deadline_degradations",
            serde_json::Value::from(degradations),
        );
        m.insert(
            "failures",
            serde_json::to_value(&failures).map_err(|e| e.to_string())?,
        );
        // Seeds are the replay currency: paste any of these into
        // `edgenn storm --replay-seed N` to reproduce the round.
        m.insert(
            "failed_seeds",
            serde_json::Value::Array(
                failed_seeds
                    .iter()
                    .map(|s| serde_json::Value::from(*s))
                    .collect(),
            ),
        );
        m.insert(
            "degraded_seeds",
            serde_json::Value::Array(
                degraded_seeds
                    .iter()
                    .map(|s| serde_json::Value::from(*s))
                    .collect(),
            ),
        );
        model_values.push(serde_json::Value::Object(m));
    }

    let survival_rate = total_survived as f64 / total_runs as f64;
    let mut top = serde_json::Map::new();
    top.insert("platform", serde_json::Value::from(platform.name.as_str()));
    top.insert("seed", serde_json::Value::from(seed));
    top.insert("runs_per_model", serde_json::Value::from(runs as u64));
    top.insert("max_retries", serde_json::Value::from(rcfg.max_retries));
    top.insert("total_runs", serde_json::Value::from(total_runs as u64));
    top.insert(
        "total_survived",
        serde_json::Value::from(total_survived as u64),
    );
    top.insert("survival_rate", serde_json::Value::from(survival_rate));
    top.insert("models", serde_json::Value::Array(model_values));
    let summary = serde_json::Value::Object(top);

    if let Some(path) = options.value("out") {
        let text = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        if !json_wanted {
            eprintln!("storm summary written to {path}");
        }
    }
    if json_wanted {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "survival: {total_survived}/{total_runs} ({:.1}%)",
            survival_rate * 100.0
        );
    }

    if total_survived == total_runs {
        Ok(())
    } else {
        let mut message = format!(
            "storm failed: {total_survived}/{total_runs} run(s) survived on {}",
            platform.name
        );
        for failure in first_failures.iter().take(10) {
            message.push_str("\n  ");
            message.push_str(failure);
        }
        Err(message)
    }
}

/// Renders the shared serve/siege report: per-tenant outcome and tail
/// table, then the run summary.
fn render_serve_report(report: &edgenn_serve::SiegeReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>8} {:>8} {:>8} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "tenant",
        "weight",
        "arrived",
        "admitted",
        "rejected",
        "shed",
        "completed",
        "p50 ms",
        "p99 ms",
        "p999 ms"
    );
    for t in &report.tenants {
        let _ = writeln!(
            out,
            "{:<12} {:>6.1} {:>8} {:>8} {:>8} {:>5} {:>9} {:>9.3} {:>9.3} {:>9.3}",
            t.name,
            t.weight,
            t.arrived,
            t.admitted,
            t.rejected,
            t.shed,
            t.completed,
            t.p50_us / 1e3,
            t.p99_us / 1e3,
            t.p999_us / 1e3,
        );
    }
    let _ = writeln!(
        out,
        "batches        : {} ({} degraded)",
        report.batches, report.degraded_batches
    );
    let _ = writeln!(out, "survival       : {:.4}", report.survival);
    let _ = writeln!(out, "shed rate      : {:.4}", report.shed_rate);
    let _ = writeln!(out, "fairness spread: {:.3}", report.fairness_spread);
    let _ = writeln!(
        out,
        "queue high-water: {}/{}",
        report.high_water, report.queue_capacity
    );
    out
}

/// Replays a serving run's admission log through the EC07x checker;
/// the replay parameters travel on the report itself.
fn serve_check(report: &edgenn_serve::SiegeReport) -> edgenn_check::CheckReport {
    let params = edgenn_check::ServeCheckParams {
        weights: report.weights.clone(),
        queue_capacity: report.queue_capacity,
        max_batch: report.max_batch,
        models: report.models.len(),
    };
    let mut check = edgenn_check::CheckReport::default();
    check.extend(edgenn_check::check_admission_log(&report.log, &params));
    check
}

/// Shared `serve`/`siege` epilogue: JSON assembly (`--json` / `--out`),
/// then the exit gate — non-zero on any lost request, bitwise
/// divergence, queue-bound breach, or EC07x checker error.
fn serve_epilogue(
    options: &Options,
    command: &str,
    report: &edgenn_serve::SiegeReport,
    check: Option<&edgenn_check::CheckReport>,
    extra: Vec<(&'static str, serde_json::Value)>,
) -> Result<(), String> {
    let serde_json::Value::Object(mut summary) = report.to_value() else {
        return Err("serve report did not serialize to an object".to_string());
    };
    for (key, value) in extra {
        summary.insert(key.to_string(), value);
    }
    if let Some(check) = check {
        summary.insert("checker".to_string(), check.to_json());
    }
    let summary = serde_json::Value::Object(summary);
    if let Some(path) = options.value("out") {
        let text = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        if !options.has("json") {
            eprintln!("{command} report written to {path}");
        }
    }
    if options.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    }
    let checker_errors = check.map_or(0, edgenn_check::CheckReport::error_count);
    if report.gate_clean() && checker_errors == 0 {
        return Ok(());
    }
    let mut message = format!(
        "{command} gate failed: survival {:.4}, {} lost, {} bitwise failure(s), \
         queue high-water {}/{}, {} checker error(s)",
        report.survival,
        report.lost,
        report.bitwise_failures.len(),
        report.high_water,
        report.queue_capacity,
        checker_errors
    );
    for failure in report.bitwise_failures.iter().take(5) {
        message.push_str("\n  ");
        message.push_str(failure);
    }
    if let Some(check) = check {
        for d in check
            .diagnostics
            .iter()
            .filter(|d| d.severity == edgenn_check::Severity::Error)
            .take(5)
        {
            message.push_str("\n  ");
            message.push_str(d.code);
            message.push_str(": ");
            message.push_str(&d.message);
        }
    }
    Err(message)
}

/// The wall-clock serving loop: seeded clients push through admission
/// into the bounded queue; the dispatcher batches weighted-fair and
/// executes for real.
fn cmd_serve(options: &Options) -> Result<(), String> {
    options.ensure_known(&[
        "seed",
        "duration-ms",
        "platform",
        "queue-capacity",
        "max-batch",
        "max-delay-us",
        "check",
        "json",
        "out",
    ])?;
    let seed: u64 = options
        .value("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|e| format!("--seed: {e}"))?;
    let duration_ms: u64 = options
        .value("duration-ms")
        .unwrap_or("1000")
        .parse()
        .map_err(|e| format!("--duration-ms: {e}"))?;
    let mut cfg = edgenn_serve::ServeConfig::demo(seed, duration_ms);
    if let Some(v) = options.value("platform") {
        cfg.platform = parse_platform(v)?;
    }
    if let Some(v) = options.value("queue-capacity") {
        cfg.queue_capacity = v.parse().map_err(|e| format!("--queue-capacity: {e}"))?;
    }
    if let Some(v) = options.value("max-batch") {
        cfg.policy.max_batch = v.parse().map_err(|e| format!("--max-batch: {e}"))?;
    }
    if let Some(v) = options.value("max-delay-us") {
        cfg.policy.max_delay_us = v.parse().map_err(|e| format!("--max-delay-us: {e}"))?;
    }
    let recorder = Recorder::new();
    let report = edgenn_serve::run_server(&cfg, Some(&recorder))?;
    let check = if options.has("check") {
        Some(serve_check(&report))
    } else {
        None
    };
    if !options.has("json") {
        println!(
            "serve: seed {seed}, {duration_ms} ms wall clock, {} tenant(s) x {} model(s) on {}",
            cfg.tenants.len(),
            cfg.models.len(),
            cfg.platform.name,
        );
        print!("{}", render_serve_report(&report));
        if let Some(check) = &check {
            if check.is_clean() {
                println!("EC07x check    : clean");
            } else {
                println!("EC07x check    : {} error(s)", check.error_count());
            }
        }
    }
    serve_epilogue(
        options,
        "serve",
        &report,
        check.as_ref(),
        vec![
            ("seed", serde_json::Value::from(seed)),
            ("duration_ms", serde_json::Value::from(duration_ms)),
        ],
    )
}

/// The deterministic fault-injected load gate: seeded virtual-time load
/// over the full serving pipeline, real batch executions gated bitwise,
/// admission log replayed through the EC07x checker.
fn cmd_siege(options: &Options) -> Result<(), String> {
    options.ensure_known(&[
        "seed",
        "duration-us",
        "platform",
        "queue-capacity",
        "max-batch",
        "max-delay-us",
        "no-faults",
        "max-retries",
        "json",
        "out",
    ])?;
    let seed: u64 = options
        .value("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|e| format!("--seed: {e}"))?;
    let mut cfg = edgenn_serve::SiegeConfig::ci(seed);
    if let Some(v) = options.value("duration-us") {
        cfg.duration_us = v.parse().map_err(|e| format!("--duration-us: {e}"))?;
    }
    if let Some(v) = options.value("platform") {
        cfg.platform = parse_platform(v)?;
    }
    if let Some(v) = options.value("queue-capacity") {
        cfg.queue_capacity = v.parse().map_err(|e| format!("--queue-capacity: {e}"))?;
    }
    if let Some(v) = options.value("max-batch") {
        cfg.policy.max_batch = v.parse().map_err(|e| format!("--max-batch: {e}"))?;
    }
    if let Some(v) = options.value("max-delay-us") {
        cfg.policy.max_delay_us = v.parse().map_err(|e| format!("--max-delay-us: {e}"))?;
    }
    if options.has("no-faults") {
        cfg.faults = false;
    }
    if let Some(v) = options.value("max-retries") {
        cfg.max_retries = v.parse().map_err(|e| format!("--max-retries: {e}"))?;
    }
    let recorder = Recorder::new();
    let report = edgenn_serve::run_siege(&cfg, Some(&recorder))?;
    let check = serve_check(&report);
    if !options.has("json") {
        println!(
            "siege: seed {seed}, {:.0} ms virtual, {} tenant(s) x {} model(s) on {}, faults {}",
            cfg.duration_us / 1e3,
            cfg.tenants.len(),
            cfg.models.len(),
            cfg.platform.name,
            if cfg.faults { "armed" } else { "off" },
        );
        print!("{}", render_serve_report(&report));
        if check.is_clean() {
            println!(
                "EC07x check    : clean ({} events)",
                report.log.events.len()
            );
        } else {
            println!("EC07x check    : {} error(s)", check.error_count());
        }
    }
    serve_epilogue(
        options,
        "siege",
        &report,
        Some(&check),
        vec![
            ("seed", serde_json::Value::from(seed)),
            ("duration_us", serde_json::Value::from(cfg.duration_us)),
            ("faults", serde_json::Value::from(cfg.faults)),
        ],
    )
}

fn cmd_inspect(options: &Options) -> Result<(), String> {
    let LoadedModel { graph, .. } = required_graph(options)?;
    print!("{}", graph.summary());
    let structure = graph.structure().map_err(|e| e.to_string())?;
    if structure.is_pure_chain() {
        println!(
            "
structure: pure chain"
        );
    } else {
        println!(
            "
structure: {} fork-join region(s)",
            structure.parallel_segment_count()
        );
    }
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    println!(
        "{:<12} {:>10} {:>12} {:>8}  structure",
        "model", "layers", "GFLOPs", "params"
    );
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let structure = graph.structure().map_err(|e| e.to_string())?;
        let desc = if structure.is_pure_chain() {
            "chain".to_string()
        } else {
            format!("{} fork-join regions", structure.parallel_segment_count())
        };
        println!(
            "{:<12} {:>10} {:>12.2} {:>7.1}M  {desc}",
            kind.name(),
            graph.len() - 1,
            graph.total_flops() as f64 / 1e9,
            graph.param_bytes() as f64 / 4e6,
        );
    }
    Ok(())
}

fn cmd_platforms() {
    let platforms = [
        edgenn_sim::platforms::jetson_agx_xavier(),
        edgenn_sim::platforms::raspberry_pi_4(),
        edgenn_sim::platforms::dimensity_8100(),
        edgenn_sim::platforms::rtx_2080ti_server(),
        edgenn_sim::platforms::amd_embedded_apu(),
        edgenn_sim::platforms::apple_silicon_m1(),
    ];
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>10}  kind",
        "platform", "cpu GFLOPS", "gpu GFLOPS", "price", "max W"
    );
    for p in platforms {
        let gpu = p
            .gpu
            .as_ref()
            .map_or_else(|| "—".into(), |g| format!("{:.0}", g.peak_gflops));
        let kind = if p.is_integrated() {
            "integrated"
        } else if p.has_gpu() {
            "discrete"
        } else {
            "cpu-only"
        };
        println!(
            "{:<22} {:>12.0} {:>12} {:>8} {:>10.1}  {kind}",
            p.name,
            p.cpu.peak_gflops,
            gpu,
            format!("${}", p.price_usd),
            p.power.power_w(1.0, 1.0),
        );
    }
}
