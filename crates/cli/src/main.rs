//! `edgenn` — command-line front end for the EdgeNN reproduction.
//!
//! ```text
//! edgenn simulate --model alexnet --platform jetson [--config edgenn]
//!                 [--scale paper|tiny] [--json] [--layers] [--trace FILE]
//! edgenn plan     --model alexnet --platform jetson [--config edgenn]
//! edgenn compare  --model alexnet --platform jetson
//! edgenn models
//! edgenn platforms
//! ```

mod args;

use std::process::ExitCode;

use args::{parse_config, parse_model, parse_platform, Options};
use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_nn::models::{build, ModelScale};
use edgenn_sim::trace::to_chrome_trace;

const USAGE: &str = "\
edgenn — EdgeNN (ICDE 2023) reproduction CLI

USAGE:
    edgenn simulate  --model M --platform P [--config C] [--scale paper|tiny]
                     [--json] [--layers] [--trace FILE]
    edgenn plan      --model M --platform P [--config C] [--explain]
    edgenn compare   --model M --platform P
    edgenn inspect   --model M [--scale paper|tiny]
    edgenn models
    edgenn platforms

MODELS:     fcnn lenet alexnet vgg squeezenet resnet
PLATFORMS:  jetson rpi phone server apu apple
CONFIGS:    edgenn baseline cpu-only memory-only hybrid-only inter-only energy";

fn main() -> ExitCode {
    let options = Options::parse(std::env::args().skip(1));
    let result = match options.positional(0) {
        Some("simulate") => cmd_simulate(&options),
        Some("plan") => cmd_plan(&options),
        Some("compare") => cmd_compare(&options),
        Some("inspect") => cmd_inspect(&options),
        Some("models") => cmd_models(),
        Some("platforms") => cmd_platforms(),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

fn required_graph(options: &Options) -> Result<edgenn_nn::graph::Graph, String> {
    let model = parse_model(options.value("model").ok_or("--model is required")?)?;
    let scale = match options.value("scale").unwrap_or("paper") {
        "paper" => ModelScale::Paper,
        "tiny" => ModelScale::Tiny,
        other => return Err(format!("unknown scale '{other}' (expected paper|tiny)")),
    };
    Ok(build(model, scale))
}

fn cmd_simulate(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = parse_config(options.value("config").unwrap_or("edgenn"))?;

    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner.plan(&graph, &runtime, config).map_err(|e| e.to_string())?;
    let report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;

    if let Some(path) = options.value("trace") {
        std::fs::write(path, to_chrome_trace(&report.events))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("chrome trace written to {path} (load in chrome://tracing)");
    }

    if options.has("json") {
        println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
        return Ok(());
    }

    println!("{} on {}", report.model, report.platform);
    println!("  latency      : {:.3} ms", report.total_us / 1e3);
    println!("  avg power    : {:.2} W", report.energy.avg_power_w);
    println!("  energy       : {:.3} mJ/inference", report.energy.energy_mj);
    println!(
        "  utilization  : CPU {:.0}% / GPU {:.0}%",
        report.energy.cpu_utilization * 100.0,
        report.energy.gpu_utilization * 100.0
    );
    println!(
        "  breakdown    : kernel {:.0} us, copies {:.0} us, migrations {:.0} us, \
         thrash {:.0} us, sync {:.0} us",
        report.summary.kernel_us,
        report.summary.copy_us,
        report.summary.migration_us,
        report.summary.thrash_us,
        report.summary.sync_us
    );
    println!(
        "  plan         : {} co-run layers, {} zero-copy arrays",
        plan.corun_count(),
        plan.managed_count()
    );
    let footprint = edgenn_core::footprint::footprint(&graph, &plan).map_err(|e| e.to_string())?;
    println!(
        "  memory       : {:.1} MiB peak ({:.1} MiB weights + {:.1} MiB activations)",
        footprint.peak_mib(),
        footprint.weight_bytes as f64 / (1 << 20) as f64,
        footprint.peak_activation_bytes as f64 / (1 << 20) as f64
    );
    if options.has("layers") {
        println!("\n  {:<22} {:>12} {:>10} {:>10}  assignment", "layer", "start us", "kernel", "memory");
        for layer in &report.layers {
            println!(
                "  {:<22} {:>12.1} {:>10.1} {:>10.1}  {:?}",
                layer.name, layer.start_us, layer.kernel_us, layer.memory_us, layer.assignment
            );
        }
    }
    Ok(())
}

fn cmd_plan(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = parse_config(options.value("config").unwrap_or("edgenn"))?;
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner.plan(&graph, &runtime, config).map_err(|e| e.to_string())?;
    if options.has("explain") {
        let rows = tuner.explain(&graph, &plan).map_err(|e| e.to_string())?;
        println!(
            "{:<24} {:<8} {:>12} {:>12}  decision",
            "layer", "class", "t_cpu us", "t_gpu us"
        );
        for row in rows {
            println!(
                "{:<24} {:<8} {:>12.1} {:>12.1}  {:?} / {}",
                row.name, row.class, row.t_cpu_us, row.t_gpu_us, row.assignment, row.output_alloc
            );
        }
        return Ok(());
    }
    println!("{}", serde_json::to_string_pretty(&plan).map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_compare(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;

    let configs: &[(&str, ExecutionConfig)] = &[
        ("baseline (gpu, explicit)", ExecutionConfig::baseline_gpu()),
        ("memory-only (zero-copy)", ExecutionConfig::memory_only()),
        ("hybrid-only (explicit)", ExecutionConfig::hybrid_only()),
        ("inter-kernel only", ExecutionConfig::inter_kernel_only()),
        ("edgenn", ExecutionConfig::edgenn()),
        ("edgenn (energy-aware)", ExecutionConfig::edgenn_energy_aware()),
        ("cpu-only", ExecutionConfig::cpu_only()),
    ];

    println!("{} on {}", graph.name(), platform.name);
    println!("{:<26} {:>12} {:>10} {:>12}", "config", "latency ms", "power W", "energy mJ");
    let mut baseline_us = None;
    for (name, config) in configs {
        if !platform.has_gpu() && *name != "cpu-only" {
            continue;
        }
        let plan = tuner.plan(&graph, &runtime, *config).map_err(|e| e.to_string())?;
        let report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;
        let delta = match baseline_us {
            None => {
                baseline_us = Some(report.total_us);
                String::new()
            }
            Some(base) => format!("  ({:+.1}% vs baseline)", (report.total_us - base) / base * 100.0),
        };
        println!(
            "{:<26} {:>12.3} {:>10.2} {:>12.3}{delta}",
            name,
            report.total_us / 1e3,
            report.energy.avg_power_w,
            report.energy.energy_mj
        );
    }
    Ok(())
}

fn cmd_inspect(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    print!("{}", graph.summary());
    let structure = graph.structure().map_err(|e| e.to_string())?;
    if structure.is_pure_chain() {
        println!("
structure: pure chain");
    } else {
        println!("
structure: {} fork-join region(s)", structure.parallel_segment_count());
    }
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    println!("{:<12} {:>10} {:>12} {:>8}  structure", "model", "layers", "GFLOPs", "params");
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let structure = graph.structure().map_err(|e| e.to_string())?;
        let desc = if structure.is_pure_chain() {
            "chain".to_string()
        } else {
            format!("{} fork-join regions", structure.parallel_segment_count())
        };
        println!(
            "{:<12} {:>10} {:>12.2} {:>7.1}M  {desc}",
            kind.name(),
            graph.len() - 1,
            graph.total_flops() as f64 / 1e9,
            graph.param_bytes() as f64 / 4e6,
        );
    }
    Ok(())
}

fn cmd_platforms() -> Result<(), String> {
    let platforms = [
        edgenn_sim::platforms::jetson_agx_xavier(),
        edgenn_sim::platforms::raspberry_pi_4(),
        edgenn_sim::platforms::dimensity_8100(),
        edgenn_sim::platforms::rtx_2080ti_server(),
        edgenn_sim::platforms::amd_embedded_apu(),
        edgenn_sim::platforms::apple_silicon_m1(),
    ];
    println!("{:<22} {:>12} {:>12} {:>8} {:>10}  kind", "platform", "cpu GFLOPS", "gpu GFLOPS", "price", "max W");
    for p in platforms {
        let gpu = p.gpu.as_ref().map(|g| format!("{:.0}", g.peak_gflops)).unwrap_or_else(|| "—".into());
        let kind = if p.is_integrated() {
            "integrated"
        } else if p.has_gpu() {
            "discrete"
        } else {
            "cpu-only"
        };
        println!(
            "{:<22} {:>12.0} {:>12} {:>8} {:>10.1}  {kind}",
            p.name,
            p.cpu.peak_gflops,
            gpu,
            format!("${}", p.price_usd),
            p.power.power_w(1.0, 1.0),
        );
    }
    Ok(())
}
