//! `edgenn` — command-line front end for the EdgeNN reproduction.
//!
//! ```text
//! edgenn simulate --model alexnet --platform jetson [--config edgenn]
//!                 [--scale paper|tiny] [--json] [--layers]
//!                 [--trace-out FILE] [--metrics-out FILE]
//! edgenn explain  --model alexnet --platform jetson [--config edgenn]
//! edgenn plan     --model alexnet --platform jetson [--config edgenn]
//! edgenn compare  --model alexnet --platform jetson
//!                 [--trace-out FILE] [--metrics-out FILE]
//! edgenn models
//! edgenn platforms
//! ```

mod args;

use std::process::ExitCode;
use std::sync::Arc;

use args::{parse_config, parse_model, parse_platform, Options};
use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_nn::models::{build, ModelScale};
use edgenn_obs::{Labels, Recorder};
use edgenn_sim::trace::to_chrome_trace_with_counters;
use edgenn_sim::Platform;

const USAGE: &str = "\
edgenn — EdgeNN (ICDE 2023) reproduction CLI

USAGE:
    edgenn simulate  --model M --platform P [--config C] [--scale paper|tiny]
                     [--json] [--layers] [--trace-out FILE] [--metrics-out FILE]
    edgenn explain   --model M --platform P [--config C] [--json]
    edgenn plan      --model M --platform P [--config C] [--explain]
    edgenn compare   --model M --platform P [--trace-out FILE] [--metrics-out FILE]
    edgenn check     --model M --platform P [--config C] [--scale paper|tiny]
                     [--json] [--lenient]
    edgenn inspect   --model M [--scale paper|tiny]
    edgenn models
    edgenn platforms

MODELS:     fcnn lenet alexnet vgg squeezenet resnet
PLATFORMS:  jetson (jetson-xavier) rpi phone server apu apple
CONFIGS:    edgenn baseline cpu-only memory-only hybrid-only inter-only energy

OBSERVABILITY:
    --trace-out FILE    Perfetto/chrome://tracing trace with counter tracks
                        (bandwidth, outstanding managed pages, EMA evolution)
    --metrics-out FILE  JSON metrics snapshot (counters, gauges, p50/p95/p99
                        latency histograms from a serving run)

CHECK:
    Runs the edgenn-check static verifier: graph dataflow (tier A), plan
    legality on the target platform (tier B), then a simulated trace through
    the happens-before race detector plus report accounting (tier C).
    Diagnostics carry stable EC0xx codes (see docs/diagnostics.md).
    --json      machine-readable report instead of the table
    --lenient   downgrade the accounting codes EC030/EC031 to warnings
                (plotting pipelines that accept a clamped copy proportion)
    Exit status is non-zero when any error-severity diagnostic fires.";

fn main() -> ExitCode {
    let options = Options::parse(std::env::args().skip(1));
    let result = match options.positional(0) {
        Some("simulate") => cmd_simulate(&options),
        Some("explain") => cmd_explain(&options),
        Some("plan") => cmd_plan(&options),
        Some("compare") => cmd_compare(&options),
        Some("check") => cmd_check(&options),
        Some("inspect") => cmd_inspect(&options),
        Some("models") => cmd_models(),
        Some("platforms") => {
            cmd_platforms();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// Output sinks requested on the command line (`--trace-out` /
/// `--metrics-out`; `--trace` is kept as an alias of `--trace-out`).
struct ObsOutputs<'o> {
    trace_out: Option<&'o str>,
    metrics_out: Option<&'o str>,
    recorder: Option<Recorder>,
}

impl<'o> ObsOutputs<'o> {
    fn from_options(
        options: &'o Options,
        graph_name: &str,
        platform: &Platform,
    ) -> Result<Self, String> {
        for key in ["trace-out", "trace", "metrics-out"] {
            if options.has(key) && options.value(key).is_none() {
                return Err(format!("--{key} requires a file path"));
            }
        }
        let trace_out = options
            .value("trace-out")
            .or_else(|| options.value("trace"));
        let metrics_out = options.value("metrics-out");
        let recorder = (trace_out.is_some() || metrics_out.is_some()).then(|| {
            Recorder::with_labels(
                Labels::new()
                    .with("model", graph_name)
                    .with("platform", &platform.name)
                    .with("policy", options.value("config").unwrap_or("edgenn")),
            )
        });
        Ok(Self {
            trace_out,
            metrics_out,
            recorder,
        })
    }

    fn wanted(&self) -> bool {
        self.recorder.is_some()
    }

    fn runtime<'a>(&self, platform: &'a Platform) -> Runtime<'a> {
        match &self.recorder {
            Some(rec) => Runtime::with_observer(platform, Arc::new(rec.clone())),
            None => Runtime::new(platform),
        }
    }

    fn write_trace(&self, events: &[edgenn_sim::TraceEvent]) -> Result<(), String> {
        let Some(path) = self.trace_out else {
            return Ok(());
        };
        let extra = self
            .recorder
            .as_ref()
            .map(edgenn_obs::Recorder::counter_samples)
            .unwrap_or_default();
        std::fs::write(path, to_chrome_trace_with_counters(events, &extra))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("chrome trace written to {path} (load in Perfetto or chrome://tracing)");
        Ok(())
    }

    fn write_metrics(&self) -> Result<(), String> {
        let Some(path) = self.metrics_out else {
            return Ok(());
        };
        let rec = self
            .recorder
            .as_ref()
            .expect("metrics-out implies a recorder");
        let json =
            serde_json::to_string_pretty(&rec.metrics().to_json()).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        for warning in rec.warnings() {
            eprintln!("warning: {warning}");
        }
        eprintln!("metrics snapshot written to {path}");
        Ok(())
    }
}

fn required_graph(options: &Options) -> Result<edgenn_nn::graph::Graph, String> {
    let model = parse_model(options.value("model").ok_or("--model is required")?)?;
    let scale = match options.value("scale").unwrap_or("paper") {
        "paper" => ModelScale::Paper,
        "tiny" => ModelScale::Tiny,
        other => return Err(format!("unknown scale '{other}' (expected paper|tiny)")),
    };
    Ok(build(model, scale))
}

fn cmd_simulate(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = parse_config(options.value("config").unwrap_or("edgenn"))?;

    let obs = ObsOutputs::from_options(options, graph.name(), &platform)?;
    let runtime = obs.runtime(&platform);
    let mut tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = if obs.wanted() {
        // Run the adaptive loop so the EMA counter tracks and the plan
        // regeneration markers appear in the exported trace.
        let (plan, _) = tuner
            .adapt(&graph, &runtime, config, 3, 0.05)
            .map_err(|e| e.to_string())?;
        plan
    } else {
        tuner
            .plan(&graph, &runtime, config)
            .map_err(|e| e.to_string())?
    };
    let decisions = tuner
        .explain(&graph, &runtime, &plan)
        .map_err(|e| e.to_string())?;
    let report = runtime
        .simulate(&graph, &plan)
        .map_err(|e| e.to_string())?
        .with_decisions(decisions);

    obs.write_trace(&report.events)?;
    if obs.metrics_out.is_some() {
        // A short serving run feeds the request-latency histogram so the
        // snapshot carries meaningful p50/p95/p99.
        runtime
            .simulate_stream(&graph, &plan, 32)
            .map_err(|e| e.to_string())?;
    }
    obs.write_metrics()?;

    if options.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!("{} on {}", report.model, report.platform);
    println!("  latency      : {:.3} ms", report.total_us / 1e3);
    println!("  avg power    : {:.2} W", report.energy.avg_power_w);
    println!(
        "  energy       : {:.3} mJ/inference",
        report.energy.energy_mj
    );
    println!(
        "  utilization  : CPU {:.0}% / GPU {:.0}%",
        report.energy.cpu_utilization * 100.0,
        report.energy.gpu_utilization * 100.0
    );
    println!(
        "  breakdown    : kernel {:.0} us, copies {:.0} us, migrations {:.0} us, \
         thrash {:.0} us, sync {:.0} us",
        report.summary.kernel_us,
        report.summary.copy_us,
        report.summary.migration_us,
        report.summary.thrash_us,
        report.summary.sync_us
    );
    println!(
        "  plan         : {} co-run layers, {} zero-copy arrays",
        plan.corun_count(),
        plan.managed_count()
    );
    let footprint = edgenn_core::footprint::footprint(&graph, &plan).map_err(|e| e.to_string())?;
    println!(
        "  memory       : {:.1} MiB peak ({:.1} MiB weights + {:.1} MiB activations)",
        footprint.peak_mib(),
        footprint.weight_bytes as f64 / (1 << 20) as f64,
        footprint.peak_activation_bytes as f64 / (1 << 20) as f64
    );
    if options.has("layers") {
        println!(
            "\n  {:<22} {:>12} {:>10} {:>10}  assignment",
            "layer", "start us", "kernel", "memory"
        );
        for layer in &report.layers {
            println!(
                "  {:<22} {:>12.1} {:>10.1} {:>10.1}  {:?}",
                layer.name, layer.start_us, layer.kernel_us, layer.memory_us, layer.assignment
            );
        }
    }
    Ok(())
}

/// Compact rendering of an assignment for the decision tables.
fn assignment_cell(assignment: &edgenn_core::plan::Assignment) -> String {
    use edgenn_core::plan::Assignment;
    match assignment {
        Assignment::Cpu => "cpu".to_string(),
        Assignment::Gpu => "gpu".to_string(),
        Assignment::Split { cpu_fraction } => {
            format!("split {:.0}%c", cpu_fraction * 100.0)
        }
        Assignment::SplitInput { cpu_fraction } => {
            format!("split-in {:.0}%c", cpu_fraction * 100.0)
        }
    }
}

fn cmd_explain(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = parse_config(options.value("config").unwrap_or("edgenn"))?;

    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;
    let report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;
    let rows = tuner
        .explain(&graph, &runtime, &plan)
        .map_err(|e| e.to_string())?;

    if options.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    // Simulated per-layer wall time, keyed by node id.
    let mut simulated = vec![f64::NAN; graph.len()];
    for layer in &report.layers {
        simulated[layer.node] = layer.total_us();
    }

    println!(
        "{} on {} — per-layer tuner decisions",
        graph.name(),
        platform.name
    );
    println!(
        "{:<22} {:<6} {:<13} {:>11} {:>11} {:<9}  rationale",
        "layer", "class", "assignment", "predicted", "simulated", "memory"
    );
    for row in &rows {
        let sim = simulated
            .get(row.node)
            .copied()
            .filter(|t| t.is_finite())
            .map_or_else(|| "—".to_string(), |t| format!("{t:.1}"));
        println!(
            "{:<22} {:<6} {:<13} {:>11.1} {:>11} {:<9}  {}",
            row.name,
            row.class,
            assignment_cell(&row.assignment),
            row.predicted_us,
            sim,
            row.output_alloc.to_string(),
            row.rationale
        );
    }
    println!(
        "\ntotal: predicted {:.1} us over {} layers, simulated end-to-end {:.1} us",
        rows.iter().map(|r| r.predicted_us).sum::<f64>(),
        rows.len(),
        report.total_us
    );
    Ok(())
}

fn cmd_plan(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = parse_config(options.value("config").unwrap_or("edgenn"))?;
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;
    if options.has("explain") {
        let rows = tuner
            .explain(&graph, &runtime, &plan)
            .map_err(|e| e.to_string())?;
        println!(
            "{:<24} {:<8} {:>12} {:>12}  decision",
            "layer", "class", "t_cpu us", "t_gpu us"
        );
        for row in rows {
            println!(
                "{:<24} {:<8} {:>12.1} {:>12.1}  {} / {}",
                row.name,
                row.class,
                row.t_cpu_us,
                row.t_gpu_us,
                assignment_cell(&row.assignment),
                row.output_alloc
            );
        }
        return Ok(());
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&plan).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_compare(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let obs = ObsOutputs::from_options(options, graph.name(), &platform)?;
    let runtime = obs.runtime(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;

    let configs: &[(&str, ExecutionConfig)] = &[
        ("baseline (gpu, explicit)", ExecutionConfig::baseline_gpu()),
        ("memory-only (zero-copy)", ExecutionConfig::memory_only()),
        ("hybrid-only (explicit)", ExecutionConfig::hybrid_only()),
        ("inter-kernel only", ExecutionConfig::inter_kernel_only()),
        ("edgenn", ExecutionConfig::edgenn()),
        (
            "edgenn (energy-aware)",
            ExecutionConfig::edgenn_energy_aware(),
        ),
        ("cpu-only", ExecutionConfig::cpu_only()),
    ];

    println!("{} on {}", graph.name(), platform.name);
    println!(
        "{:<26} {:>12} {:>10} {:>12}",
        "config", "latency ms", "power W", "energy mJ"
    );
    let mut baseline_us = None;
    let mut traced_events: Option<Vec<edgenn_sim::TraceEvent>> = None;
    for (name, config) in configs {
        if !platform.has_gpu() && *name != "cpu-only" {
            continue;
        }
        let plan = tuner
            .plan(&graph, &runtime, *config)
            .map_err(|e| e.to_string())?;
        let report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;
        // Trace the headline edgenn run (or the first run when edgenn
        // never executes, e.g. on CPU-only platforms).
        if traced_events.is_none() || *name == "edgenn" {
            traced_events = Some(report.events.clone());
        }
        let delta = match baseline_us {
            None => {
                baseline_us = Some(report.total_us);
                String::new()
            }
            Some(base) => format!(
                "  ({:+.1}% vs baseline)",
                (report.total_us - base) / base * 100.0
            ),
        };
        println!(
            "{:<26} {:>12.3} {:>10.2} {:>12.3}{delta}",
            name,
            report.total_us / 1e3,
            report.energy.avg_power_w,
            report.energy.energy_mj
        );
    }
    if let Some(events) = &traced_events {
        obs.write_trace(events)?;
    }
    obs.write_metrics()?;
    Ok(())
}

fn cmd_check(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    let platform = parse_platform(options.value("platform").ok_or("--platform is required")?)?;
    let config = parse_config(options.value("config").unwrap_or("edgenn"))?;

    let mut report = edgenn_check::CheckReport::default();

    // Tier A: the graph itself.
    report.extend(edgenn_check::check_graph(&graph));

    // Tier B: the profile the tuner plans from, then the plan it emits.
    let runtime = Runtime::new(&platform);
    let tuner = Tuner::new(&graph, &runtime).map_err(|e| e.to_string())?;
    report.extend(edgenn_check::check_profile(tuner.stats()));
    let plan = tuner
        .plan(&graph, &runtime, config)
        .map_err(|e| e.to_string())?;
    report.extend(edgenn_check::check_plan(&graph, &plan, &platform));

    // Tier C: one simulated inference, its trace through the
    // happens-before detector, and the report's accounting invariants.
    let sim_report = runtime.simulate(&graph, &plan).map_err(|e| e.to_string())?;
    report.extend(edgenn_check::check_trace_events(
        &sim_report.events,
        &platform,
    ));
    report.extend(edgenn_check::check_report(&sim_report));

    if options.has("lenient") {
        report.downgrade_accounting();
    }

    if options.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.render_table());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "check failed: {} error(s) on {} x {}",
            report.error_count(),
            graph.name(),
            platform.name
        ))
    }
}

fn cmd_inspect(options: &Options) -> Result<(), String> {
    let graph = required_graph(options)?;
    print!("{}", graph.summary());
    let structure = graph.structure().map_err(|e| e.to_string())?;
    if structure.is_pure_chain() {
        println!(
            "
structure: pure chain"
        );
    } else {
        println!(
            "
structure: {} fork-join region(s)",
            structure.parallel_segment_count()
        );
    }
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    println!(
        "{:<12} {:>10} {:>12} {:>8}  structure",
        "model", "layers", "GFLOPs", "params"
    );
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let structure = graph.structure().map_err(|e| e.to_string())?;
        let desc = if structure.is_pure_chain() {
            "chain".to_string()
        } else {
            format!("{} fork-join regions", structure.parallel_segment_count())
        };
        println!(
            "{:<12} {:>10} {:>12.2} {:>7.1}M  {desc}",
            kind.name(),
            graph.len() - 1,
            graph.total_flops() as f64 / 1e9,
            graph.param_bytes() as f64 / 4e6,
        );
    }
    Ok(())
}

fn cmd_platforms() {
    let platforms = [
        edgenn_sim::platforms::jetson_agx_xavier(),
        edgenn_sim::platforms::raspberry_pi_4(),
        edgenn_sim::platforms::dimensity_8100(),
        edgenn_sim::platforms::rtx_2080ti_server(),
        edgenn_sim::platforms::amd_embedded_apu(),
        edgenn_sim::platforms::apple_silicon_m1(),
    ];
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>10}  kind",
        "platform", "cpu GFLOPS", "gpu GFLOPS", "price", "max W"
    );
    for p in platforms {
        let gpu = p
            .gpu
            .as_ref()
            .map_or_else(|| "—".into(), |g| format!("{:.0}", g.peak_gflops));
        let kind = if p.is_integrated() {
            "integrated"
        } else if p.has_gpu() {
            "discrete"
        } else {
            "cpu-only"
        };
        println!(
            "{:<22} {:>12.0} {:>12} {:>8} {:>10.1}  {kind}",
            p.name,
            p.cpu.peak_gflops,
            gpu,
            format!("${}", p.price_usd),
            p.power.power_w(1.0, 1.0),
        );
    }
}
