//! Workspace facade re-exporting the EdgeNN public API.
pub use edgenn_core as core;
pub use edgenn_nn as nn;
pub use edgenn_sim as sim;
pub use edgenn_tensor as tensor;
