//! Cross-crate integration tests: the full pipeline from model builders
//! through the tuner, the analytic runtime, and the functional engine.

use edgenn_core::prelude::*;
use edgenn_core::runtime::{functional, Runtime};
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;

/// Every tiny model, planned by the real tuner, executes functionally to
/// exactly the reference result — the core correctness claim of hybrid
/// execution.
#[test]
fn tuned_hybrid_execution_is_lossless_for_all_models() {
    let jetson = platforms::jetson_agx_xavier();
    let edgenn = EdgeNn::new(&jetson);
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Tiny);
        let plan = edgenn.plan(&graph).unwrap();
        let input = Tensor::random(graph.input_shape().dims(), 1.0, 2024);
        let reference = graph.forward(&input).unwrap();
        let outcome = functional::execute(&graph, &plan, &input).unwrap();
        assert!(
            outcome.output.approx_eq(&reference, 1e-4),
            "{kind}: hybrid output diverged by {}",
            outcome.output.max_abs_diff(&reference).unwrap_or(f32::NAN)
        );
    }
}

/// The paper's central claim (Figure 8): EdgeNN improves on direct GPU
/// execution for every benchmark, and each single design alone also helps.
/// Every report's event stream must also pass the trace validator (no
/// negative durations, no same-processor overlaps).
#[test]
fn edgenn_improves_every_benchmark_at_paper_scale() {
    let jetson = platforms::jetson_agx_xavier();
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let baseline = GpuOnly::new(&jetson).infer(&graph).unwrap();
        let full = EdgeNn::new(&jetson).infer(&graph).unwrap();
        let memory_only = EdgeNn::with_config(&jetson, ExecutionConfig::memory_only())
            .infer(&graph)
            .unwrap();
        for report in [&baseline, &full, &memory_only] {
            edgenn_sim::trace::validate_events(&report.events)
                .unwrap_or_else(|e| panic!("{kind}: invalid trace: {e}"));
        }
        assert!(full.total_us < baseline.total_us, "{kind}: EdgeNN must win");
        assert!(
            memory_only.total_us <= baseline.total_us,
            "{kind}: zero-copy alone must not lose"
        );
        assert!(
            baseline.summary.copy_us > 0.0,
            "{kind}: the baseline must copy"
        );
        assert!(
            full.summary.copy_us < baseline.summary.copy_us,
            "{kind}: EdgeNN must copy less"
        );
    }
}

/// Simulation is a pure function of (graph, plan): bit-identical reports.
#[test]
fn simulation_is_deterministic() {
    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::ResNet18, ModelScale::Paper);
    let runtime = Runtime::new(&jetson);
    let tuner = Tuner::new(&graph, &runtime).unwrap();
    let plan = tuner
        .plan(&graph, &runtime, ExecutionConfig::edgenn())
        .unwrap();
    let a = runtime.simulate(&graph, &plan).unwrap();
    let b = runtime.simulate(&graph, &plan).unwrap();
    assert_eq!(a.total_us, b.total_us);
    assert_eq!(a.events.len(), b.events.len());
    assert_eq!(a.energy.energy_mj, b.energy.energy_mj);
}

/// Plans serialize and deserialize losslessly (deployability: a tuned
/// plan can be persisted on-device and reloaded).
#[test]
fn plans_round_trip_through_json() {
    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
    let runtime = Runtime::new(&jetson);
    let tuner = Tuner::new(&graph, &runtime).unwrap();
    let plan = tuner
        .plan(&graph, &runtime, ExecutionConfig::edgenn())
        .unwrap();
    let json = serde_json::to_string(&plan).unwrap();
    let back: ExecutionPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    // The reloaded plan simulates identically.
    let a = runtime.simulate(&graph, &plan).unwrap();
    let b = runtime.simulate(&graph, &back).unwrap();
    assert_eq!(a.total_us, b.total_us);
}

/// Reports serialize (the figure binaries emit them as JSON).
#[test]
fn inference_reports_serialize() {
    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::LeNet, ModelScale::Paper);
    let report = EdgeNn::new(&jetson).infer(&graph).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: InferenceReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.total_us, report.total_us);
    assert_eq!(back.layers.len(), report.layers.len());
}

/// Cross-platform sanity: the same network is fastest on the server,
/// slower on the integrated device, slowest on the CPU-only edge boards.
#[test]
fn platform_performance_ordering() {
    let jetson = platforms::jetson_agx_xavier();
    let rpi = platforms::raspberry_pi_4();
    let server = platforms::rtx_2080ti_server();
    let graph = build(ModelKind::Vgg16, ModelScale::Paper);

    let on_server = GpuOnly::new(&server).infer(&graph).unwrap();
    let on_jetson = EdgeNn::new(&jetson).infer(&graph).unwrap();
    let on_rpi = CpuOnly::new(&rpi).infer(&graph).unwrap();

    assert!(on_server.total_us < on_jetson.total_us);
    assert!(on_jetson.total_us < on_rpi.total_us);
    // Energy ordering reverses for the server (paper Figure 13).
    assert!(on_jetson.perf_per_watt() > on_server.perf_per_watt());
}

/// The adaptive loop keeps the plan valid and the latency bounded under
/// heavy measurement noise.
#[test]
fn adaptive_loop_is_stable_under_noise() {
    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::AlexNet, ModelScale::Paper);
    let runtime = Runtime::new(&jetson);
    let baseline = GpuOnly::new(&jetson).infer(&graph).unwrap();
    let mut tuner = Tuner::new(&graph, &runtime).unwrap();
    let (plan, history) = tuner
        .adapt(&graph, &runtime, ExecutionConfig::edgenn(), 10, 0.25)
        .unwrap();
    plan.validate(&graph).unwrap();
    assert_eq!(history.len(), 10);
    for (round, t) in history.iter().enumerate() {
        assert!(
            *t < baseline.total_us * 1.05,
            "round {round}: adaptive plan ({t}) regressed past the baseline ({})",
            baseline.total_us
        );
    }
}

/// Forced pathological plans still execute correctly (robustness): every
/// partitionable layer split at an extreme fraction.
#[test]
fn extreme_split_fractions_stay_correct() {
    use edgenn_core::plan::{Assignment, NodePlan};
    use edgenn_sim::AllocStrategy;

    let graph = build(ModelKind::ResNet18, ModelScale::Tiny);
    let input = Tensor::random(graph.input_shape().dims(), 1.0, 9);
    let reference = graph.forward(&input).unwrap();

    for fraction in [0.1, 0.9] {
        let mut nodes = vec![NodePlan::gpu_explicit(); graph.len()];
        for id in graph.topo_order() {
            let node = graph.node(id).unwrap();
            let shapes: Vec<_> = node
                .inputs()
                .iter()
                .map(|i| graph.node(*i).unwrap().output_shape())
                .collect();
            if node.layer().partitionable()
                && node.layer().partition_units(&shapes).unwrap_or(1) >= 2
            {
                nodes[id.index()] = NodePlan {
                    assignment: Assignment::Split {
                        cpu_fraction: fraction,
                    },
                    output_alloc: AllocStrategy::Managed,
                    prefetch_inputs: false,
                };
            }
        }
        let plan = edgenn_core::plan::ExecutionPlan {
            config: ExecutionConfig::edgenn(),
            nodes,
        };
        let outcome = functional::execute(&graph, &plan, &input).unwrap();
        assert!(
            outcome.output.approx_eq(&reference, 1e-4),
            "fraction {fraction}: diverged"
        );
    }
}

/// The observability stack end to end: an observed run mirrors every
/// activity into the sink, decision provenance rides in the report (and
/// its JSON), and the exported chrome trace carries counter tracks.
#[test]
fn observability_spans_the_stack() {
    use edgenn_obs::Recorder;
    use std::sync::Arc;

    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::AlexNet, ModelScale::Paper);
    let recorder = Recorder::new();
    let runtime = Runtime::with_observer(&jetson, Arc::new(recorder.clone()));
    let mut tuner = Tuner::new(&graph, &runtime).unwrap();
    let (plan, _) = tuner
        .adapt(&graph, &runtime, ExecutionConfig::edgenn(), 2, 0.1)
        .unwrap();
    let decisions = tuner.explain(&graph, &runtime, &plan).unwrap();
    let report = runtime
        .simulate(&graph, &plan)
        .unwrap()
        .with_decisions(decisions);

    edgenn_sim::trace::validate_events(&report.events).unwrap();

    // Decision provenance is attached and serializes with the report.
    assert_eq!(report.decisions.len(), graph.len() - 1);
    assert!(report.decisions.iter().all(|d| !d.rationale.is_empty()));
    let json = serde_json::to_string(&report).unwrap();
    let back: InferenceReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.decisions.len(), report.decisions.len());
    assert_eq!(
        back.decisions[0].candidates.len(),
        report.decisions[0].candidates.len()
    );

    // The sink saw kernels, requests, and the tuner's EMA evolution.
    let metrics = recorder.metrics();
    assert!(metrics.counter_value("edgenn_kernel_total").unwrap_or(0.0) > 0.0);
    assert!(
        metrics
            .counter_value("edgenn_requests_total")
            .unwrap_or(0.0)
            >= 3.0
    );
    assert_eq!(metrics.counter_value("edgenn_plan_events_total"), Some(2.0));
    let samples = recorder.counter_samples();
    assert!(samples.iter().any(|s| s.track.starts_with("ema_")));

    // The exported trace carries both span and counter entries.
    let trace = edgenn_sim::trace::to_chrome_trace_with_counters(&report.events, &samples);
    assert!(trace.contains("\"ph\": \"X\""));
    assert!(trace.contains("\"ph\": \"C\""));
    assert!(trace.contains("bandwidth_gbps"));
    assert!(trace.contains("ema_"));
}

/// The facade crate re-exports the full API.
#[test]
fn suite_facade_reexports_work() {
    let platform = edgenn_suite::sim::platforms::jetson_agx_xavier();
    let graph = edgenn_suite::nn::models::build(
        edgenn_suite::nn::models::ModelKind::LeNet,
        edgenn_suite::nn::models::ModelScale::Tiny,
    );
    let report = edgenn_suite::core::baselines::EdgeNn::new(&platform)
        .infer(&graph)
        .unwrap();
    assert!(report.total_us > 0.0);
    let t = edgenn_suite::tensor::Tensor::ones(&[2, 2]);
    assert_eq!(t.sum(), 4.0);
}
