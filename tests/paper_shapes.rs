//! Paper-shape assertions: the qualitative results the paper reports must
//! hold in the reproduction (who wins, in which direction, where the
//! crossovers fall). The quantitative comparison lives in EXPERIMENTS.md
//! and the `edgenn-bench` figure binaries.

use edgenn_core::prelude::*;
use edgenn_sim::platforms;

/// Section IV-B / Figure 10: zero-copy is not universally good — pooling
/// (pure memory traffic) slows down, convolution (compute-bound) does not.
#[test]
fn zero_copy_hurts_bandwidth_bound_layers_only() {
    use edgenn_core::runtime::Runtime;

    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::AlexNet, ModelScale::Paper);
    let runtime = Runtime::new(&jetson);
    let tuner = Tuner::new(&graph, &runtime).unwrap();

    let explicit = runtime
        .simulate(
            &graph,
            &tuner
                .plan(&graph, &runtime, ExecutionConfig::baseline_gpu())
                .unwrap(),
        )
        .unwrap();
    let mut managed_cfg = ExecutionConfig::baseline_gpu();
    managed_cfg.memory_policy = MemoryPolicy::AllManaged;
    let managed = runtime
        .simulate(&graph, &tuner.plan(&graph, &runtime, managed_cfg).unwrap())
        .unwrap();

    for (e, m) in explicit.layers.iter().zip(managed.layers.iter()) {
        match e.class_tag.as_str() {
            "pool" => assert!(
                m.kernel_us > e.kernel_us,
                "{}: pooling must slow down under zero-copy",
                e.name
            ),
            "conv" => assert!(
                (m.kernel_us - e.kernel_us).abs() / e.kernel_us < 0.02,
                "{}: convolution must be unaffected by zero-copy",
                e.name
            ),
            _ => {}
        }
    }
    assert!(
        managed.total_us < explicit.total_us,
        "zero-copy still wins end to end"
    );
}

/// Section IV-D: the tuner's decisions follow the paper's per-class
/// findings — fully-connected layers co-run, the pooling/activation glue
/// follows its chain, and nothing is ever assigned to a nonexistent GPU.
#[test]
fn tuner_decisions_follow_layer_economics() {
    use edgenn_core::plan::Assignment;
    use edgenn_core::runtime::Runtime;
    use edgenn_nn::layer::LayerClass;

    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::AlexNet, ModelScale::Paper);
    let runtime = Runtime::new(&jetson);
    let tuner = Tuner::new(&graph, &runtime).unwrap();
    let plan = tuner
        .plan(&graph, &runtime, ExecutionConfig::edgenn())
        .unwrap();

    let mut fc_corun = 0;
    let mut fc_total = 0;
    for (idx, node) in graph.nodes().iter().enumerate() {
        if node.layer().class() == LayerClass::Fc {
            fc_total += 1;
            if matches!(plan.nodes[idx].assignment, Assignment::Split { .. }) {
                fc_corun += 1;
            }
        }
    }
    assert_eq!(fc_corun, fc_total, "every AlexNet fc layer should co-run");
}

/// Figure 5 / Section V-F: only networks with independent branches profit
/// from inter-kernel co-running.
#[test]
fn inter_kernel_gains_need_branches() {
    let jetson = platforms::jetson_agx_xavier();
    let mem_only = |g: &edgenn_nn::graph::Graph| {
        EdgeNn::with_config(&jetson, ExecutionConfig::memory_only())
            .infer(g)
            .unwrap()
    };
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let base = mem_only(&graph);
        let inter = InterKernelOnly::new(&jetson).infer(&graph).unwrap();
        let gain = inter.improvement_over(&base);
        if kind.has_parallel_branches() {
            assert!(gain >= 0.0, "{kind}: inter-kernel must not lose");
        } else {
            assert!(
                gain.abs() < 0.01,
                "{kind}: a chain network cannot gain from inter-kernel co-running ({gain})"
            );
        }
    }
}

/// Figure 12's crossover: the cloud wins only on the heaviest network.
#[test]
fn cloud_crossover_sits_at_vgg() {
    let jetson = platforms::jetson_agx_xavier();
    let server = platforms::rtx_2080ti_server();
    let edgenn = EdgeNn::new(&jetson);
    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let edge = edgenn.infer(&graph).unwrap();
        let cloud = CloudOffload::new(&server).infer(&graph).unwrap();
        if kind == ModelKind::Vgg16 {
            assert!(
                cloud.total_us < edge.total_us,
                "VGG: the cloud path must win ({} vs {})",
                cloud.total_us,
                edge.total_us
            );
        } else {
            assert!(
                edge.total_us < cloud.total_us,
                "{kind}: the edge must win ({} vs {})",
                edge.total_us,
                cloud.total_us
            );
        }
    }
}

/// Section V-B2: co-running raises both processors' utilization on the
/// integrated device relative to the GPU-only baseline.
#[test]
fn hybrid_execution_raises_cpu_utilization() {
    use edgenn_sim::ProcessorKind;

    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::AlexNet, ModelScale::Paper);
    let baseline = GpuOnly::new(&jetson).infer(&graph).unwrap();
    let edgenn = EdgeNn::new(&jetson).infer(&graph).unwrap();
    assert!(
        edgenn.utilization(ProcessorKind::Cpu) > baseline.utilization(ProcessorKind::Cpu),
        "co-running must occupy the previously idle CPU"
    );
    assert!(edgenn.utilization(ProcessorKind::Gpu) > 0.5);
}

/// Challenge 1: co-running on the shared DRAM costs each processor some
/// bandwidth — a forced 50/50 split of a bandwidth-bound layer is slower
/// than the tuner's optimum.
#[test]
fn tuned_fraction_beats_naive_half_split() {
    use edgenn_core::plan::{Assignment, ExecutionPlan, NodePlan};
    use edgenn_core::runtime::Runtime;
    use edgenn_nn::layer::LayerClass;
    use edgenn_sim::AllocStrategy;

    let jetson = platforms::jetson_agx_xavier();
    let graph = build(ModelKind::Fcnn, ModelScale::Paper);
    let runtime = Runtime::new(&jetson);
    let tuner = Tuner::new(&graph, &runtime).unwrap();
    let tuned = tuner
        .plan(&graph, &runtime, ExecutionConfig::edgenn())
        .unwrap();
    let tuned_report = runtime.simulate(&graph, &tuned).unwrap();

    // Same structure, but fc splits forced to 50/50.
    let mut naive = tuned.clone();
    for (idx, node) in graph.nodes().iter().enumerate() {
        if node.layer().class() == LayerClass::Fc {
            naive.nodes[idx] = NodePlan {
                assignment: Assignment::Split { cpu_fraction: 0.5 },
                output_alloc: AllocStrategy::Managed,
                prefetch_inputs: false,
            };
        }
    }
    let naive = ExecutionPlan {
        config: tuned.config,
        nodes: naive.nodes,
    };
    let naive_report = runtime.simulate(&graph, &naive).unwrap();
    assert!(
        tuned_report.total_us <= naive_report.total_us,
        "Eq. (4)'s fraction ({}) must beat a blind 50/50 ({})",
        tuned_report.total_us,
        naive_report.total_us
    );
}

/// Section IV-B: "the usage of CUDA unified memory brings no benefit for
/// the discrete architecture due to the PCIe transmission overhead" —
/// all-managed allocation must not beat explicit copies on the 2080 Ti,
/// while it clearly does on the integrated device.
#[test]
fn managed_memory_only_pays_on_integrated_architectures() {
    use edgenn_core::runtime::Runtime;

    let jetson = platforms::jetson_agx_xavier();
    let server = platforms::rtx_2080ti_server();
    let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);

    let run = |platform: &edgenn_sim::Platform, policy: MemoryPolicy| {
        let runtime = Runtime::new(platform);
        let tuner = Tuner::new(&graph, &runtime).unwrap();
        let mut config = ExecutionConfig::baseline_gpu();
        config.memory_policy = policy;
        let plan = tuner.plan(&graph, &runtime, config).unwrap();
        runtime.simulate(&graph, &plan).unwrap().total_us
    };

    let jetson_gain = (run(&jetson, MemoryPolicy::AllExplicit)
        - run(&jetson, MemoryPolicy::AllManaged))
        / run(&jetson, MemoryPolicy::AllExplicit);
    let server_gain = (run(&server, MemoryPolicy::AllExplicit)
        - run(&server, MemoryPolicy::AllManaged))
        / run(&server, MemoryPolicy::AllExplicit);

    assert!(
        jetson_gain > 0.02,
        "zero-copy must help the integrated SoC ({jetson_gain})"
    );
    assert!(
        server_gain < jetson_gain,
        "zero-copy must pay less on PCIe ({server_gain} vs {jetson_gain})"
    );
}
