//! Offline drop-in subset of the `serde_json` API, backed by the
//! vendored [`serde`] crate's [`Value`] tree.
//!
//! Provides the exact call surface the EdgeNN workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`],
//! [`from_slice`], [`from_value`], and the [`Value`]/[`Map`] types with
//! serde_json-style indexing and comparisons.

#![warn(missing_docs)]

pub use serde::{Map, Value};

use serde::{Deserialize, Serialize};

/// Serialization/deserialization error (message-only, like serde_json's
/// for the purposes of this workspace: callers only `Display` it).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self { msg: e.to_string() }
    }
}

/// Crate-wide result alias, mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
/// Never fails in this implementation; the `Result` keeps the
/// serde_json-compatible signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes to compact JSON text.
///
/// # Errors
/// Never fails in this implementation (non-finite floats are encoded as
/// strings rather than rejected).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string())
}

/// Serializes to pretty (two-space indented) JSON text.
///
/// # Errors
/// Never fails in this implementation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = Value::parse_json(text).map_err(|msg| Error { msg })?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes (must be UTF-8) into any deserializable type.
///
/// # Errors
/// Fails on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error {
        msg: format!("invalid utf-8: {e}"),
    })?;
    from_str(text)
}

/// Reinterprets a [`Value`] tree as any deserializable type.
///
/// # Errors
/// Fails on a shape mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v: Value =
            from_str(r#"{"total_us": 12.5, "model": "LeNet", "layers": [1, 2]}"#).unwrap();
        assert_eq!(v["model"], "LeNet");
        assert_eq!(v["total_us"].as_f64(), Some(12.5));
        assert_eq!(v["layers"].as_array().unwrap().len(), 2);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_slice_matches_from_str() {
        let a: Value = from_slice(br#"{"x": 1}"#).unwrap();
        let b: Value = from_str(r#"{"x": 1}"#).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn typed_collections_round_trip() {
        let rows = vec![
            ("a".to_string(), vec![1.0f64, 2.0]),
            ("b".to_string(), vec![3.0]),
        ];
        let text = to_string(&rows).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }
}
