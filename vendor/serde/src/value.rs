//! The JSON document tree: [`Value`] and the insertion-ordered [`Map`].

use crate::json;

/// A JSON value.
///
/// Numbers are stored as `f64` (every numeric field in this workspace
/// fits the 53-bit integer lattice); integral values print without a
/// fractional part, matching serde_json's output for integer types.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Map),
}

/// A JSON object that preserves insertion order.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl PartialEq for Map {
    /// Order-insensitive equality: two objects are equal when they hold
    /// the same key set with equal values.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl Value {
    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The integral content, if this is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The non-negative integral content, if this is a whole number ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup that tolerates non-objects (returns `None`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// Array element lookup that tolerates non-arrays (returns `None`).
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|items| items.get(index))
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        json::write_compact(self)
    }

    /// Pretty JSON text (two-space indentation, serde_json style).
    pub fn to_json_string_pretty(&self) -> String {
        json::write_pretty(self)
    }

    /// Parses JSON text.
    ///
    /// # Errors
    /// Returns a message describing the first syntax error.
    pub fn parse_json(text: &str) -> Result<Value, String> {
        json::parse(text)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing keys and non-objects index to `Null`, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Out-of-range and non-arrays index to `Null`, like serde_json.
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! value_eq_number {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map)
    }
}

macro_rules! value_from_number {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(n: $ty) -> Self {
                Value::Number(n as f64)
            }
        }
    )*};
}

value_from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_tolerates_missing_paths() {
        let mut map = Map::new();
        map.insert("a", Value::Number(1.0));
        let v = Value::Object(map);
        assert_eq!(v["a"], 1);
        assert!(v["missing"].is_null());
        assert!(v["missing"]["deeper"][3].is_null());
    }

    #[test]
    fn object_equality_ignores_order() {
        let mut a = Map::new();
        a.insert("x", Value::Number(1.0));
        a.insert("y", Value::Number(2.0));
        let mut b = Map::new();
        b.insert("y", Value::Number(2.0));
        b.insert("x", Value::Number(1.0));
        assert_eq!(Value::Object(a), Value::Object(b));
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("k", Value::Number(1.0));
        let old = m.insert("k", Value::Number(2.0));
        assert_eq!(old, Some(Value::Number(1.0)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&Value::Number(2.0)));
    }
}
