//! JSON text encoding and decoding for [`Value`].

use crate::value::{Map, Value};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Printing.
// ---------------------------------------------------------------------

/// Compact (single-line) JSON.
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Pretty JSON with two-space indentation.
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Largest f64 below which every integer is exactly representable.
const EXACT_INT_LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Value::Number is only built from finite floats by the Serialize
        // impls; guard direct constructions anyway.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < EXACT_INT_LIMIT {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes or quotes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), String> {
        let c = self.peek().ok_or("unterminated escape")?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX low half.
                    if !(self.eat_literal("\\u")) {
                        return Err("lone high surrogate".to_string());
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err("invalid low surrogate".to_string());
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or("invalid unicode escape")?);
            }
            other => return Err(format!("invalid escape '\\{}'", other as char)),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated unicode escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid unicode escape".to_string())?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| "invalid unicode escape".to_string())
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"c":"hi\nthere","d":null,"e":true}}"#;
        let value = parse(text).unwrap();
        assert_eq!(value["a"][2], -300.0);
        assert_eq!(value["b"]["c"], "hi\nthere");
        assert!(value["b"]["d"].is_null());
        assert_eq!(value["b"]["e"], true);
        let reparsed = parse(&write_compact(&value)).unwrap();
        assert_eq!(reparsed, value);
        let repretty = parse(&write_pretty(&value)).unwrap();
        assert_eq!(repretty, value);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(write_compact(&Value::Number(2.0)), "2");
        assert_eq!(write_compact(&Value::Number(2.5)), "2.5");
        assert_eq!(write_compact(&Value::Number(-0.125)), "-0.125");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::String("line1\nline2\t\"quoted\" \\ \u{1}".to_string());
        let text = write_compact(&original);
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""A😀""#).unwrap(), "A\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn pretty_format_matches_serde_json_shape() {
        let value = parse(r#"{"a":1,"b":[true]}"#).unwrap();
        assert_eq!(
            write_pretty(&value),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}"
        );
    }
}
