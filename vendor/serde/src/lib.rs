//! Offline drop-in subset of the `serde` API.
//!
//! The EdgeNN workspace must build with no network access, so instead of
//! the crates.io `serde` it vendors this minimal implementation. It keeps
//! the *names* the workspace imports (`serde::Serialize`,
//! `serde::Deserialize`, `#[derive(Serialize, Deserialize)]`) but uses a
//! simpler trait shape: serialization goes through an owned JSON
//! [`Value`] tree rather than a streaming `Serializer`. Every derived
//! type in this workspace is a named-field struct or a unit/struct-variant
//! enum, and the produced JSON matches serde's default externally-tagged
//! representation, so documents are interchangeable with real serde.
//!
//! Non-finite floats (which real serde_json refuses to emit) are encoded
//! as the strings `"NaN"`, `"Infinity"`, and `"-Infinity"` and decoded
//! back, so reports from CPU-only platforms (infinite GPU times)
//! round-trip losslessly.

#![warn(missing_docs)]

mod json;
mod value;

pub use value::{Map, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Wraps `inner` with the location (`Type.field`) it occurred at.
    pub fn context(at: &str, inner: Error) -> Self {
        Self {
            msg: format!("{at}: {}", inner.msg),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a JSON [`Value`].
pub trait Serialize {
    /// Builds the JSON representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    ///
    /// # Errors
    /// Returns an [`Error`] when `value` has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and containers.
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else if self.is_nan() {
            Value::String("NaN".to_string())
        } else if *self > 0.0 {
            Value::String("Infinity".to_string())
        } else {
            Value::String("-Infinity".to_string())
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! deserialize_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_f64().ok_or_else(|| Error::custom("expected number"))?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(format!("expected integer, got {n}")));
                }
                Ok(n as $ty)
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(*n),
            Value::String(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "Infinity" => Ok(f64::INFINITY),
                "-Infinity" => Ok(f64::NEG_INFINITY),
                other => Err(Error::custom(format!(
                    "expected number, got string '{other}'"
                ))),
            },
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|n| n as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 2-tuple array"))?;
        if items.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2 elements, got {}",
                items.len()
            )));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 3-tuple array"))?;
        if items.len() != 3 {
            return Err(Error::custom(format!(
                "expected 3 elements, got {}",
                items.len()
            )));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let back = f64::from_value(&v.to_value()).unwrap();
            assert_eq!(back.is_nan(), v.is_nan());
            if !v.is_nan() {
                assert_eq!(back, v);
            }
        }
    }

    #[test]
    fn fractional_numbers_are_not_integers() {
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
    }

    #[test]
    fn tuples_serialize_as_arrays() {
        let v = ("row".to_string(), vec![1.0f64, 2.0]).to_value();
        assert_eq!(v[0], "row");
        assert_eq!(v[1][1], 2.0);
        let back: (String, Vec<f64>) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back.0, "row");
    }
}
