//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` crate.
//!
//! Implemented with hand-rolled token walking instead of `syn`/`quote` so
//! the workspace builds with zero registry dependencies. Supports exactly
//! the shapes this workspace derives on:
//!
//! - structs with named fields
//! - enums with unit variants and struct (named-field) variants
//!
//! Generated JSON follows serde's default externally-tagged convention:
//! structs become objects, unit variants become `"Variant"`, and struct
//! variants become `{"Variant": {..fields..}}`. Generics, tuple structs,
//! and `#[serde(...)]` attributes are intentionally unsupported and fail
//! with a clear compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Fields of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the vendored trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(msg) => return compile_error(&msg),
    };
    let code = match &shape {
        Shape::Struct { name, fields } => serialize_struct(name, fields),
        Shape::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (the vendored trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(msg) => return compile_error(&msg),
    };
    let code = match &shape {
        Shape::Struct { name, fields } => deserialize_struct(name, fields),
        Shape::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("compile_error must parse")
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored): generic type `{name}` is not supported"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Err(format!(
                "serde derive (vendored): tuple struct `{name}` is not supported"
            )),
            _ => Ok(Shape::Struct {
                name,
                fields: Fields::Unit,
            }),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            _ => Err(format!("serde derive (vendored): malformed enum `{name}`")),
        },
        other => Err(format!(
            "serde derive (vendored): cannot derive on `{other}`"
        )),
    }
}

/// Skips any number of `#[...]` attributes at `tokens[*i]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#')
        && matches!(tokens.get(*i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
    {
        *i += 2;
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` at `tokens[*i]`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "serde derive (vendored): expected identifier, found {other:?}"
        )),
    }
}

/// Parses `name: Type, ...` inside a brace group, returning field names.
/// Types are skipped, not parsed: the generated code never needs them
/// because `from_value`'s target type is inferred from the struct literal.
fn parse_named_fields(group: &Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde derive (vendored): expected ':' after field `{name}`"
                ))
            }
        }
        // Skip the type: angle brackets are the only grouping that is not
        // already a single token tree (parens/brackets/braces are Groups).
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Parses enum variants inside a brace group.
fn parse_variants(group: &Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde derive (vendored): tuple variant `{name}` is not supported"
                ));
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation. Impls are built as strings and re-parsed; all paths
// are fully qualified so the output works in any module.
// ---------------------------------------------------------------------

const IMPL_HEADER: &str = "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n";

fn named(fields: &Fields) -> &[String] {
    match fields {
        Fields::Named(names) => names,
        Fields::Unit => &[],
    }
}

/// Emits statements serializing `fields` (accessed via `prefix`) into a
/// fresh `Map` named `map`.
fn serialize_fields_into(out: &mut String, fields: &[String], prefix: &str) {
    out.push_str("let mut map = ::serde::Map::new();\n");
    for field in fields {
        let _ = writeln!(
            out,
            "map.insert(\"{field}\", ::serde::Serialize::to_value({prefix}{field}));"
        );
    }
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let mut out = String::from(IMPL_HEADER);
    let _ = writeln!(out, "impl ::serde::Serialize for {name} {{");
    out.push_str("fn to_value(&self) -> ::serde::Value {\n");
    serialize_fields_into(&mut out, named(fields), "&self.");
    out.push_str("::serde::Value::Object(map)\n}\n}\n");
    out
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from(IMPL_HEADER);
    let _ = writeln!(out, "impl ::serde::Serialize for {name} {{");
    out.push_str("fn to_value(&self) -> ::serde::Value {\nmatch self {\n");
    for variant in variants {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                let _ = writeln!(
                    out,
                    "Self::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                );
            }
            Fields::Named(fields) => {
                let bindings = fields.join(", ");
                let _ = writeln!(out, "Self::{vname} {{ {bindings} }} => {{");
                serialize_fields_into(&mut out, fields, "");
                out.push_str("let mut tagged = ::serde::Map::new();\n");
                let _ = writeln!(
                    out,
                    "tagged.insert(\"{vname}\", ::serde::Value::Object(map));"
                );
                out.push_str("::serde::Value::Object(tagged)\n},\n");
            }
        }
    }
    out.push_str("}\n}\n}\n");
    out
}

/// Emits a struct-literal body `{ field: ..., }` reading each field out
/// of the object expression `obj`, attributing errors to `context`.
fn deserialize_fields_literal(out: &mut String, fields: &[String], context: &str) {
    out.push_str("{\n");
    for field in fields {
        let _ = writeln!(
            out,
            "{field}: ::serde::Deserialize::from_value(obj.get(\"{field}\")\
             .unwrap_or(&::serde::Value::Null))\
             .map_err(|e| ::serde::Error::context(\"{context}.{field}\", e))?,"
        );
    }
    out.push_str("}\n");
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let mut out = String::from(IMPL_HEADER);
    let _ = writeln!(out, "impl ::serde::Deserialize for {name} {{");
    out.push_str(
        "fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {\n",
    );
    let _ = writeln!(
        out,
        "let obj = value.as_object().ok_or_else(|| \
         ::serde::Error::custom(\"expected object for {name}\"))?;"
    );
    out.push_str("Ok(Self ");
    deserialize_fields_literal(&mut out, named(fields), name);
    out.push_str(")\n}\n}\n");
    out
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .collect();
    let data: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Named(_)))
        .collect();

    let mut out = String::from(IMPL_HEADER);
    let _ = writeln!(out, "impl ::serde::Deserialize for {name} {{");
    out.push_str(
        "fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {\n",
    );
    if !unit.is_empty() {
        out.push_str("if let Some(tag) = value.as_str() {\nreturn match tag {\n");
        for variant in &unit {
            let _ = writeln!(out, "\"{0}\" => Ok(Self::{0}),", variant.name);
        }
        let _ = writeln!(
            out,
            "other => Err(::serde::Error::custom(format!(\
             \"unknown {name} variant '{{other}}'\"))),\n}};\n}}"
        );
    }
    if !data.is_empty() {
        out.push_str("if let Some(tagged) = value.as_object() {\n");
        for variant in &data {
            let vname = &variant.name;
            let _ = writeln!(out, "if let Some(inner) = tagged.get(\"{vname}\") {{");
            let _ = writeln!(
                out,
                "let obj = inner.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;"
            );
            let _ = write!(out, "return Ok(Self::{vname} ");
            deserialize_fields_literal(
                &mut out,
                named(&variant.fields),
                &format!("{name}::{vname}"),
            );
            out.push_str(");\n}\n");
        }
        out.push_str("}\n");
    }
    let _ = writeln!(
        out,
        "Err(::serde::Error::custom(format!(\"invalid {name} value: {{value}}\")))\n}}\n}}"
    );
    out
}
