//! Offline drop-in subset of the `rand` crate API.
//!
//! The EdgeNN workspace must build with no network access, so instead of
//! the crates.io `rand` it vendors this minimal implementation covering
//! exactly the surface the workspace uses:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen_range`] over integer/float ranges
//! - [`Rng::gen_bool`]
//! - [`distributions::Uniform`] + [`distributions::Distribution::sample`]
//!
//! The generator is xoshiro256** seeded through splitmix64 — fast,
//! well-distributed, and deterministic per seed. It is **not** the same
//! stream as the crates.io `StdRng` (ChaCha12); nothing in this workspace
//! asserts specific draws, only determinism and statistical shape.

#![warn(missing_docs)]

/// Low-level uniform word source implemented by every generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits onto a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give the full double-precision lattice in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that know how to sample themselves from a generator.
pub trait SampleRange<T> {
    /// Draws one uniform value out of `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; the modulo bias over a
                // 64-bit word is negligible for the span sizes used here.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's default generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed through splitmix64 so that consecutive
            // small seeds yield uncorrelated streams.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions sampled with an explicit generator.
pub mod distributions {
    use super::{RngCore, SampleRange};

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[low, high)`.
        ///
        /// # Panics
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform requires low < high");
            Self { low, high }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (self.low..self.high).sample_from(rng)
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (self.low..self.high).sample_from(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let draws_a: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let x = rng.gen_range(3..9u32);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let z = rng.gen_range(f64::EPSILON..1.0);
            assert!(z > 0.0 && z < 1.0);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_distribution_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = Uniform::new(-0.5f32, 0.5f32);
        for _ in 0..1_000 {
            let v = dist.sample(&mut rng);
            assert!((-0.5..0.5).contains(&v));
        }
    }
}
