#!/usr/bin/env sh
# Repository CI gate. Run from the repo root:
#   ./ci.sh
#
# 1. formatting        (cargo fmt --check)
# 2. lints             (cargo clippy, warnings are errors)
# 3. tier-1            (release build + root-package tests)
# 4. full test suite   (every workspace crate)
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "CI OK"
