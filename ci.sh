#!/usr/bin/env sh
# Repository CI gate. Run from the repo root:
#   ./ci.sh
#
# 1. formatting        (cargo fmt --check)
# 2. lints             (cargo clippy, warnings are errors)
# 3. tier-1            (release build + root-package tests)
# 4. full test suite   (every workspace crate)
# 5. static checker    (edgenn check over every bundled model x platform)
# 6. functional bench  (smoke run + schema check + regression gate)
# 7. fault storm       (seeded Monte-Carlo resilience smoke, 100% survival)
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> edgenn check: every model x platform"
# Every diagnostic report is archived as JSON; any error-severity
# diagnostic fails the gate (the CLI exits non-zero on errors).
cargo build --release -p edgenn-cli
CHECK_DIR=target/check
mkdir -p "$CHECK_DIR"
for model in fcnn lenet alexnet vgg squeezenet resnet; do
    for platform in jetson rpi phone server apu apple; do
        # GPU-less platforms take the CPU-only config; the tuner
        # (correctly) refuses to plan GPU work for them.
        case "$platform" in
            rpi|phone) config=cpu-only ;;
            *)         config=edgenn ;;
        esac
        out="$CHECK_DIR/$model-$platform.json"
        if ! ./target/release/edgenn check \
                --model "$model" --platform "$platform" --config "$config" \
                --json > "$out"; then
            echo "check FAILED for $model on $platform (see $out)"
            exit 1
        fi
    done
done
echo "    36/36 clean; reports archived in $CHECK_DIR/"

echo "==> functional bench: smoke run, schema check, regression gate"
# A short measurement of the real execution engine. The gate compares
# each model's hybrid/reference time *ratio* against the committed
# baseline (BENCH_functional.json), so it is machine-portable: a >25%
# relative regression of the engine over the raw kernels fails CI.
cargo build --release -p edgenn-bench
./target/release/bench_functional validate BENCH_functional.json
./target/release/bench_functional run --smoke --out target/BENCH_functional_smoke.json
./target/release/bench_functional validate target/BENCH_functional_smoke.json
./target/release/bench_functional gate \
    target/BENCH_functional_smoke.json BENCH_functional.json --slack 0.25

echo "==> fault storm: seeded resilience smoke (6 models x APU)"
# Every run injects a seeded random fault plan; the gate requires 100%
# survival (no panics, checker-clean recovery traces including the
# EC04x codes, and functional output bitwise identical to the
# fault-free reference). The CLI exits non-zero below 100% survival.
STORM_DIR=target/storm
mkdir -p "$STORM_DIR"
./target/release/edgenn storm --platform apu --seed 42 --runs 25 \
    --out "$STORM_DIR/storm-apu.json"
echo "    storm summary archived in $STORM_DIR/"

echo "CI OK"
