#!/usr/bin/env sh
# Repository CI gate. Run from the repo root:
#   ./ci.sh
#
# 1. formatting        (cargo fmt --check)
# 2. lints             (cargo clippy, warnings are errors)
# 3. tier-1            (release build + root-package tests)
# 4. full test suite   (every workspace crate)
# 5. graph compiler    (edgenn compile over every model x platform:
#                       per-pass deltas, EC06x rewrite legality, tier A+B)
# 6. static checker    (edgenn check over every bundled model x platform)
# 7. tier-D analyzer   (edgenn analyze over the same 36 combos: ownership
#                       proof, schedule explorer, measured<=certified gate)
# 8. functional bench  (smoke run + schema check + regression gate)
# 9. fault storm       (seeded Monte-Carlo resilience smoke, 100% survival)
# 10. siege            (seeded multi-tenant serving gate: faults armed,
#                       100% survival of admitted work, EC07x checker-clean)
# 11. flight recorder  (profile two models, validate Perfetto output,
#                       recorder-overhead gate at <=5%)
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> edgenn compile: rewrite legality (EC06x) on every model x platform"
# The graph compiler's per-pass node/edge deltas are archived as JSON;
# each compiled graph is re-verified with check_compiled (EC060-EC063)
# plus tier A, and must still plan cleanly (tier B) on its platform.
# The CLI exits non-zero on any error-severity diagnostic.
cargo build --release -p edgenn-cli
COMPILE_DIR=target/compile
mkdir -p "$COMPILE_DIR"
for model in fcnn lenet alexnet vgg squeezenet resnet; do
    for platform in jetson rpi phone server apu apple; do
        case "$platform" in
            rpi|phone) config=cpu-only ;;
            *)         config=edgenn ;;
        esac
        out="$COMPILE_DIR/$model-$platform.json"
        if ! ./target/release/edgenn compile \
                --model "$model" --platform "$platform" --config "$config" \
                --json > "$out"; then
            echo "compile FAILED for $model on $platform (see $out)"
            exit 1
        fi
    done
done
echo "    36/36 legal rewrites; reports archived in $COMPILE_DIR/"

echo "==> edgenn check: every model x platform"
# Every diagnostic report is archived as JSON; any error-severity
# diagnostic fails the gate (the CLI exits non-zero on errors).
cargo build --release -p edgenn-cli
CHECK_DIR=target/check
mkdir -p "$CHECK_DIR"
for model in fcnn lenet alexnet vgg squeezenet resnet; do
    for platform in jetson rpi phone server apu apple; do
        # GPU-less platforms take the CPU-only config; the tuner
        # (correctly) refuses to plan GPU work for them.
        case "$platform" in
            rpi|phone) config=cpu-only ;;
            *)         config=edgenn ;;
        esac
        out="$CHECK_DIR/$model-$platform.json"
        if ! ./target/release/edgenn check \
                --model "$model" --platform "$platform" --config "$config" \
                --json > "$out"; then
            echo "check FAILED for $model on $platform (see $out)"
            exit 1
        fi
    done
done
echo "    36/36 clean; reports archived in $CHECK_DIR/"

echo "==> edgenn analyze: tier-D ownership + explorer + conformance, 72 combos"
# The analyzer proves the zero-copy/write-once contracts on the lowered
# buffer schedule (EC05x), exhaustively explores the worker pool's
# interleavings, and — with --functional — gates the engine's measured
# slot/arena high-water marks against the statically certified bound.
# Both precisions run: the int8 kernels acquire i8/i16 scratch the f32
# path never touches, and the certified bound must dominate either way.
# The CLI exits non-zero on any diagnostic, explorer violation, or
# measured > certified.
ANALYZE_DIR=target/analyze
mkdir -p "$ANALYZE_DIR"
for model in fcnn lenet alexnet vgg squeezenet resnet; do
    for platform in jetson rpi phone server apu apple; do
        case "$platform" in
            rpi|phone) config=cpu-only ;;
            *)         config=edgenn ;;
        esac
        for precision in f32 int8; do
            out="$ANALYZE_DIR/$model-$platform-$precision.json"
            if ! ./target/release/edgenn analyze \
                    --model "$model" --platform "$platform" --config "$config" \
                    --precision "$precision" \
                    --scale tiny --functional --json > "$out"; then
                echo "analyze FAILED for $model on $platform ($precision, see $out)"
                exit 1
            fi
        done
    done
done
echo "    72/72 certified; reports archived in $ANALYZE_DIR/"

echo "==> functional bench: smoke run, schema check, regression + drop gates"
# A short measurement of the real execution engine in BOTH precisions
# (schema v3: every model carries an f32 and an int8 row). The gate
# compares each (model, precision) hybrid/reference time *ratio*
# against the committed baseline (BENCH_functional.json), so it is
# machine-portable: a >25% relative regression of the engine over the
# raw kernels fails CI in either precision. The drops gate requires
# flight_dropped == 0 on every row — the executor sizes the recorder's
# rings from the node count, and any drop means that estimate regressed.
cargo build --release -p edgenn-bench
./target/release/bench_functional validate BENCH_functional.json
./target/release/bench_functional drops BENCH_functional.json
./target/release/bench_functional run --smoke --out target/BENCH_functional_smoke.json
./target/release/bench_functional validate target/BENCH_functional_smoke.json
./target/release/bench_functional gate \
    target/BENCH_functional_smoke.json BENCH_functional.json --slack 0.25
./target/release/bench_functional drops target/BENCH_functional_smoke.json

echo "==> fault storm: seeded resilience smoke (6 models x APU)"
# Every run injects a seeded random fault plan; the gate requires 100%
# survival (no panics, checker-clean recovery traces including the
# EC04x codes, and functional output bitwise identical to the
# fault-free reference). The CLI exits non-zero below 100% survival.
STORM_DIR=target/storm
mkdir -p "$STORM_DIR"
./target/release/edgenn storm --platform apu --seed 42 --runs 25 \
    --out "$STORM_DIR/storm-apu.json"
echo "    storm summary archived in $STORM_DIR/"

echo "==> siege: seeded multi-tenant serving gate (2 tenants x 2 models, faults on)"
# The deterministic load generator drives the serving front end (admission
# control, bounded queue, weighted-fair batching, SLO degradation) in
# virtual time with fault injection armed. The gate requires 100% survival
# of admitted requests, zero lost requests, every completed output bitwise
# identical to its reference, the queue bound respected, and the full
# admission log replaying clean through the EC07x checker tier. The CLI
# exits non-zero on any violation; the report (including the event log)
# is archived for forensics.
SIEGE_DIR=target/siege
mkdir -p "$SIEGE_DIR"
./target/release/edgenn siege --seed 42 --duration-us 60000 \
    --out "$SIEGE_DIR/siege-jetson.json"
echo "    siege report archived in $SIEGE_DIR/"

echo "==> flight recorder: profile two models, perfetto traces, overhead gate"
# `edgenn profile` runs the functional engine with the flight recorder
# on, verifies the recorded spans through the tier-C checker (a dirty
# timeline exits non-zero), and re-parses the Perfetto trace it wrote
# before reporting success. See docs/profiling.md.
PROF_DIR=target/profile
mkdir -p "$PROF_DIR"
./target/release/edgenn profile squeezenet --platform apu --runs 2 \
    --perfetto "$PROF_DIR/squeezenet-apu.json" > "$PROF_DIR/squeezenet-apu.txt"
./target/release/edgenn profile resnet --platform jetson --runs 2 \
    --perfetto "$PROF_DIR/resnet-jetson.json" > "$PROF_DIR/resnet-jetson.txt"
for trace in "$PROF_DIR/squeezenet-apu.json" "$PROF_DIR/resnet-jetson.json"; do
    # Belt and braces on top of the CLI's own re-parse: the archived
    # artifact must name both timelines it promises to hold.
    for process in '"simulated (analytic model)"' '"measured (flight recorder)"'; do
        if ! grep -q "$process" "$trace"; then
            echo "perfetto trace $trace is missing the $process process"
            exit 1
        fi
    done
done
# The recorder-overhead gate bounds sum(recorder on)/sum(recorder off)
# at 5% across all bundled models, measured in one interleaved loop.
# Perf gates on shared hardware are probabilistic: a fresh process
# re-rolls memory placement, so retry up to three times and fail only
# if every attempt exceeds the budget (docs/profiling.md).
overhead_ok=0
for attempt in 1 2 3; do
    if ./target/release/bench_functional overhead --smoke --budget 0.05; then
        overhead_ok=1
        break
    fi
    echo "    overhead gate attempt $attempt over budget; retrying"
done
if [ "$overhead_ok" -ne 1 ]; then
    echo "flight recorder overhead gate failed all 3 attempts"
    exit 1
fi
echo "    profiles and traces archived in $PROF_DIR/"

echo "CI OK"
