//! Smart-camera scenario: the AIoT workload the paper's introduction
//! motivates — image classification directly on the edge device instead
//! of shipping frames to the cloud.
//!
//! A simulated camera produces frames; each frame is classified with
//! SqueezeNet (the paper's edge-friendly CNN) on the integrated device,
//! and the run is checked against a per-frame latency budget and a power
//! envelope. Real tensor arithmetic runs for a tiny variant to show the
//! classifications; the paper-scale latency/energy numbers come from the
//! calibrated simulator.
//!
//! ```bash
//! cargo run --release --example smart_camera
//! ```

use edgenn_core::prelude::*;
use edgenn_core::runtime::functional;
use edgenn_sim::platforms;
use edgenn_tensor::Tensor;

/// Synthesizes a "frame": a deterministic pseudo-random CHW image.
fn capture_frame(shape: &[usize], frame_no: u64) -> Tensor {
    Tensor::random(shape, 1.0, 0xCA_4E_5A ^ frame_no)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jetson = platforms::jetson_agx_xavier();
    let edgenn = EdgeNn::new(&jetson);

    // --- Capacity planning at paper scale ------------------------------
    let paper_model = build(ModelKind::SqueezeNet, ModelScale::Paper);
    let report = edgenn.infer(&paper_model)?;
    let fps = 1e6 / report.total_us;
    println!("SqueezeNet on {}:", jetson.name);
    println!(
        "  latency      : {:.2} ms/frame ({fps:.1} fps)",
        report.total_us / 1e3
    );
    println!("  avg power    : {:.1} W", report.energy.avg_power_w);
    println!("  energy/frame : {:.2} mJ", report.energy.energy_mj);
    println!(
        "  utilization  : CPU {:.0}% / GPU {:.0}%",
        report.energy.cpu_utilization * 100.0,
        report.energy.gpu_utilization * 100.0
    );

    let budget_ms = 50.0; // a 20 fps camera
    assert!(
        report.total_us / 1e3 <= budget_ms,
        "cannot hold the {budget_ms} ms frame budget"
    );
    println!("  frame budget : {budget_ms} ms -> OK\n");

    // --- Actual classification on the tiny variant ---------------------
    let model = build(ModelKind::SqueezeNet, ModelScale::Tiny);
    let plan = edgenn.plan(&model)?;
    println!("classifying 5 frames (tiny variant, real arithmetic):");
    for frame_no in 0..5 {
        let frame = capture_frame(model.input_shape().dims(), frame_no);
        let outcome = functional::execute(&model, &plan, &frame)?;
        let class = outcome.output.argmax().expect("non-empty scores");
        let confidence = outcome.output.as_slice()[class];

        // The hybrid result must match the single-threaded reference.
        let reference = model.forward(&frame)?;
        assert_eq!(
            reference.argmax(),
            Some(class),
            "hybrid execution changed the answer"
        );

        println!(
            "  frame {frame_no}: class {class:2} (p = {confidence:.3}), \
             {} layers co-run, {} fire modules in parallel",
            outcome.corun_layers, outcome.parallel_regions
        );
    }
    Ok(())
}
