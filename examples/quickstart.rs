//! Quickstart: run EdgeNN on the simulated Jetson AGX Xavier and compare
//! it with direct GPU execution — the paper's headline experiment in a
//! dozen lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use edgenn_core::prelude::*;
use edgenn_sim::platforms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jetson = platforms::jetson_agx_xavier();
    println!("platform: {} (${})", jetson.name, jetson.price_usd);
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>8} {:>8}",
        "model", "baseline us", "edgenn us", "gain %", "co-run", "managed"
    );

    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);

        // The paper's baseline: the original programs, GPU only, explicit
        // memory with host-orchestrated copies.
        let baseline = GpuOnly::new(&jetson).infer(&graph)?;

        // EdgeNN: semantic-aware memory + inter/intra-kernel co-running,
        // planned by the fine-grained adaptive tuner.
        let edgenn = EdgeNn::new(&jetson);
        let plan = edgenn.plan(&graph)?;
        let report = edgenn.infer(&graph)?;

        println!(
            "{:<12} {:>12.0} {:>12.0} {:>8.1}% {:>8} {:>8}",
            kind.name(),
            baseline.total_us,
            report.total_us,
            report.improvement_over(&baseline) * 100.0,
            plan.corun_count(),
            plan.managed_count(),
        );
    }

    // The hybrid execution is numerically lossless: run the real tensors.
    let graph = build(ModelKind::SqueezeNet, ModelScale::Tiny);
    let plan = EdgeNn::new(&jetson).plan(&graph)?;
    let input = edgenn_tensor::Tensor::random(graph.input_shape().dims(), 1.0, 42);
    let reference = graph.forward(&input)?;
    let outcome = edgenn_core::runtime::functional::execute(&graph, &plan, &input)?;
    assert!(outcome.output.approx_eq(&reference, 1e-4));
    println!(
        "\nfunctional check: SqueezeNet hybrid output == reference \
         ({} co-run layers, {} parallel regions)",
        outcome.corun_layers, outcome.parallel_regions
    );
    Ok(())
}
