//! Inference serving: steady-state throughput, latency-vs-energy plans,
//! and a chrome-trace dump of the schedule.
//!
//! The paper evaluates single inferences; a deployed AIoT service runs a
//! stream of them. This example simulates a back-to-back request stream
//! under three plans (latency-tuned EdgeNN, energy-tuned EdgeNN, GPU-only
//! baseline) and writes the EdgeNN schedule as a Chrome trace.
//!
//! ```bash
//! cargo run --release --example serving_pipeline
//! ```

use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_sim::platforms;
use edgenn_sim::trace::to_chrome_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let graph = build(ModelKind::SqueezeNet, ModelScale::Paper);
    let tuner = Tuner::new(&graph, &runtime)?;
    let requests = 32;

    println!(
        "serving {requests} SqueezeNet requests on {}:\n",
        jetson.name
    );
    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>12}",
        "plan", "thruput/s", "p-last ms", "power W", "mJ/request"
    );

    let configs = [
        ("edgenn (latency)", ExecutionConfig::edgenn()),
        (
            "edgenn (energy-aware)",
            ExecutionConfig::edgenn_energy_aware(),
        ),
        ("gpu-only baseline", ExecutionConfig::baseline_gpu()),
    ];
    for (name, config) in configs {
        let plan = tuner.plan(&graph, &runtime, config)?;
        let stream = runtime.simulate_stream(&graph, &plan, requests)?;
        println!(
            "{:<26} {:>12.1} {:>12.2} {:>10.2} {:>12.2}",
            name,
            stream.throughput_per_s,
            stream.finish_times_us.last().unwrap() / 1e3,
            stream.energy.avg_power_w,
            stream.energy.energy_mj / requests as f64,
        );
    }

    // Open-loop serving: Poisson arrivals at rising load.
    let plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
    let single = runtime.simulate(&graph, &plan)?;
    let capacity = 1e6 / single.total_us;
    println!(
        "
open-loop latency under Poisson arrivals (capacity ~{capacity:.1} req/s):"
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "load", "p50 ms", "p95 ms", "p99 ms"
    );
    for frac in [0.25, 0.5, 0.75, 0.9] {
        let report = runtime.simulate_poisson_stream(&graph, &plan, capacity * frac, 64, 42)?;
        println!(
            "{:>11.0}% {:>10.2} {:>10.2} {:>10.2}",
            frac * 100.0,
            report.p50_us / 1e3,
            report.p95_us / 1e3,
            report.p99_us / 1e3
        );
    }

    // Dump the single-inference EdgeNN schedule for chrome://tracing.
    let plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
    let report = runtime.simulate(&graph, &plan)?;
    let path = std::env::temp_dir().join("edgenn_squeezenet_trace.json");
    std::fs::write(&path, to_chrome_trace(&report.events))?;
    println!(
        "\nschedule trace ({} events) written to {} — load it in chrome://tracing",
        report.events.len(),
        path.display()
    );
    Ok(())
}
