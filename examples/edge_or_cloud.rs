//! Edge-or-cloud planner: for each network, sweep the uplink bandwidth
//! and find where offloading to a discrete-GPU server stops paying —
//! the trade-off behind the paper's Figure 12 and its conclusion that
//! "not all edge devices have efficient access to cloud computing
//! resources; for those scenarios, EdgeNN is still suitable".
//!
//! ```bash
//! cargo run --release --example edge_or_cloud
//! ```

use edgenn_core::prelude::*;
use edgenn_sim::{platforms, CloudLink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jetson = platforms::jetson_agx_xavier();
    let server = platforms::rtx_2080ti_server();
    let edgenn = EdgeNn::new(&jetson);

    let bandwidths_mbps = [0.5, 1.0, 2.0, 5.0, 10.0, 50.0];
    println!("decision per network and uplink bandwidth (E = run on edge, C = offload to cloud)\n");
    print!("{:<12} {:>10}", "model", "edge ms");
    for b in bandwidths_mbps {
        print!(" {:>8}", format!("{b} MB/s"));
    }
    println!();

    for kind in ModelKind::ALL {
        let graph = build(kind, ModelScale::Paper);
        let edge = edgenn.infer(&graph)?;
        print!("{:<12} {:>10.2}", kind.name(), edge.total_us / 1e3);
        for b in bandwidths_mbps {
            let link = CloudLink {
                uplink_mbps: b,
                cloud_delay_us: 100_000.0,
            };
            let cloud = CloudOffload::new(&server).with_link(link).infer(&graph)?;
            let choice = if edge.total_us <= cloud.total_us {
                "E"
            } else {
                "C"
            };
            print!(" {:>8}", format!("{choice} {:.0}", cloud.total_us / 1e3));
        }
        println!();
    }

    println!(
        "\nAt the paper's measured conditions (1 MB/s, 100 ms cloud delay) the edge wins \
         everywhere except the ~31 GFLOP VGG-16 — the Figure 12 crossover."
    );
    Ok(())
}
