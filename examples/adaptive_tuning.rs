//! Watch the fine-grained adaptive tuner converge.
//!
//! The paper's tuner "applies different strategies each time and
//! discovers the optimal partitioning strategy" from measured feedback
//! (Section IV-D). This example injects run-to-run measurement noise and
//! shows the tuner's plan and latency settling over iterations, then
//! compares the adaptive result against the one-shot plan.
//!
//! ```bash
//! cargo run --release --example adaptive_tuning
//! ```

use edgenn_core::prelude::*;
use edgenn_core::runtime::Runtime;
use edgenn_sim::platforms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let graph = build(ModelKind::AlexNet, ModelScale::Paper);

    // Simulate a noisy device: each profiling run wobbles by up to 20%.
    let noise = 0.20;
    let mut config = ExecutionConfig::edgenn();
    config.jitter = 0.05; // execution-time variance of the runs themselves
    config.jitter_seed = 7;

    let mut tuner = Tuner::new(&graph, &runtime)?;
    println!(
        "adaptive tuning of {} on {} (profiling noise ±{:.0}%):",
        graph.name(),
        jetson.name,
        noise * 100.0
    );

    let mut last_corun = usize::MAX;
    for round in 0..8 {
        let plan = tuner.plan(&graph, &runtime, config)?;
        let report = runtime.simulate(&graph, &plan)?;
        let changed = if plan.corun_count() != last_corun {
            "  <- plan changed"
        } else {
            ""
        };
        println!(
            "  round {round}: predicted {:>8.0} us, {:>2} co-run layers, {:>2} zero-copy arrays{changed}",
            report.total_us,
            plan.corun_count(),
            plan.managed_count(),
        );
        last_corun = plan.corun_count();
        tuner.observe(&graph, &runtime, noise, round as u64 + 100)?;
    }

    // The converged plan should match (or beat) the noise-free one-shot.
    let clean_tuner = Tuner::new(&graph, &runtime)?;
    let clean_plan = clean_tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
    let clean = runtime.simulate(&graph, &clean_plan)?;
    let adapted_plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
    let adapted = runtime.simulate(&graph, &adapted_plan)?;
    println!(
        "\none-shot plan: {:.0} us | adapted plan after noise: {:.0} us ({:+.2}%)",
        clean.total_us,
        adapted.total_us,
        (adapted.total_us - clean.total_us) / clean.total_us * 100.0
    );
    Ok(())
}
