//! Bring your own network: EdgeNN is not limited to the six paper
//! benchmarks — any DAG built with `GraphBuilder` (chains, fire-style
//! fork-joins, residual blocks) gets the full treatment: semantic memory
//! planning, inter/intra-kernel co-running, adaptive tuning, and lossless
//! functional execution.
//!
//! ```bash
//! cargo run --release --example custom_network
//! ```

use edgenn_core::prelude::*;
use edgenn_core::runtime::{functional, Runtime};
use edgenn_nn::graph::GraphBuilder;
use edgenn_nn::layer::{
    AddResidual, Concat, Conv2d, Dense, Flatten, GlobalAvgPool, MaxPool2d, Relu, Softmax,
};
use edgenn_sim::platforms;
use edgenn_tensor::{Shape, Tensor};

/// A bespoke "keyword-spotting"-style CNN: a small stem, one fire-style
/// fork-join, one residual block, and a dense head.
fn build_custom() -> edgenn_nn::graph::Graph {
    let mut b = GraphBuilder::new("kws-net", Shape::new(&[1, 32, 32]));
    let x = b.input_id();

    // Stem.
    let c = b.add(Conv2d::new("stem", 1, 8, 3, 1, 1, 1), &[x]).unwrap();
    let c = b.add(Relu::new("stem_relu"), &[c]).unwrap();
    let c = b.add(MaxPool2d::new("pool1", 2, 2), &[c]).unwrap();

    // Fire-style fork-join (inter-kernel co-running opportunity).
    let s = b
        .add(Conv2d::new("squeeze", 8, 4, 1, 1, 0, 2), &[c])
        .unwrap();
    let fork = b.add(Relu::new("squeeze_relu"), &[s]).unwrap();
    let e1 = b
        .add(Conv2d::new("expand1", 4, 8, 1, 1, 0, 3), &[fork])
        .unwrap();
    let e1 = b.add(Relu::new("expand1_relu"), &[e1]).unwrap();
    let e3 = b
        .add(Conv2d::new("expand3", 4, 8, 3, 1, 1, 4), &[fork])
        .unwrap();
    let e3 = b.add(Relu::new("expand3_relu"), &[e3]).unwrap();
    let cat = b.add(Concat::new("concat", 2), &[e1, e3]).unwrap();

    // Residual block with identity shortcut.
    let r = b
        .add(Conv2d::new("res_conv", 16, 16, 3, 1, 1, 5), &[cat])
        .unwrap();
    let r = b.add(Relu::new("res_relu"), &[r]).unwrap();
    let add = b.add(AddResidual::new("res_add"), &[r, cat]).unwrap();

    // Head.
    let g = b.add(GlobalAvgPool::new("gap"), &[add]).unwrap();
    let f = b.add(Flatten::new("flatten"), &[g]).unwrap();
    let d = b.add(Dense::new("fc", 16, 12, 6), &[f]).unwrap();
    let _ = b.add(Softmax::new("softmax"), &[d]).unwrap();
    b.finish().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = build_custom();
    println!("{}", graph.summary());

    let jetson = platforms::jetson_agx_xavier();
    let runtime = Runtime::new(&jetson);
    let tuner = Tuner::new(&graph, &runtime)?;

    let baseline = runtime.simulate(
        &graph,
        &tuner.plan(&graph, &runtime, ExecutionConfig::baseline_gpu())?,
    )?;
    let plan = tuner.plan(&graph, &runtime, ExecutionConfig::edgenn())?;
    let edgenn = runtime.simulate(&graph, &plan)?;
    println!(
        "direct GPU execution: {:.1} us | EdgeNN: {:.1} us ({:+.1}%)",
        baseline.total_us,
        edgenn.total_us,
        edgenn.improvement_over(&baseline) * -100.0
    );
    println!(
        "plan: {} co-run layers, {} zero-copy arrays",
        plan.corun_count(),
        plan.managed_count()
    );

    // Prove the tuned hybrid plan computes exactly the reference result.
    let input = Tensor::random(graph.input_shape().dims(), 1.0, 99);
    let reference = graph.forward(&input)?;
    let outcome = functional::execute(&graph, &plan, &input)?;
    assert!(outcome.output.approx_eq(&reference, 1e-4));
    println!(
        "functional check passed: class {} (p = {:.3}), {} fork-join regions ran in parallel",
        outcome.output.argmax().unwrap(),
        outcome.output.as_slice()[outcome.output.argmax().unwrap()],
        outcome.parallel_regions
    );
    Ok(())
}
