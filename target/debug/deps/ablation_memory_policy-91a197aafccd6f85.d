/root/repo/target/debug/deps/ablation_memory_policy-91a197aafccd6f85.d: crates/bench/src/bin/ablation_memory_policy.rs

/root/repo/target/debug/deps/ablation_memory_policy-91a197aafccd6f85: crates/bench/src/bin/ablation_memory_policy.rs

crates/bench/src/bin/ablation_memory_policy.rs:
