/root/repo/target/debug/deps/fig06_edge_cpu_speedups-8e959e74b232fa84.d: crates/bench/src/bin/fig06_edge_cpu_speedups.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_edge_cpu_speedups-8e959e74b232fa84.rmeta: crates/bench/src/bin/fig06_edge_cpu_speedups.rs Cargo.toml

crates/bench/src/bin/fig06_edge_cpu_speedups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
