/root/repo/target/debug/deps/cli-cf5b1b574368284f.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-cf5b1b574368284f.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_edgenn=placeholder:edgenn
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
