/root/repo/target/debug/deps/fig11_alexnet_hybrid_layers-173da44a34dff636.d: crates/bench/src/bin/fig11_alexnet_hybrid_layers.rs

/root/repo/target/debug/deps/fig11_alexnet_hybrid_layers-173da44a34dff636: crates/bench/src/bin/fig11_alexnet_hybrid_layers.rs

crates/bench/src/bin/fig11_alexnet_hybrid_layers.rs:
