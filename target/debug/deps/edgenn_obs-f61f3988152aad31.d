/root/repo/target/debug/deps/edgenn_obs-f61f3988152aad31.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/edgenn_obs-f61f3988152aad31: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
