/root/repo/target/debug/deps/cli-6304d3ca04209868.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-6304d3ca04209868: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_edgenn=/root/repo/target/debug/edgenn
