/root/repo/target/debug/deps/fig12_cloud-c09408551e3ad7f4.d: crates/bench/src/bin/fig12_cloud.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_cloud-c09408551e3ad7f4.rmeta: crates/bench/src/bin/fig12_cloud.rs Cargo.toml

crates/bench/src/bin/fig12_cloud.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
