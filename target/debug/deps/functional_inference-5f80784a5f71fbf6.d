/root/repo/target/debug/deps/functional_inference-5f80784a5f71fbf6.d: crates/bench/benches/functional_inference.rs Cargo.toml

/root/repo/target/debug/deps/libfunctional_inference-5f80784a5f71fbf6.rmeta: crates/bench/benches/functional_inference.rs Cargo.toml

crates/bench/benches/functional_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
