/root/repo/target/debug/deps/edgenn_bench-15b886462cd47827.d: crates/bench/src/lib.rs crates/bench/src/calibrate.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig06.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig09.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fusion.rs crates/bench/src/experiments/pipeline_exp.rs crates/bench/src/experiments/power_modes.rs crates/bench/src/experiments/sec5f.rs crates/bench/src/experiments/sec6.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tab1.rs crates/bench/src/report.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_bench-15b886462cd47827.rmeta: crates/bench/src/lib.rs crates/bench/src/calibrate.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig06.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig09.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fusion.rs crates/bench/src/experiments/pipeline_exp.rs crates/bench/src/experiments/power_modes.rs crates/bench/src/experiments/sec5f.rs crates/bench/src/experiments/sec6.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tab1.rs crates/bench/src/report.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/calibrate.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/fig06.rs:
crates/bench/src/experiments/fig07.rs:
crates/bench/src/experiments/fig08.rs:
crates/bench/src/experiments/fig09.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig12.rs:
crates/bench/src/experiments/fig13.rs:
crates/bench/src/experiments/fusion.rs:
crates/bench/src/experiments/pipeline_exp.rs:
crates/bench/src/experiments/power_modes.rs:
crates/bench/src/experiments/sec5f.rs:
crates/bench/src/experiments/sec6.rs:
crates/bench/src/experiments/sensitivity.rs:
crates/bench/src/experiments/tab1.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
