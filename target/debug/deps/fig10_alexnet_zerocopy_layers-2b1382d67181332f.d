/root/repo/target/debug/deps/fig10_alexnet_zerocopy_layers-2b1382d67181332f.d: crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs

/root/repo/target/debug/deps/fig10_alexnet_zerocopy_layers-2b1382d67181332f: crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs

crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs:
