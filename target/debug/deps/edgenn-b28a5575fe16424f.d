/root/repo/target/debug/deps/edgenn-b28a5575fe16424f.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/edgenn-b28a5575fe16424f: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
