/root/repo/target/debug/deps/all_experiments-c174d883a9ed8120.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-c174d883a9ed8120: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
