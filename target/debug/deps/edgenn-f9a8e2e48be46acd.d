/root/repo/target/debug/deps/edgenn-f9a8e2e48be46acd.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn-f9a8e2e48be46acd.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
