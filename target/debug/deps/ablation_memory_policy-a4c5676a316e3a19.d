/root/repo/target/debug/deps/ablation_memory_policy-a4c5676a316e3a19.d: crates/bench/src/bin/ablation_memory_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_memory_policy-a4c5676a316e3a19.rmeta: crates/bench/src/bin/ablation_memory_policy.rs Cargo.toml

crates/bench/src/bin/ablation_memory_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
