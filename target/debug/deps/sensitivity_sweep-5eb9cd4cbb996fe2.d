/root/repo/target/debug/deps/sensitivity_sweep-5eb9cd4cbb996fe2.d: crates/bench/src/bin/sensitivity_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity_sweep-5eb9cd4cbb996fe2.rmeta: crates/bench/src/bin/sensitivity_sweep.rs Cargo.toml

crates/bench/src/bin/sensitivity_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
