/root/repo/target/debug/deps/edgenn_tensor-3d7ce71692a6ff13.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_tensor-3d7ce71692a6ff13.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/im2col.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
