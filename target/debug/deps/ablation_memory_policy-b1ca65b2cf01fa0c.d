/root/repo/target/debug/deps/ablation_memory_policy-b1ca65b2cf01fa0c.d: crates/bench/src/bin/ablation_memory_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_memory_policy-b1ca65b2cf01fa0c.rmeta: crates/bench/src/bin/ablation_memory_policy.rs Cargo.toml

crates/bench/src/bin/ablation_memory_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
