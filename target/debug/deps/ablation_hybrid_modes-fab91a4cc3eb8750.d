/root/repo/target/debug/deps/ablation_hybrid_modes-fab91a4cc3eb8750.d: crates/bench/src/bin/ablation_hybrid_modes.rs

/root/repo/target/debug/deps/ablation_hybrid_modes-fab91a4cc3eb8750: crates/bench/src/bin/ablation_hybrid_modes.rs

crates/bench/src/bin/ablation_hybrid_modes.rs:
