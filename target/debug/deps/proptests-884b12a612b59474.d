/root/repo/target/debug/deps/proptests-884b12a612b59474.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-884b12a612b59474: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
