/root/repo/target/debug/deps/edgenn_core-fd893081a68dc130.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/baselines.rs crates/core/src/error.rs crates/core/src/footprint.rs crates/core/src/metrics.rs crates/core/src/partition.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/functional.rs crates/core/src/semantics.rs crates/core/src/tuner.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_core-fd893081a68dc130.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/baselines.rs crates/core/src/error.rs crates/core/src/footprint.rs crates/core/src/metrics.rs crates/core/src/partition.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/functional.rs crates/core/src/semantics.rs crates/core/src/tuner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/baselines.rs:
crates/core/src/error.rs:
crates/core/src/footprint.rs:
crates/core/src/metrics.rs:
crates/core/src/partition.rs:
crates/core/src/pipeline.rs:
crates/core/src/plan.rs:
crates/core/src/runtime/mod.rs:
crates/core/src/runtime/functional.rs:
crates/core/src/semantics.rs:
crates/core/src/tuner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
