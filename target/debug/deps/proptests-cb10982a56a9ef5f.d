/root/repo/target/debug/deps/proptests-cb10982a56a9ef5f.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cb10982a56a9ef5f: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
