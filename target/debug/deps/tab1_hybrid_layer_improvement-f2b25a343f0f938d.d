/root/repo/target/debug/deps/tab1_hybrid_layer_improvement-f2b25a343f0f938d.d: crates/bench/src/bin/tab1_hybrid_layer_improvement.rs Cargo.toml

/root/repo/target/debug/deps/libtab1_hybrid_layer_improvement-f2b25a343f0f938d.rmeta: crates/bench/src/bin/tab1_hybrid_layer_improvement.rs Cargo.toml

crates/bench/src/bin/tab1_hybrid_layer_improvement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
