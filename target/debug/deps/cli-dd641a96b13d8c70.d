/root/repo/target/debug/deps/cli-dd641a96b13d8c70.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-dd641a96b13d8c70: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_edgenn=/root/repo/target/debug/edgenn
