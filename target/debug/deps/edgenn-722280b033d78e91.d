/root/repo/target/debug/deps/edgenn-722280b033d78e91.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/edgenn-722280b033d78e91: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
