/root/repo/target/debug/deps/sec5f_interkernel_only-8819adcb13a8cce0.d: crates/bench/src/bin/sec5f_interkernel_only.rs Cargo.toml

/root/repo/target/debug/deps/libsec5f_interkernel_only-8819adcb13a8cce0.rmeta: crates/bench/src/bin/sec5f_interkernel_only.rs Cargo.toml

crates/bench/src/bin/sec5f_interkernel_only.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
