/root/repo/target/debug/deps/proptests-bcd14b0270a432af.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-bcd14b0270a432af: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
