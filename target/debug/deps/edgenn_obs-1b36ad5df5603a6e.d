/root/repo/target/debug/deps/edgenn_obs-1b36ad5df5603a6e.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_obs-1b36ad5df5603a6e.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
