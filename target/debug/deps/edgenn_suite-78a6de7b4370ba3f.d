/root/repo/target/debug/deps/edgenn_suite-78a6de7b4370ba3f.d: src/lib.rs

/root/repo/target/debug/deps/libedgenn_suite-78a6de7b4370ba3f.rlib: src/lib.rs

/root/repo/target/debug/deps/libedgenn_suite-78a6de7b4370ba3f.rmeta: src/lib.rs

src/lib.rs:
