/root/repo/target/debug/deps/tensor_kernels-79fec8cbd140b3c3.d: crates/bench/benches/tensor_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libtensor_kernels-79fec8cbd140b3c3.rmeta: crates/bench/benches/tensor_kernels.rs Cargo.toml

crates/bench/benches/tensor_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
