/root/repo/target/debug/deps/fig12_cloud-81560e18302a9724.d: crates/bench/src/bin/fig12_cloud.rs

/root/repo/target/debug/deps/fig12_cloud-81560e18302a9724: crates/bench/src/bin/fig12_cloud.rs

crates/bench/src/bin/fig12_cloud.rs:
