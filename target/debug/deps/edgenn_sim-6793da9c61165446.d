/root/repo/target/debug/deps/edgenn_sim-6793da9c61165446.d: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_sim-6793da9c61165446.rmeta: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cloud.rs:
crates/sim/src/engine.rs:
crates/sim/src/memory.rs:
crates/sim/src/platforms.rs:
crates/sim/src/power.rs:
crates/sim/src/processor.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
