/root/repo/target/debug/deps/fig08_ablation-7f315e71e30f8020.d: crates/bench/src/bin/fig08_ablation.rs

/root/repo/target/debug/deps/fig08_ablation-7f315e71e30f8020: crates/bench/src/bin/fig08_ablation.rs

crates/bench/src/bin/fig08_ablation.rs:
