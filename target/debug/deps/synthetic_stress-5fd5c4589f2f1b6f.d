/root/repo/target/debug/deps/synthetic_stress-5fd5c4589f2f1b6f.d: crates/core/tests/synthetic_stress.rs

/root/repo/target/debug/deps/synthetic_stress-5fd5c4589f2f1b6f: crates/core/tests/synthetic_stress.rs

crates/core/tests/synthetic_stress.rs:
