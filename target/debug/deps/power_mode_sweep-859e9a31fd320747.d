/root/repo/target/debug/deps/power_mode_sweep-859e9a31fd320747.d: crates/bench/src/bin/power_mode_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libpower_mode_sweep-859e9a31fd320747.rmeta: crates/bench/src/bin/power_mode_sweep.rs Cargo.toml

crates/bench/src/bin/power_mode_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
