/root/repo/target/debug/deps/fig10_alexnet_zerocopy_layers-e561d7850bf7e453.d: crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_alexnet_zerocopy_layers-e561d7850bf7e453.rmeta: crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs Cargo.toml

crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
