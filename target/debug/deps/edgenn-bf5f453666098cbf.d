/root/repo/target/debug/deps/edgenn-bf5f453666098cbf.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/edgenn-bf5f453666098cbf: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
