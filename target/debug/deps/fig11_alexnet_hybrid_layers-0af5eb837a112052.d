/root/repo/target/debug/deps/fig11_alexnet_hybrid_layers-0af5eb837a112052.d: crates/bench/src/bin/fig11_alexnet_hybrid_layers.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_alexnet_hybrid_layers-0af5eb837a112052.rmeta: crates/bench/src/bin/fig11_alexnet_hybrid_layers.rs Cargo.toml

crates/bench/src/bin/fig11_alexnet_hybrid_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
