/root/repo/target/debug/deps/planning-8bad3d9b60ac30e1.d: crates/bench/benches/planning.rs Cargo.toml

/root/repo/target/debug/deps/libplanning-8bad3d9b60ac30e1.rmeta: crates/bench/benches/planning.rs Cargo.toml

crates/bench/benches/planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
