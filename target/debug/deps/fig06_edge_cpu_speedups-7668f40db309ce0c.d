/root/repo/target/debug/deps/fig06_edge_cpu_speedups-7668f40db309ce0c.d: crates/bench/src/bin/fig06_edge_cpu_speedups.rs

/root/repo/target/debug/deps/fig06_edge_cpu_speedups-7668f40db309ce0c: crates/bench/src/bin/fig06_edge_cpu_speedups.rs

crates/bench/src/bin/fig06_edge_cpu_speedups.rs:
