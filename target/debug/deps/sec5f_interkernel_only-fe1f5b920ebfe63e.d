/root/repo/target/debug/deps/sec5f_interkernel_only-fe1f5b920ebfe63e.d: crates/bench/src/bin/sec5f_interkernel_only.rs

/root/repo/target/debug/deps/sec5f_interkernel_only-fe1f5b920ebfe63e: crates/bench/src/bin/sec5f_interkernel_only.rs

crates/bench/src/bin/sec5f_interkernel_only.rs:
