/root/repo/target/debug/deps/calibrate-b35e5d13cddca3d8.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-b35e5d13cddca3d8: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
