/root/repo/target/debug/deps/edgenn_obs-287057ca6183e942.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/libedgenn_obs-287057ca6183e942.rlib: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/libedgenn_obs-287057ca6183e942.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
