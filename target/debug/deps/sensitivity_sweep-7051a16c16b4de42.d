/root/repo/target/debug/deps/sensitivity_sweep-7051a16c16b4de42.d: crates/bench/src/bin/sensitivity_sweep.rs

/root/repo/target/debug/deps/sensitivity_sweep-7051a16c16b4de42: crates/bench/src/bin/sensitivity_sweep.rs

crates/bench/src/bin/sensitivity_sweep.rs:
