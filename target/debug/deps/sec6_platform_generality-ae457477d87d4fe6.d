/root/repo/target/debug/deps/sec6_platform_generality-ae457477d87d4fe6.d: crates/bench/src/bin/sec6_platform_generality.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_platform_generality-ae457477d87d4fe6.rmeta: crates/bench/src/bin/sec6_platform_generality.rs Cargo.toml

crates/bench/src/bin/sec6_platform_generality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
