/root/repo/target/debug/deps/edgenn_tensor-9e1574b67132ba58.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/edgenn_tensor-9e1574b67132ba58: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/im2col.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
