/root/repo/target/debug/deps/fig08_ablation-7163fd6ec3ba11c9.d: crates/bench/src/bin/fig08_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_ablation-7163fd6ec3ba11c9.rmeta: crates/bench/src/bin/fig08_ablation.rs Cargo.toml

crates/bench/src/bin/fig08_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
