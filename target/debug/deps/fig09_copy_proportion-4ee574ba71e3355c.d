/root/repo/target/debug/deps/fig09_copy_proportion-4ee574ba71e3355c.d: crates/bench/src/bin/fig09_copy_proportion.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_copy_proportion-4ee574ba71e3355c.rmeta: crates/bench/src/bin/fig09_copy_proportion.rs Cargo.toml

crates/bench/src/bin/fig09_copy_proportion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
