/root/repo/target/debug/deps/edgenn_suite-c5ddce5d1275a358.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_suite-c5ddce5d1275a358.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
