/root/repo/target/debug/deps/edgenn_sim-8f43e372fcce7d26.d: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/edgenn_sim-8f43e372fcce7d26: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cloud.rs:
crates/sim/src/engine.rs:
crates/sim/src/memory.rs:
crates/sim/src/platforms.rs:
crates/sim/src/power.rs:
crates/sim/src/processor.rs:
crates/sim/src/trace.rs:
