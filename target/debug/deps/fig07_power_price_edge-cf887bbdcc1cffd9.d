/root/repo/target/debug/deps/fig07_power_price_edge-cf887bbdcc1cffd9.d: crates/bench/src/bin/fig07_power_price_edge.rs

/root/repo/target/debug/deps/fig07_power_price_edge-cf887bbdcc1cffd9: crates/bench/src/bin/fig07_power_price_edge.rs

crates/bench/src/bin/fig07_power_price_edge.rs:
