/root/repo/target/debug/deps/edgenn_tensor-2ceecb6406610706.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libedgenn_tensor-2ceecb6406610706.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libedgenn_tensor-2ceecb6406610706.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/im2col.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
