/root/repo/target/debug/deps/synthetic_stress-289796f0f076cbeb.d: crates/core/tests/synthetic_stress.rs Cargo.toml

/root/repo/target/debug/deps/libsynthetic_stress-289796f0f076cbeb.rmeta: crates/core/tests/synthetic_stress.rs Cargo.toml

crates/core/tests/synthetic_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
