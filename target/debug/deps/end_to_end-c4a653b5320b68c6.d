/root/repo/target/debug/deps/end_to_end-c4a653b5320b68c6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c4a653b5320b68c6: tests/end_to_end.rs

tests/end_to_end.rs:
