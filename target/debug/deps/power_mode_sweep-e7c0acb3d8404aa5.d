/root/repo/target/debug/deps/power_mode_sweep-e7c0acb3d8404aa5.d: crates/bench/src/bin/power_mode_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libpower_mode_sweep-e7c0acb3d8404aa5.rmeta: crates/bench/src/bin/power_mode_sweep.rs Cargo.toml

crates/bench/src/bin/power_mode_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
