/root/repo/target/debug/deps/ablation_hybrid_modes-e97498e53c9570a6.d: crates/bench/src/bin/ablation_hybrid_modes.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hybrid_modes-e97498e53c9570a6.rmeta: crates/bench/src/bin/ablation_hybrid_modes.rs Cargo.toml

crates/bench/src/bin/ablation_hybrid_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
