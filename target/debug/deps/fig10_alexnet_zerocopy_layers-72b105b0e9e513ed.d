/root/repo/target/debug/deps/fig10_alexnet_zerocopy_layers-72b105b0e9e513ed.d: crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_alexnet_zerocopy_layers-72b105b0e9e513ed.rmeta: crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs Cargo.toml

crates/bench/src/bin/fig10_alexnet_zerocopy_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
