/root/repo/target/debug/deps/edgenn-37bef6ff60e88592.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn-37bef6ff60e88592.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
