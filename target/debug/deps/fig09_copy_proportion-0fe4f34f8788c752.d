/root/repo/target/debug/deps/fig09_copy_proportion-0fe4f34f8788c752.d: crates/bench/src/bin/fig09_copy_proportion.rs

/root/repo/target/debug/deps/fig09_copy_proportion-0fe4f34f8788c752: crates/bench/src/bin/fig09_copy_proportion.rs

crates/bench/src/bin/fig09_copy_proportion.rs:
