/root/repo/target/debug/deps/sec6_platform_generality-cc9b1cf7b71056a7.d: crates/bench/src/bin/sec6_platform_generality.rs

/root/repo/target/debug/deps/sec6_platform_generality-cc9b1cf7b71056a7: crates/bench/src/bin/sec6_platform_generality.rs

crates/bench/src/bin/sec6_platform_generality.rs:
