/root/repo/target/debug/deps/power_mode_sweep-44f356dc10172068.d: crates/bench/src/bin/power_mode_sweep.rs

/root/repo/target/debug/deps/power_mode_sweep-44f356dc10172068: crates/bench/src/bin/power_mode_sweep.rs

crates/bench/src/bin/power_mode_sweep.rs:
