/root/repo/target/debug/deps/calibrate-af8e1b8fddcf0a55.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-af8e1b8fddcf0a55.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
