/root/repo/target/debug/deps/pipeline_throughput-106579b1ba3ab304.d: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_throughput-106579b1ba3ab304.rmeta: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

crates/bench/src/bin/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
