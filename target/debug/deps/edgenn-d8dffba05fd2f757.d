/root/repo/target/debug/deps/edgenn-d8dffba05fd2f757.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/edgenn-d8dffba05fd2f757: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
