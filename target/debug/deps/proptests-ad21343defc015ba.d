/root/repo/target/debug/deps/proptests-ad21343defc015ba.d: crates/nn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ad21343defc015ba.rmeta: crates/nn/tests/proptests.rs Cargo.toml

crates/nn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
