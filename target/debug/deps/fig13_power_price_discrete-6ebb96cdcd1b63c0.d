/root/repo/target/debug/deps/fig13_power_price_discrete-6ebb96cdcd1b63c0.d: crates/bench/src/bin/fig13_power_price_discrete.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_power_price_discrete-6ebb96cdcd1b63c0.rmeta: crates/bench/src/bin/fig13_power_price_discrete.rs Cargo.toml

crates/bench/src/bin/fig13_power_price_discrete.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
