/root/repo/target/debug/deps/edgenn_suite-d76a82dd571bdbdb.d: src/lib.rs

/root/repo/target/debug/deps/edgenn_suite-d76a82dd571bdbdb: src/lib.rs

src/lib.rs:
