/root/repo/target/debug/deps/fig13_power_price_discrete-ed2639b39c00cfc5.d: crates/bench/src/bin/fig13_power_price_discrete.rs

/root/repo/target/debug/deps/fig13_power_price_discrete-ed2639b39c00cfc5: crates/bench/src/bin/fig13_power_price_discrete.rs

crates/bench/src/bin/fig13_power_price_discrete.rs:
