/root/repo/target/debug/deps/edgenn_core-62003f94ecd6ff82.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/baselines.rs crates/core/src/error.rs crates/core/src/footprint.rs crates/core/src/metrics.rs crates/core/src/partition.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/functional.rs crates/core/src/semantics.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libedgenn_core-62003f94ecd6ff82.rlib: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/baselines.rs crates/core/src/error.rs crates/core/src/footprint.rs crates/core/src/metrics.rs crates/core/src/partition.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/functional.rs crates/core/src/semantics.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libedgenn_core-62003f94ecd6ff82.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/baselines.rs crates/core/src/error.rs crates/core/src/footprint.rs crates/core/src/metrics.rs crates/core/src/partition.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/functional.rs crates/core/src/semantics.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/baselines.rs:
crates/core/src/error.rs:
crates/core/src/footprint.rs:
crates/core/src/metrics.rs:
crates/core/src/partition.rs:
crates/core/src/pipeline.rs:
crates/core/src/plan.rs:
crates/core/src/runtime/mod.rs:
crates/core/src/runtime/functional.rs:
crates/core/src/semantics.rs:
crates/core/src/tuner.rs:
