/root/repo/target/debug/deps/pipeline_throughput-86775669a37e5452.d: crates/bench/src/bin/pipeline_throughput.rs

/root/repo/target/debug/deps/pipeline_throughput-86775669a37e5452: crates/bench/src/bin/pipeline_throughput.rs

crates/bench/src/bin/pipeline_throughput.rs:
