/root/repo/target/debug/deps/edgenn_sim-a2fc77b600fbe9be.d: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libedgenn_sim-a2fc77b600fbe9be.rlib: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libedgenn_sim-a2fc77b600fbe9be.rmeta: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cloud.rs:
crates/sim/src/engine.rs:
crates/sim/src/memory.rs:
crates/sim/src/platforms.rs:
crates/sim/src/power.rs:
crates/sim/src/processor.rs:
crates/sim/src/trace.rs:
