/root/repo/target/debug/deps/ablation_fusion-0fc507596e9dcde4.d: crates/bench/src/bin/ablation_fusion.rs

/root/repo/target/debug/deps/ablation_fusion-0fc507596e9dcde4: crates/bench/src/bin/ablation_fusion.rs

crates/bench/src/bin/ablation_fusion.rs:
