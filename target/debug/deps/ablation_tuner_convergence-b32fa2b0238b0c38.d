/root/repo/target/debug/deps/ablation_tuner_convergence-b32fa2b0238b0c38.d: crates/bench/src/bin/ablation_tuner_convergence.rs

/root/repo/target/debug/deps/ablation_tuner_convergence-b32fa2b0238b0c38: crates/bench/src/bin/ablation_tuner_convergence.rs

crates/bench/src/bin/ablation_tuner_convergence.rs:
