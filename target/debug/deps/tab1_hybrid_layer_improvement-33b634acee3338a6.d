/root/repo/target/debug/deps/tab1_hybrid_layer_improvement-33b634acee3338a6.d: crates/bench/src/bin/tab1_hybrid_layer_improvement.rs

/root/repo/target/debug/deps/tab1_hybrid_layer_improvement-33b634acee3338a6: crates/bench/src/bin/tab1_hybrid_layer_improvement.rs

crates/bench/src/bin/tab1_hybrid_layer_improvement.rs:
