/root/repo/target/debug/deps/fig12_cloud-5d6c68eed9e22e11.d: crates/bench/src/bin/fig12_cloud.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_cloud-5d6c68eed9e22e11.rmeta: crates/bench/src/bin/fig12_cloud.rs Cargo.toml

crates/bench/src/bin/fig12_cloud.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
