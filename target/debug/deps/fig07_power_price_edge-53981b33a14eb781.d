/root/repo/target/debug/deps/fig07_power_price_edge-53981b33a14eb781.d: crates/bench/src/bin/fig07_power_price_edge.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_power_price_edge-53981b33a14eb781.rmeta: crates/bench/src/bin/fig07_power_price_edge.rs Cargo.toml

crates/bench/src/bin/fig07_power_price_edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
