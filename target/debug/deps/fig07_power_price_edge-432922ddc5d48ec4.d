/root/repo/target/debug/deps/fig07_power_price_edge-432922ddc5d48ec4.d: crates/bench/src/bin/fig07_power_price_edge.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_power_price_edge-432922ddc5d48ec4.rmeta: crates/bench/src/bin/fig07_power_price_edge.rs Cargo.toml

crates/bench/src/bin/fig07_power_price_edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
