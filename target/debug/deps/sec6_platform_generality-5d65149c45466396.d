/root/repo/target/debug/deps/sec6_platform_generality-5d65149c45466396.d: crates/bench/src/bin/sec6_platform_generality.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_platform_generality-5d65149c45466396.rmeta: crates/bench/src/bin/sec6_platform_generality.rs Cargo.toml

crates/bench/src/bin/sec6_platform_generality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
