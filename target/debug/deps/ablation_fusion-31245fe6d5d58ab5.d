/root/repo/target/debug/deps/ablation_fusion-31245fe6d5d58ab5.d: crates/bench/src/bin/ablation_fusion.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fusion-31245fe6d5d58ab5.rmeta: crates/bench/src/bin/ablation_fusion.rs Cargo.toml

crates/bench/src/bin/ablation_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
