/root/repo/target/debug/deps/proptests-bf4ec08831502a06.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-bf4ec08831502a06: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
