/root/repo/target/debug/deps/paper_shapes-381fa57eec2ed03d.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-381fa57eec2ed03d: tests/paper_shapes.rs

tests/paper_shapes.rs:
