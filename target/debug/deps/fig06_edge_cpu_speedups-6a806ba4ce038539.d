/root/repo/target/debug/deps/fig06_edge_cpu_speedups-6a806ba4ce038539.d: crates/bench/src/bin/fig06_edge_cpu_speedups.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_edge_cpu_speedups-6a806ba4ce038539.rmeta: crates/bench/src/bin/fig06_edge_cpu_speedups.rs Cargo.toml

crates/bench/src/bin/fig06_edge_cpu_speedups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
