/root/repo/target/debug/deps/ablation_popt_sweep-1d89a6dd56b321d9.d: crates/bench/src/bin/ablation_popt_sweep.rs

/root/repo/target/debug/deps/ablation_popt_sweep-1d89a6dd56b321d9: crates/bench/src/bin/ablation_popt_sweep.rs

crates/bench/src/bin/ablation_popt_sweep.rs:
