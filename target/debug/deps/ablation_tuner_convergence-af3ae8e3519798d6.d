/root/repo/target/debug/deps/ablation_tuner_convergence-af3ae8e3519798d6.d: crates/bench/src/bin/ablation_tuner_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tuner_convergence-af3ae8e3519798d6.rmeta: crates/bench/src/bin/ablation_tuner_convergence.rs Cargo.toml

crates/bench/src/bin/ablation_tuner_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
