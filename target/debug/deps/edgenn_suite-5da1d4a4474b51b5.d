/root/repo/target/debug/deps/edgenn_suite-5da1d4a4474b51b5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_suite-5da1d4a4474b51b5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
