/root/repo/target/debug/deps/edgenn_nn-5f4b5baf8812d848.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libedgenn_nn-5f4b5baf8812d848.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/graph/mod.rs:
crates/nn/src/graph/fuse.rs:
crates/nn/src/graph/structure.rs:
crates/nn/src/layer/mod.rs:
crates/nn/src/layer/activation.rs:
crates/nn/src/layer/combine.rs:
crates/nn/src/layer/conv.rs:
crates/nn/src/layer/dense.rs:
crates/nn/src/layer/norm.rs:
crates/nn/src/layer/params.rs:
crates/nn/src/layer/pool.rs:
crates/nn/src/models/mod.rs:
crates/nn/src/models/alexnet.rs:
crates/nn/src/models/fcnn.rs:
crates/nn/src/models/lenet.rs:
crates/nn/src/models/resnet.rs:
crates/nn/src/models/squeezenet.rs:
crates/nn/src/models/synthetic.rs:
crates/nn/src/models/vgg.rs:
crates/nn/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
