/root/repo/target/debug/deps/ablation_popt_sweep-67a67e4717a2dab7.d: crates/bench/src/bin/ablation_popt_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libablation_popt_sweep-67a67e4717a2dab7.rmeta: crates/bench/src/bin/ablation_popt_sweep.rs Cargo.toml

crates/bench/src/bin/ablation_popt_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
