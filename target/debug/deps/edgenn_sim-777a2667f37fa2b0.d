/root/repo/target/debug/deps/edgenn_sim-777a2667f37fa2b0.d: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libedgenn_sim-777a2667f37fa2b0.rlib: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libedgenn_sim-777a2667f37fa2b0.rmeta: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cloud.rs:
crates/sim/src/engine.rs:
crates/sim/src/memory.rs:
crates/sim/src/platforms.rs:
crates/sim/src/power.rs:
crates/sim/src/processor.rs:
crates/sim/src/trace.rs:
