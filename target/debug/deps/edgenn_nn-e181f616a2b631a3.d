/root/repo/target/debug/deps/edgenn_nn-e181f616a2b631a3.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs

/root/repo/target/debug/deps/libedgenn_nn-e181f616a2b631a3.rlib: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs

/root/repo/target/debug/deps/libedgenn_nn-e181f616a2b631a3.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/graph/mod.rs:
crates/nn/src/graph/fuse.rs:
crates/nn/src/graph/structure.rs:
crates/nn/src/layer/mod.rs:
crates/nn/src/layer/activation.rs:
crates/nn/src/layer/combine.rs:
crates/nn/src/layer/conv.rs:
crates/nn/src/layer/dense.rs:
crates/nn/src/layer/norm.rs:
crates/nn/src/layer/params.rs:
crates/nn/src/layer/pool.rs:
crates/nn/src/models/mod.rs:
crates/nn/src/models/alexnet.rs:
crates/nn/src/models/fcnn.rs:
crates/nn/src/models/lenet.rs:
crates/nn/src/models/resnet.rs:
crates/nn/src/models/squeezenet.rs:
crates/nn/src/models/synthetic.rs:
crates/nn/src/models/vgg.rs:
crates/nn/src/workload.rs:
