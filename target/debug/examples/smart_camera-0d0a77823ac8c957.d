/root/repo/target/debug/examples/smart_camera-0d0a77823ac8c957.d: examples/smart_camera.rs

/root/repo/target/debug/examples/smart_camera-0d0a77823ac8c957: examples/smart_camera.rs

examples/smart_camera.rs:
