/root/repo/target/debug/examples/adaptive_tuning-1c173db67b5aee28.d: examples/adaptive_tuning.rs

/root/repo/target/debug/examples/adaptive_tuning-1c173db67b5aee28: examples/adaptive_tuning.rs

examples/adaptive_tuning.rs:
