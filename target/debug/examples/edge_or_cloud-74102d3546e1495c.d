/root/repo/target/debug/examples/edge_or_cloud-74102d3546e1495c.d: examples/edge_or_cloud.rs

/root/repo/target/debug/examples/edge_or_cloud-74102d3546e1495c: examples/edge_or_cloud.rs

examples/edge_or_cloud.rs:
