/root/repo/target/debug/examples/smart_camera-54975519bebd1b37.d: examples/smart_camera.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_camera-54975519bebd1b37.rmeta: examples/smart_camera.rs Cargo.toml

examples/smart_camera.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
