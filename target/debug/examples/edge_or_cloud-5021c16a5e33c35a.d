/root/repo/target/debug/examples/edge_or_cloud-5021c16a5e33c35a.d: examples/edge_or_cloud.rs Cargo.toml

/root/repo/target/debug/examples/libedge_or_cloud-5021c16a5e33c35a.rmeta: examples/edge_or_cloud.rs Cargo.toml

examples/edge_or_cloud.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
