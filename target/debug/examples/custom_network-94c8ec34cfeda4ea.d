/root/repo/target/debug/examples/custom_network-94c8ec34cfeda4ea.d: examples/custom_network.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_network-94c8ec34cfeda4ea.rmeta: examples/custom_network.rs Cargo.toml

examples/custom_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
