/root/repo/target/debug/examples/serving_pipeline-ad0d040516acc9ff.d: examples/serving_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libserving_pipeline-ad0d040516acc9ff.rmeta: examples/serving_pipeline.rs Cargo.toml

examples/serving_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
