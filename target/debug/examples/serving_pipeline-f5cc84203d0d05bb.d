/root/repo/target/debug/examples/serving_pipeline-f5cc84203d0d05bb.d: examples/serving_pipeline.rs

/root/repo/target/debug/examples/serving_pipeline-f5cc84203d0d05bb: examples/serving_pipeline.rs

examples/serving_pipeline.rs:
