/root/repo/target/debug/examples/custom_network-e4f3fb2e6d9f9d27.d: examples/custom_network.rs

/root/repo/target/debug/examples/custom_network-e4f3fb2e6d9f9d27: examples/custom_network.rs

examples/custom_network.rs:
