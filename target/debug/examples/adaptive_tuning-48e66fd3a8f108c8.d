/root/repo/target/debug/examples/adaptive_tuning-48e66fd3a8f108c8.d: examples/adaptive_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_tuning-48e66fd3a8f108c8.rmeta: examples/adaptive_tuning.rs Cargo.toml

examples/adaptive_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
