/root/repo/target/debug/examples/quickstart-9ce1940ffa502d5e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9ce1940ffa502d5e: examples/quickstart.rs

examples/quickstart.rs:
