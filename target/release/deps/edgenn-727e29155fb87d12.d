/root/repo/target/release/deps/edgenn-727e29155fb87d12.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/edgenn-727e29155fb87d12: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
