/root/repo/target/release/deps/edgenn_nn-eb4d06229796136b.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs

/root/repo/target/release/deps/libedgenn_nn-eb4d06229796136b.rlib: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs

/root/repo/target/release/deps/libedgenn_nn-eb4d06229796136b.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/graph/mod.rs crates/nn/src/graph/fuse.rs crates/nn/src/graph/structure.rs crates/nn/src/layer/mod.rs crates/nn/src/layer/activation.rs crates/nn/src/layer/combine.rs crates/nn/src/layer/conv.rs crates/nn/src/layer/dense.rs crates/nn/src/layer/norm.rs crates/nn/src/layer/params.rs crates/nn/src/layer/pool.rs crates/nn/src/models/mod.rs crates/nn/src/models/alexnet.rs crates/nn/src/models/fcnn.rs crates/nn/src/models/lenet.rs crates/nn/src/models/resnet.rs crates/nn/src/models/squeezenet.rs crates/nn/src/models/synthetic.rs crates/nn/src/models/vgg.rs crates/nn/src/workload.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/graph/mod.rs:
crates/nn/src/graph/fuse.rs:
crates/nn/src/graph/structure.rs:
crates/nn/src/layer/mod.rs:
crates/nn/src/layer/activation.rs:
crates/nn/src/layer/combine.rs:
crates/nn/src/layer/conv.rs:
crates/nn/src/layer/dense.rs:
crates/nn/src/layer/norm.rs:
crates/nn/src/layer/params.rs:
crates/nn/src/layer/pool.rs:
crates/nn/src/models/mod.rs:
crates/nn/src/models/alexnet.rs:
crates/nn/src/models/fcnn.rs:
crates/nn/src/models/lenet.rs:
crates/nn/src/models/resnet.rs:
crates/nn/src/models/squeezenet.rs:
crates/nn/src/models/synthetic.rs:
crates/nn/src/models/vgg.rs:
crates/nn/src/workload.rs:
