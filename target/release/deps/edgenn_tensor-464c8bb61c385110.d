/root/repo/target/release/deps/edgenn_tensor-464c8bb61c385110.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libedgenn_tensor-464c8bb61c385110.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libedgenn_tensor-464c8bb61c385110.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/gemm.rs crates/tensor/src/im2col.rs crates/tensor/src/ops.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/im2col.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
