/root/repo/target/release/deps/edgenn_obs-0bd3b002685ebce1.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/release/deps/libedgenn_obs-0bd3b002685ebce1.rlib: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/release/deps/libedgenn_obs-0bd3b002685ebce1.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
