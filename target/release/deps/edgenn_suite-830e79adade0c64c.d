/root/repo/target/release/deps/edgenn_suite-830e79adade0c64c.d: src/lib.rs

/root/repo/target/release/deps/libedgenn_suite-830e79adade0c64c.rlib: src/lib.rs

/root/repo/target/release/deps/libedgenn_suite-830e79adade0c64c.rmeta: src/lib.rs

src/lib.rs:
