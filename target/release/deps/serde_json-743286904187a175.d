/root/repo/target/release/deps/serde_json-743286904187a175.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-743286904187a175.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-743286904187a175.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
