/root/repo/target/release/deps/serde_derive-2c2994bd20142c3c.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2c2994bd20142c3c.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
