/root/repo/target/release/deps/edgenn_sim-c93531b9fc5919c2.d: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libedgenn_sim-c93531b9fc5919c2.rlib: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libedgenn_sim-c93531b9fc5919c2.rmeta: crates/sim/src/lib.rs crates/sim/src/cloud.rs crates/sim/src/engine.rs crates/sim/src/memory.rs crates/sim/src/platforms.rs crates/sim/src/power.rs crates/sim/src/processor.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cloud.rs:
crates/sim/src/engine.rs:
crates/sim/src/memory.rs:
crates/sim/src/platforms.rs:
crates/sim/src/power.rs:
crates/sim/src/processor.rs:
crates/sim/src/trace.rs:
