/root/repo/target/release/deps/rand-497b71e0a3e7d68b.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-497b71e0a3e7d68b.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-497b71e0a3e7d68b.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
